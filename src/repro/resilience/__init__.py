"""Fault-tolerance layer: retry policies, circuit breaking, supervised
pools, fault injection and process-wide resilience counters.

See the README's "Failure semantics" section for how these pieces compose
across the stack (executor → service → HTTP → client).
"""

from .breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN, CircuitBreaker
from .faults import ENV_VAR as FAULT_ENV_VAR
from .faults import FaultInjector, fault_injector
from .retry import RetryPolicy
from .stats import ResilienceStats, resilience_stats
from .supervisor import PoolSupervisor, SupervisionReport

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FAULT_ENV_VAR",
    "PoolSupervisor",
    "ResilienceStats",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "SupervisionReport",
    "fault_injector",
    "resilience_stats",
]
