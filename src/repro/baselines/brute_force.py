"""Brute-force maximal k-plex enumeration — the test oracle.

This module enumerates maximal k-plexes by exhaustively examining vertex
subsets.  It is exponential in the number of vertices and only intended for
tiny graphs (roughly ``n <= 18``), where it serves as the ground truth the
optimised algorithms are cross-checked against in the test-suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Set

from ..errors import ParameterError
from ..graph import Graph
from ..core.kplex import KPlex, can_extend, is_kplex, validate_parameters

MAX_BRUTE_FORCE_VERTICES = 22


def brute_force_maximal_kplexes(graph: Graph, k: int, q: int) -> List[KPlex]:
    """Enumerate every maximal k-plex with at least ``q`` vertices by exhaustion.

    The subsets are generated from largest to smallest so maximality can be
    decided with the single-vertex extension test (hereditary property).
    """
    if graph.num_vertices > MAX_BRUTE_FORCE_VERTICES:
        raise ParameterError(
            f"brute force oracle refuses graphs with more than "
            f"{MAX_BRUTE_FORCE_VERTICES} vertices (got {graph.num_vertices})"
        )
    validate_parameters(k, q, enforce_diameter_bound=False)

    vertices = list(graph.vertices())
    results: List[FrozenSet[int]] = []
    for size in range(len(vertices), max(q, 1) - 1, -1):
        for subset in combinations(vertices, size):
            members = frozenset(subset)
            if not is_kplex(graph, members, k):
                continue
            if _has_extension(graph, members, k):
                continue
            results.append(members)
    return [KPlex.from_vertices(graph, members, k) for members in sorted(results, key=sorted)]


def _has_extension(graph: Graph, members: FrozenSet[int], k: int) -> bool:
    """Return ``True`` if some vertex outside ``members`` keeps it a k-plex."""
    for candidate in graph.vertices():
        if candidate in members:
            continue
        if can_extend(graph, members, candidate, k):
            return True
    return False


def brute_force_vertex_sets(graph: Graph, k: int, q: int) -> Set[FrozenSet[int]]:
    """Return the oracle results as a set of frozensets (convenient for tests)."""
    return {plex.as_set() for plex in brute_force_maximal_kplexes(graph, k, q)}
