"""Compressed sparse row (CSR) graph kernel.

The set-backed :class:`~repro.graph.graph.Graph` is convenient for
correctness-oriented code, but the enumeration hot path — (q-k)-core
shrinking, degeneracy ordering and per-seed two-hop subgraph construction —
spends most of its time walking adjacency.  :class:`CSRGraph` stores the same
graph as two flat integer arrays (the layout the paper's C++ baselines such
as ListPlex/FaPlexen use):

* ``offsets[v] .. offsets[v+1]`` delimits the neighbour row of ``v`` inside
  ``neighbors``;
* every row is sorted, so ``has_edge`` is a binary search and induced
  subgraph rows come out already sorted.

Two implementation notes from measuring on the bundled datasets (pure
CPython; see ``BENCH_results.json``):

* two-hop expansion feeds whole row slices to C-level ``set.update`` /
  ``set.difference_update`` instead of marking vertices one by one in an
  interpreted loop — the slice path is ~2.5x faster;
* induced-row extraction does use a per-thread visited/position scratch
  array (reset after use, so repeated extractions allocate nothing beyond
  their output), which avoids building a dictionary per projection.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from typing import Iterable, List, Sequence

from ..errors import GraphError
from .graph import Graph


class _Scratch(threading.local):
    """Per-thread scratch buffer sized to the graph (lazily grown)."""

    def __init__(self) -> None:
        self.position: array = array("l")

    def position_array(self, size: int) -> array:
        """Return the position array, every entry guaranteed to be ``-1``."""
        if len(self.position) < size:
            self.position = array("l", [-1]) * size
        return self.position


class CSRGraph:
    """Flat sorted-adjacency-array view of an undirected simple graph.

    Vertex ids are the same contiguous ``0 .. n-1`` space as the source
    :class:`Graph`; only the storage differs.  Instances are immutable and
    safe to share across threads (scratch buffers are thread-local) and to
    pickle into worker processes.
    """

    __slots__ = ("num_vertices", "num_edges", "offsets", "neighbors", "_scratch")

    def __init__(self, offsets: array, neighbors: array) -> None:
        self.offsets = offsets
        self.neighbors = neighbors
        self.num_vertices = len(offsets) - 1
        self.num_edges = len(neighbors) // 2
        self._scratch = _Scratch()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Build the CSR form of ``graph`` (rows sorted ascending)."""
        n = graph.num_vertices
        offsets = array("l", [0]) * (n + 1)
        neighbors = array("i")
        total = 0
        for vertex in range(n):
            row = sorted(graph.neighbors(vertex))
            neighbors.extend(row)
            total += len(row)
            offsets[vertex + 1] = total
        return cls(offsets, neighbors)

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "CSRGraph":
        """Build from a sequence of neighbour collections (validated nowhere)."""
        offsets = array("l", [0]) * (len(adjacency) + 1)
        neighbors = array("i")
        total = 0
        for vertex, row in enumerate(adjacency):
            sorted_row = sorted(row)
            neighbors.extend(sorted_row)
            total += len(sorted_row)
            offsets[vertex + 1] = total
        return cls(offsets, neighbors)

    # ------------------------------------------------------------------ #
    # Pickling (scratch buffers are per-process, never shipped)
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        return (CSRGraph, (self.offsets, self.neighbors))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Return the degree of ``vertex``."""
        return self.offsets[vertex + 1] - self.offsets[vertex]

    def degrees(self) -> List[int]:
        """Return all vertex degrees indexed by vertex id."""
        offsets = self.offsets
        return [offsets[v + 1] - offsets[v] for v in range(self.num_vertices)]

    def neighbors_list(self, vertex: int) -> List[int]:
        """Return the sorted neighbour list of ``vertex`` (a fresh list)."""
        return self.neighbors[self.offsets[vertex] : self.offsets[vertex + 1]].tolist()

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ``u`` and ``v`` are adjacent (binary search)."""
        lo = self.offsets[u]
        hi = self.offsets[u + 1]
        index = bisect_left(self.neighbors, v, lo, hi)
        return index < hi and self.neighbors[index] == v

    # ------------------------------------------------------------------ #
    # Neighbourhood expansion (C-level set fills over flat row slices)
    # ------------------------------------------------------------------ #
    def two_hop_neighbors(self, vertex: int) -> List[int]:
        """Return the sorted vertices at distance exactly two from ``vertex``.

        Each first-hop row is fed to ``set.update`` as one contiguous array
        slice, so the whole expansion runs in C; no per-vertex Python-level
        membership tests happen.
        """
        offsets = self.offsets
        neighbors = self.neighbors
        start = offsets[vertex]
        stop = offsets[vertex + 1]
        second: set = set()
        update = second.update
        for index in range(start, stop):
            middle = neighbors[index]
            update(neighbors[offsets[middle] : offsets[middle + 1]])
        second.discard(vertex)
        second.difference_update(neighbors[start:stop])
        return sorted(second)

    def neighborhood_within_two_hops(self, vertex: int) -> List[int]:
        """Return the sorted closed two-hop ball ``{v} ∪ N(v) ∪ N²(v)``."""
        offsets = self.offsets
        neighbors = self.neighbors
        start = offsets[vertex]
        stop = offsets[vertex + 1]
        closed: set = {vertex}
        closed.update(neighbors[start:stop])
        update = closed.update
        for index in range(start, stop):
            middle = neighbors[index]
            update(neighbors[offsets[middle] : offsets[middle + 1]])
        return sorted(closed)

    # ------------------------------------------------------------------ #
    # Subgraph extraction
    # ------------------------------------------------------------------ #
    def rows_onto(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[int]:
        """Project the adjacency of ``sources`` onto local bitset rows.

        ``targets`` defines the local index space (``targets[i]`` gets bit
        ``i``); the result has one bitset row per source vertex.  With
        ``sources == targets`` this is exactly the adjacency-row construction
        of :class:`~repro.graph.dense.DenseSubgraph`.
        """
        n = self.num_vertices
        for vertex in targets:
            if not 0 <= vertex < n:
                raise GraphError(f"target vertex {vertex} is out of range")
        for vertex in sources:
            if not 0 <= vertex < n:
                raise GraphError(f"source vertex {vertex} is out of range")
        offsets = self.offsets
        neighbors = self.neighbors
        position = self._scratch.position_array(n)
        try:
            for local, vertex in enumerate(targets):
                position[vertex] = local
            rows: List[int] = []
            for vertex in sources:
                row = 0
                for index in range(offsets[vertex], offsets[vertex + 1]):
                    local = position[neighbors[index]]
                    if local >= 0:
                        row |= 1 << local
                rows.append(row)
        finally:
            # The scratch array is shared by every projection on this thread;
            # restore it even on error so later calls stay correct.
            for vertex in targets:
                position[vertex] = -1
        return rows

    def induced_rows(self, vertices: Sequence[int]) -> List[int]:
        """Bitset adjacency rows of the induced subgraph on ``vertices``."""
        return self.rows_onto(vertices, vertices)

    def induced_adjacency(self, kept: Sequence[int]) -> List[List[int]]:
        """Sorted adjacency lists of the induced subgraph on ``kept``.

        ``kept`` must be sorted ascending; local ids then preserve the vertex
        order, so each output row is already sorted.
        """
        n = self.num_vertices
        for vertex in kept:
            if not 0 <= vertex < n:
                raise GraphError(f"vertex {vertex} is out of range")
        offsets = self.offsets
        neighbors = self.neighbors
        position = self._scratch.position_array(n)
        try:
            for local, vertex in enumerate(kept):
                position[vertex] = local
            adjacency: List[List[int]] = []
            for vertex in kept:
                row: List[int] = []
                for index in range(offsets[vertex], offsets[vertex + 1]):
                    local = position[neighbors[index]]
                    if local >= 0:
                        row.append(local)
                adjacency.append(row)
        finally:
            for vertex in kept:
                position[vertex] = -1
        return adjacency

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
