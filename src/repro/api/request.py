"""The request side of the engine API.

:class:`EnumerationRequest` is the single place where enumeration parameters
are validated: ``k``/``q`` positivity, the optional query anchor, the solver
configuration and the execution budget (timeout / result limit) are all
checked at construction time, so every consumer — CLI, experiment runner,
examples, library callers — shares one validation path instead of
re-implementing it.  Solver-*specific* requirements (the ``q >= 2k - 1``
diameter bound of the decomposed algorithms, brute-force size limits) are
enforced by the solver the request is dispatched to, because they depend on
which algorithm runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from ..core.config import NAMED_VARIANTS, EnumerationConfig
from ..core.kplex import validate_parameters, validate_query_vertices
from ..errors import ParameterError
from ..graph import Graph

DEFAULT_SOLVER = "ours"


@dataclass(frozen=True)
class EnumerationRequest:
    """One unit of work for :class:`~repro.api.engine.KPlexEngine`.

    Attributes
    ----------
    graph:
        The input graph.
    k:
        The k-plex relaxation parameter (``k = 1`` gives maximal cliques).
    q:
        Minimum result size.  Whether ``q >= 2k - 1`` is required depends on
        the solver (the decomposed algorithms need it, the Bron–Kerbosch and
        brute-force oracles do not).
    solver:
        Registry name of the solver to run (see
        :func:`~repro.api.registry.solver_names`).
    variant:
        Optional named configuration variant (``"ours"``, ``"basic"``, ...)
        for configuration-driven solvers; mutually exclusive with ``config``.
    config:
        Optional explicit :class:`EnumerationConfig` override.
    query_vertices:
        Optional anchor vertices: restrict the enumeration to maximal
        k-plexes containing all of them (community search).  Only supported
        by solvers whose ``supports_query`` capability is set.
    timeout_seconds:
        Soft wall-clock budget; the engine stops the run (termination reason
        ``"timeout"``) the next time control returns between results.
    max_results:
        Stop after this many results (termination reason ``"result-limit"``).
    sort_results:
        Sort collected results by ``(size, vertices)`` in
        :meth:`KPlexEngine.solve` (streaming order is always the solver's
        natural order).
    options:
        Free-form solver-specific options (e.g. ``num_workers`` or
        ``use_processes`` for the parallel solver).
    """

    graph: Graph
    k: int
    q: int
    solver: str = DEFAULT_SOLVER
    variant: Optional[str] = None
    config: Optional[EnumerationConfig] = None
    query_vertices: Optional[Tuple[int, ...]] = None
    timeout_seconds: Optional[float] = None
    max_results: Optional[int] = None
    sort_results: bool = True
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.graph, Graph):
            raise ParameterError(
                f"graph must be a repro.Graph, got {type(self.graph).__name__}"
            )
        # Canonical k/q validation; the q >= 2k - 1 diameter bound is checked
        # by the solver at dispatch time because not every solver needs it.
        validate_parameters(self.k, self.q, enforce_diameter_bound=False)
        if self.variant is not None and self.config is not None:
            raise ParameterError("pass either variant or config, not both")
        if self.variant is not None and self.variant.strip().lower() not in NAMED_VARIANTS:
            known = ", ".join(sorted(NAMED_VARIANTS))
            raise ParameterError(
                f"unknown variant {self.variant!r}; known variants: {known}"
            )
        if self.query_vertices is not None:
            object.__setattr__(
                self,
                "query_vertices",
                validate_query_vertices(self.graph, self.query_vertices, self.q),
            )
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise ParameterError(
                f"timeout_seconds must be non-negative, got {self.timeout_seconds}"
            )
        if self.max_results is not None and self.max_results < 1:
            raise ParameterError(
                f"max_results must be a positive integer, got {self.max_results}"
            )
        if not isinstance(self.solver, str) or not self.solver.strip():
            raise ParameterError("solver must be a non-empty registry name")

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def resolved_config(self) -> Optional[EnumerationConfig]:
        """The effective :class:`EnumerationConfig` override, if any."""
        if self.config is not None:
            return self.config
        if self.variant is not None:
            return NAMED_VARIANTS[self.variant.strip().lower()]()
        return None

    def with_changes(self, **changes: object) -> "EnumerationRequest":
        """Return a copy of the request with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, object]:
        """Loggable summary of the request (no graph payload)."""
        summary: Dict[str, object] = {
            "solver": self.solver,
            "k": self.k,
            "q": self.q,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
        }
        if self.variant is not None:
            summary["variant"] = self.variant
        if self.config is not None:
            summary["config"] = self.config.label
        if self.query_vertices is not None:
            summary["query_vertices"] = list(self.query_vertices)
        if self.timeout_seconds is not None:
            summary["timeout_seconds"] = self.timeout_seconds
        if self.max_results is not None:
            summary["max_results"] = self.max_results
        return summary
