"""Integration tests for the high-level enumerator against oracle algorithms."""

import pytest

from repro.baselines.bron_kerbosch import bron_kerbosch_vertex_sets
from repro.baselines.brute_force import brute_force_vertex_sets
from repro.core import (
    EnumerationConfig,
    KPlexEnumerator,
    count_maximal_kplexes,
    enumerate_maximal_kplexes,
)
from repro.errors import ParameterError
from repro.graph import Graph, generators

from _helpers import random_graph_cases, vertex_sets


def test_invalid_parameters_rejected(triangle):
    with pytest.raises(ParameterError):
        KPlexEnumerator(triangle, k=0, q=3)
    with pytest.raises(ParameterError):
        KPlexEnumerator(triangle, k=2, q=2)  # q < 2k - 1


def test_triangle_clique(triangle):
    results = enumerate_maximal_kplexes(triangle, k=1, q=3)
    assert vertex_sets(results) == {frozenset({0, 1, 2})}


def test_diamond_two_plex(diamond):
    results = enumerate_maximal_kplexes(diamond, k=2, q=4)
    assert vertex_sets(results) == {frozenset({0, 1, 2, 3})}
    # As cliques (k = 1) the diamond splits into its two triangles.
    cliques = enumerate_maximal_kplexes(diamond, k=1, q=3)
    assert vertex_sets(cliques) == {frozenset({0, 1, 2}), frozenset({1, 2, 3})}


def test_empty_and_tiny_graphs():
    assert enumerate_maximal_kplexes(Graph.empty(0), k=2, q=3) == []
    assert enumerate_maximal_kplexes(Graph.empty(5), k=2, q=3) == []
    assert enumerate_maximal_kplexes(generators.path_graph(4), k=2, q=4) == []


def test_complete_graph_single_result():
    graph = Graph.complete(8)
    for k in (1, 2, 3):
        results = enumerate_maximal_kplexes(graph, k=k, q=2 * k - 1 if 2 * k - 1 > 0 else 1)
        assert vertex_sets(results) == {frozenset(range(8))}


def test_complete_multipartite_two_plexes():
    # In K_{2,2,2} every pair of parts forms a 4-cycle, which is a 2-plex.
    graph = generators.complete_multipartite([2, 2, 2])
    results = enumerate_maximal_kplexes(graph, k=2, q=4)
    for plex in results:
        assert plex.size >= 4
    assert vertex_sets(results)  # at least one maximal 2-plex of size >= 4


def test_results_translate_back_to_original_labels():
    graph = Graph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("c", "d"), ("d", "e")]
    )
    results = enumerate_maximal_kplexes(graph, k=2, q=4)
    labels = {tuple(sorted(map(str, plex.labels))) for plex in results}
    assert ("a", "b", "c", "d") in labels


def test_matches_brute_force_on_random_graphs():
    for index, graph in enumerate(random_graph_cases(12, max_vertices=12, seed=21)):
        for k in (1, 2, 3):
            q = max(2 * k - 1, 2)
            expected = brute_force_vertex_sets(graph, k, q)
            actual = vertex_sets(enumerate_maximal_kplexes(graph, k, q))
            assert actual == expected, f"graph #{index}, k={k}"


def test_matches_bron_kerbosch_on_structured_graphs(karate_like):
    for k, q in [(2, 5), (3, 6)]:
        expected = bron_kerbosch_vertex_sets(karate_like, k, q)
        actual = vertex_sets(enumerate_maximal_kplexes(karate_like, k, q))
        assert actual == expected


def test_count_matches_enumerate():
    graph = generators.relaxed_caveman(3, 6, 0.2, seed=12)
    assert count_maximal_kplexes(graph, 2, 5) == len(enumerate_maximal_kplexes(graph, 2, 5))


def test_iter_results_is_lazy_and_complete():
    graph = generators.relaxed_caveman(3, 6, 0.2, seed=13)
    enumerator = KPlexEnumerator(graph, 2, 5)
    streamed = vertex_sets(list(enumerator.iter_results()))
    assert streamed == vertex_sets(enumerate_maximal_kplexes(graph, 2, 5))


def test_core_graph_exposed_and_consistent():
    graph = generators.barabasi_albert(40, 2, seed=14)
    enumerator = KPlexEnumerator(graph, 2, 5)
    core = enumerator.core_graph
    assert core.num_vertices <= graph.num_vertices
    # Every core vertex has degree >= q - k inside the core (Theorem 3.5).
    if core.num_vertices:
        assert min(core.degrees()) >= 5 - 2
    assert len(enumerator.core_vertex_map) == core.num_vertices


def test_results_sorted_when_requested():
    graph = generators.relaxed_caveman(3, 6, 0.25, seed=15)
    result = KPlexEnumerator(graph, 2, 5, EnumerationConfig.ours()).run()
    sizes = [plex.size for plex in result.kplexes]
    assert sizes == sorted(sizes)
    assert result.count == len(result.kplexes)
    assert len(result.vertex_sets()) == result.count


def test_statistics_elapsed_time_recorded():
    graph = generators.relaxed_caveman(3, 6, 0.25, seed=16)
    result = KPlexEnumerator(graph, 2, 5).run()
    assert result.statistics.elapsed_seconds > 0
