"""Shared-memory worker transfer vs per-worker pickling.

The process pool ships a prepared graph (adjacency + decomposition +
position index) to every worker.  With pickled transfer the driver
serialises an ``O(n + m)`` payload once *per worker*, so the bytes moved
grow linearly in the worker count; with the shared-memory transport the
flat arrays are published once and each worker receives a fixed-size
descriptor, so the per-worker marginal transfer is constant and the
per-worker attach cost stays flat as the pool grows.

Gates asserted below:

* the per-worker descriptor is at least 100x smaller than the per-worker
  pickle payload, so total transfer at 8 workers is >= 4x smaller;
* per-worker attach cost stays flat in the worker count (within noise);
* the segment is provably unlinked after the pool is done — attaching by
  the old descriptor fails and the owner registry is empty — including
  after a real process-pool enumeration run.
"""

import pickle
import time

import pytest

from repro.analysis.reporting import render_table
from repro.core import enumerate_maximal_kplexes
from repro.datasets import load_dataset
from repro.errors import SharedMemoryError
from repro.graph import invalidate, prepare
from repro.graph.shared import (
    attach_prepared,
    live_owned_segments,
    shared_memory_available,
)
from repro.parallel.executor import ParallelConfig, parallel_enumerate_maximal_kplexes

from _bench_utils import run_once

WORKER_COUNTS = (1, 2, 4, 8)
ATTACH_REPEATS = 5


def _attach_seconds(descriptor, workers: int) -> float:
    """Best-of per-worker attach time for a simulated pool of ``workers``."""
    best = float("inf")
    for _ in range(ATTACH_REPEATS):
        started = time.perf_counter()
        for _worker in range(workers):
            attach_prepared(descriptor)
        best = min(best, (time.perf_counter() - started) / workers)
    return best


def test_bench_shared_memory_transfer(benchmark, scale):
    if not shared_memory_available():
        pytest.skip("platform has no shared memory")

    def run():
        graph = load_dataset("enwiki-2021")
        invalidate(graph)
        prepared = prepare(graph)
        prepared.csr
        prepared.decomposition
        prepared.position

        pickled_per_worker = len(pickle.dumps(prepared.for_worker_transfer()))
        shared = prepared.share()
        try:
            descriptor = shared.descriptor()
            descriptor_bytes = len(pickle.dumps(descriptor))
            segment_bytes = shared.nbytes
            rows = []
            for workers in WORKER_COUNTS:
                rows.append(
                    {
                        "workers": workers,
                        "pickled_total_bytes": pickled_per_worker * workers,
                        "shm_total_bytes": segment_bytes
                        + descriptor_bytes * workers,
                        "shm_marginal_bytes": descriptor_bytes,
                        "attach_us_per_worker": round(
                            _attach_seconds(descriptor, workers) * 1e6, 1
                        ),
                    }
                )
        finally:
            unlinked_now = shared.unlink()
        return {
            "rows": rows,
            "pickled_per_worker": pickled_per_worker,
            "descriptor_bytes": descriptor_bytes,
            "unlinked_now": unlinked_now,
            "stale_descriptor": descriptor,
        }

    result = run_once(benchmark, run)
    rows = result["rows"]
    print()
    print(
        render_table(
            rows, title="Prepared-graph worker transfer — shared memory vs pickle"
        )
    )
    print(
        f"per-worker payload: pickle={result['pickled_per_worker']} bytes, "
        f"shm descriptor={result['descriptor_bytes']} bytes"
    )

    # One mapped copy: the per-worker marginal transfer is a fixed-size
    # descriptor, >= 100x smaller than the per-worker pickle payload ...
    assert result["pickled_per_worker"] >= 100 * result["descriptor_bytes"], result
    # ... so the total bytes moved stop growing with the pool size while the
    # pickled transfer grows linearly.
    eight = next(row for row in rows if row["workers"] == WORKER_COUNTS[-1])
    assert eight["pickled_total_bytes"] >= 4 * eight["shm_total_bytes"], rows

    # Per-worker attach cost is flat in the worker count (one page mapping +
    # fixed rebuild work; generous noise bound for shared CI runners).
    per_worker = [row["attach_us_per_worker"] for row in rows]
    assert max(per_worker) <= 5.0 * min(per_worker), rows

    # Lifecycle: the segment was unlinked exactly once and is provably gone.
    assert result["unlinked_now"] is True
    with pytest.raises(SharedMemoryError):
        attach_prepared(result["stale_descriptor"])
    assert live_owned_segments() == []


def test_bench_shared_memory_pool_run_leaves_no_segments(benchmark, scale):
    if not shared_memory_available():
        pytest.skip("platform has no shared memory")

    def run():
        graph = load_dataset("jazz")
        invalidate(graph)
        expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 12)}
        result = parallel_enumerate_maximal_kplexes(
            graph,
            2,
            12,
            ParallelConfig(num_workers=2, use_processes=True, shared_memory=True),
        )
        return expected, {p.as_set() for p in result.kplexes}

    expected, got = run_once(benchmark, run)
    assert got == expected
    assert live_owned_segments() == []
