"""Figure 8 — speedup ratio of the parallel algorithm with 2/4/8/16 workers.

The paper reports a nearly ideal speedup on all five large graphs (e.g.
15.82x with 16 threads on it-2004).  The reproduction schedules the measured
per-task costs on the deterministic stage scheduler with work stealing and
the timeout mechanism enabled.
"""

from repro.analysis.reporting import render_series
from repro.experiments import figure8_speedup

from _bench_utils import run_once


def test_figure8_speedup(benchmark, scale):
    series = run_once(benchmark, figure8_speedup, scale)
    assert series
    for name, curve in series.items():
        # Speedup is monotone in the worker count and reasonably close to
        # ideal at 16 workers (the paper reports ~15-16x; we require > 10x).
        assert curve[1] == 1.0
        assert curve[2] <= curve[4] <= curve[8] <= curve[16]
        assert curve[16] > 10.0, f"{name}: poor simulated scalability {curve[16]}"
    print()
    print(render_series(series, x_label="workers", title="Figure 8 — speedup ratio (simulated)"))
