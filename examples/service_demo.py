"""Serving layer demo: graph catalog, result cache and service metrics.

Run with::

    python examples/service_demo.py

The example stands up a :class:`repro.KPlexService` the way a long-lived
query endpoint would:

1. register graphs in the catalog under stable names (pre-warming the
   prepared index for the ``(k, q)`` pairs the service expects);
2. replay repeated community-search traffic and watch the cross-request
   result cache absorb it;
3. invalidate a graph and show that the epoch bump retires its cached
   results;
4. print the service metrics snapshot (hit rate, latency percentiles,
   cache budgets and evictions).
"""

import time

from repro import Graph, ServiceConfig
from repro.service import KPlexService


def build_collaboration_graph() -> Graph:
    """Two overlapping tight groups — the quickstart's toy network."""
    edges = [
        ("alice", "bob"), ("alice", "carol"), ("alice", "dave"), ("alice", "erin"),
        ("bob", "carol"), ("bob", "dave"), ("carol", "dave"), ("carol", "erin"),
        ("dave", "erin"), ("erin", "frank"), ("erin", "grace"), ("frank", "grace"),
        ("frank", "heidi"), ("frank", "ivan"), ("grace", "heidi"), ("grace", "ivan"),
        ("heidi", "ivan"),
    ]
    return Graph.from_edges(edges)


def main() -> None:
    # A service with a deliberately small result-cache budget so the demo
    # can also show evictions; production would size these to the workload.
    config = ServiceConfig(
        max_workers=2,
        result_cache_entries=8,
        result_cache_bytes=4 * 1024 * 1024,
        prepared_core_budget=4,
    )
    with KPlexService(config=config) as service:
        # -- 1. the catalog: graphs as named, pre-warmed resources -------- #
        service.catalog.register(
            "collab", build_collaboration_graph(), prewarm=[(2, 4)]
        )
        service.catalog.register("jazz", "dataset:jazz", prewarm=[(2, 8)])
        print("catalog:")
        for row in service.catalog.info():
            print(
                f"  {row['name']:<8} {row['vertices']:>5} vertices "
                f"{row['edges']:>6} edges  ~{row['memory_bytes'] / 1024:.0f} KiB "
                f"(source: {row['source']})"
            )

        # -- 2. repeated traffic: the cache pays for itself --------------- #
        started = time.perf_counter()
        first = service.solve("jazz", k=2, q=8)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(50):
            service.solve("jazz", k=2, q=8)
        warm_each = (time.perf_counter() - started) / 50
        print(
            f"\njazz k=2 q=8: {first.count} maximal 2-plexes; "
            f"first request {cold * 1e3:.1f} ms, "
            f"cached requests {warm_each * 1e6:.0f} us each"
        )

        # Mixed parameters against the small graph, twice each.
        for _ in range(2):
            for k, q in [(2, 4), (2, 5), (3, 5)]:
                response = service.solve("collab", k=k, q=q)
                print(f"collab k={k} q={q}: {response.count} results")

        # -- 3. lifecycle: invalidation retires cached answers ------------ #
        epoch = service.invalidate("jazz")
        refreshed = service.solve("jazz", k=2, q=8)  # recomputed, not stale
        print(
            f"\nafter invalidate (epoch {epoch}): recomputed "
            f"{refreshed.count} results"
        )

        # -- 4. the metrics snapshot -------------------------------------- #
        metrics = service.metrics()
        print("\nservice metrics:")
        print(f"  requests:  {metrics['requests_total']} ({metrics['rejected']} rejected)")
        print(
            f"  cache:     {metrics['cache_hits']} hits / "
            f"{metrics['cache_misses']} misses "
            f"(hit rate {metrics['hit_rate']:.2f})"
        )
        print(
            f"  latency:   p50 {metrics['latency_p50_seconds'] * 1e3:.2f} ms, "
            f"p95 {metrics['latency_p95_seconds'] * 1e3:.2f} ms"
        )
        cache = metrics["result_cache"]
        print(
            f"  budget:    {cache['entries']} entries / "
            f"~{cache['current_bytes'] / 1024:.0f} KiB held, "
            f"{cache['evictions']} evictions"
        )


if __name__ == "__main__":
    main()
