"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation refers to unknown vertices."""


class ParameterError(ReproError):
    """Raised when enumeration parameters (``k``, ``q``, thresholds) are invalid."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be found or constructed."""


class FormatError(ReproError):
    """Raised when a graph file cannot be parsed in the requested format."""


class ServiceError(ReproError):
    """Base class for errors raised by the serving layer (:mod:`repro.service`)."""


class CatalogError(ServiceError):
    """Raised for graph-catalog lifecycle problems (unknown/duplicate names, bad sources)."""


class ServiceOverloadError(ServiceError):
    """Raised when admission control rejects a request (worker pool and queue full)."""
