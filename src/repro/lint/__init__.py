"""Project-specific static analysis (``kplex-enum lint``).

A stdlib-only AST analysis framework encoding this repository's own
invariants — lock discipline, epoch-keyed caches, resource cleanup,
solver determinism, exception hygiene — as pluggable checks.  See
:mod:`repro.lint.registry` for how to add one and
:mod:`repro.lint.baseline` for the grandfathering workflow.
"""

from .analyzer import LintResult, analyze, run_checks
from .baseline import BASELINE_NAME, Baseline, load_baseline, write_baseline
from .finding import Finding
from .model import (
    Project,
    SourceModule,
    build_project,
    build_project_from_sources,
    collect_files,
    find_repo_root,
)
from .registry import (
    Check,
    check_names,
    check_table,
    get_check,
    register_check,
    unregister_check,
)
from .reporters import REPORT_VERSION, render_json, render_text, summary_line

__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "Check",
    "Finding",
    "LintResult",
    "Project",
    "REPORT_VERSION",
    "SourceModule",
    "analyze",
    "build_project",
    "build_project_from_sources",
    "check_names",
    "check_table",
    "collect_files",
    "find_repo_root",
    "get_check",
    "load_baseline",
    "register_check",
    "render_json",
    "render_text",
    "run_checks",
    "summary_line",
    "unregister_check",
    "write_baseline",
]
