"""Bounded metrics primitives with Prometheus text rendering.

Replaces the unbounded sample deques previously used for p50/p95: a
:class:`Histogram` keeps a fixed set of cumulative bucket counters (O(1)
memory regardless of traffic) and estimates quantiles from bucket upper
bounds, the same trade-off Prometheus itself makes.  A
:class:`MetricsRegistry` keys counters/gauges/histograms by name plus a
frozen label set and renders the whole family as exposition-format 0.0.4
text, including proper ``_bucket``/``_sum``/``_count`` series and escaped
label values.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_labels",
]

#: Latency-style boundaries (seconds): 1ms .. 60s, roughly log-spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Size-style boundaries (counts): 1 .. 100k, roughly log-spaced.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0, 50000.0, 100000.0,
)


def escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping; hostile graph names carrying any of them
    must round-trip into a single well-formed exposition line.
    """

    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: Optional[Mapping[str, Any]]) -> str:
    """Render a ``{key="value",...}`` block (empty string for no labels)."""

    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonic counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Free-moving instantaneous value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket quantile estimates.

    Memory is O(len(buckets)) forever.  Quantiles are estimated as the
    upper bound of the bucket containing the nearest-rank sample, clamped
    to the observed max so a single small sample does not report a whole
    bucket width.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_min", "_max", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, fraction: float) -> Optional[float]:
        """Estimated value at ``fraction`` (0..1); None when empty."""

        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return None
            target = max(1, math.ceil(fraction * total))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target:
                    if index < len(self._bounds):
                        estimate = self._bounds[index]
                    else:  # overflow bucket: best info we have is the max
                        estimate = self._max if self._max is not None else math.inf
                    if self._max is not None:
                        estimate = min(estimate, self._max)
                    if self._min is not None:
                        estimate = max(estimate, self._min)
                    return estimate
            return self._max  # pragma: no cover - cumulative always reaches

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""

        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            other_sum, other_count = other._sum, other._count
            other_min, other_max = other._min, other._max
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._sum += other_sum
            self._count += other_count
            if other_min is not None and (self._min is None or other_min < self._min):
                self._min = other_min
            if other_max is not None and (self._max is None or other_max > self._max):
                self._max = other_max

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from a :meth:`snapshot` document.

        The inverse of :meth:`snapshot`: bucket counts arrive cumulative and
        are de-accumulated back into per-bucket increments, so the result can
        be folded into a live histogram via :meth:`merge`.  This is how the
        cluster router aggregates replica telemetry it only sees over HTTP.
        """

        buckets = payload.get("buckets")
        if not isinstance(buckets, (list, tuple)) or not buckets:
            raise ValueError("histogram snapshot needs a non-empty 'buckets' list")
        bounds = [
            float(bucket["le"]) for bucket in buckets if bucket.get("le") != "+Inf"
        ]
        if not bounds:
            raise ValueError("histogram snapshot has no finite bucket bounds")
        histogram = cls(bounds)
        counts: List[int] = []
        previous = 0
        for bucket in buckets:
            cumulative = int(bucket["count"])
            if cumulative < previous:
                raise ValueError("histogram bucket counts must be cumulative")
            counts.append(cumulative - previous)
            previous = cumulative
        if len(counts) == len(bounds):
            # Snapshot without an explicit +Inf bucket: nothing overflowed.
            counts.append(0)
        histogram._counts = counts
        histogram._count = int(payload.get("count", previous))
        histogram._sum = float(payload.get("sum", 0.0))
        if payload.get("min") is not None:
            histogram._min = float(payload["min"])
            histogram._max = float(payload.get("max", payload["min"]))
        return histogram

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state: cumulative bucket counts plus summary stats."""

        with self._lock:
            cumulative = 0
            buckets: List[Dict[str, Any]] = []
            for bound, bucket_count in zip(self._bounds, self._counts):
                cumulative += bucket_count
                buckets.append({"le": bound, "count": cumulative})
            buckets.append({"le": "+Inf", "count": self._count})
            payload: Dict[str, Any] = {
                "count": self._count,
                "sum": round(self._sum, 9),
                "buckets": buckets,
            }
            if self._min is not None:
                payload["min"] = self._min
                payload["max"] = self._max
        return payload


class MetricsRegistry:
    """Named metric families, each a set of label-keyed children.

    ``counter``/``gauge``/``histogram`` are get-or-create and thread-safe;
    re-registering a name as a different kind raises, as Prometheus would
    reject the scrape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._children: Dict[str, Dict[Tuple[Tuple[str, str], ...], Any]] = {}

    @staticmethod
    def _label_key(labels: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, str], ...]:
        if not labels:
            return ()
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get_or_create(
        self,
        kind: str,
        name: str,
        labels: Optional[Mapping[str, Any]],
        help_text: Optional[str],
        factory,
    ):
        key = self._label_key(labels)
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is None:
                self._kinds[name] = kind
                self._children[name] = {}
            elif existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}"
                )
            if help_text:
                self._help.setdefault(name, help_text)
            family = self._children[name]
            child = family.get(key)
            if child is None:
                child = factory()
                family[key] = child
            return child

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        help_text: Optional[str] = None,
    ) -> Counter:
        return self._get_or_create("counter", name, labels, help_text, Counter)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        help_text: Optional[str] = None,
    ) -> Gauge:
        return self._get_or_create("gauge", name, labels, help_text, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        buckets: Optional[Sequence[float]] = None,
        help_text: Optional[str] = None,
    ) -> Histogram:
        chosen = tuple(float(b) for b in (buckets or DEFAULT_TIME_BUCKETS))
        with self._lock:
            registered = self._buckets.setdefault(name, chosen)
        if buckets is not None and registered != chosen:
            raise ValueError(f"metric {name!r} already registered with other buckets")
        return self._get_or_create(
            "histogram", name, labels, help_text, lambda: Histogram(registered)
        )

    def merge_snapshot(self, payload: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` document into this one.

        Counters and gauges are summed (a cluster-level gauge such as
        ``in_flight`` is the sum over replicas); histograms are rebuilt via
        :meth:`Histogram.from_snapshot` and merged bucket-by-bucket.  Unknown
        family kinds are skipped so future replica versions stay mergeable.
        """

        for name, family in payload.items():
            if not isinstance(family, Mapping):
                continue
            kind = family.get("type")
            for entry in family.get("series", ()):
                labels = entry.get("labels") or None
                if kind == "counter":
                    self.counter(name, labels).inc(float(entry.get("value", 0.0)))
                elif kind == "gauge":
                    self.gauge(name, labels).inc(float(entry.get("value", 0.0)))
                elif kind == "histogram":
                    other = Histogram.from_snapshot(entry)
                    self.histogram(name, labels, buckets=other.bounds).merge(other)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every family and child."""

        with self._lock:
            families = {
                name: (self._kinds[name], dict(children))
                for name, children in self._children.items()
            }
        payload: Dict[str, Any] = {}
        for name in sorted(families):
            kind, children = families[name]
            series = []
            for key in sorted(children):
                child = children[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if kind == "histogram":
                    entry.update(child.snapshot())
                else:
                    entry["value"] = child.value
                series.append(entry)
            payload[name] = {"type": kind, "series": series}
        return payload

    def render_prometheus(self, prefix: str = "kplex") -> str:
        """Exposition-format text for every family in the registry."""

        with self._lock:
            families = {
                name: (self._kinds[name], self._help.get(name), dict(children))
                for name, children in self._children.items()
            }
        lines: List[str] = []
        for name in sorted(families):
            kind, help_text, children = families[name]
            full = f"{prefix}_{name}" if prefix else name
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            for key in sorted(children):
                child = children[key]
                labels = dict(key)
                if kind == "histogram":
                    state = child.snapshot()
                    for bucket in state["buckets"]:
                        bucket_labels = dict(labels)
                        le = bucket["le"]
                        bucket_labels["le"] = (
                            le if isinstance(le, str) else _format_value(le)
                        )
                        lines.append(
                            f"{full}_bucket{format_labels(bucket_labels)}"
                            f" {bucket['count']}"
                        )
                    lines.append(
                        f"{full}_sum{format_labels(labels)}"
                        f" {_format_value(state['sum'])}"
                    )
                    lines.append(
                        f"{full}_count{format_labels(labels)} {state['count']}"
                    )
                else:
                    lines.append(
                        f"{full}{format_labels(labels)}"
                        f" {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
