"""Quickstart: enumerate large maximal k-plexes of a small graph.

Run with::

    python examples/quickstart.py

The example builds a small social-style graph, enumerates all maximal
2-plexes with at least 5 vertices, verifies them, and prints them together
with the search statistics — the 60-second tour of the public API.
"""

from repro import Graph, KPlexEnumerator
from repro.analysis import cohesion_metrics, verify_results


def build_example_graph() -> Graph:
    """A toy collaboration network: two tight groups sharing two members."""
    edges = [
        # Group A: {alice, bob, carol, dave, erin} — almost a clique.
        ("alice", "bob"),
        ("alice", "carol"),
        ("alice", "dave"),
        ("alice", "erin"),
        ("bob", "carol"),
        ("bob", "dave"),
        ("carol", "dave"),
        ("carol", "erin"),
        ("dave", "erin"),
        # Group B: {erin, frank, grace, heidi, ivan} — also missing a few links.
        ("erin", "frank"),
        ("erin", "grace"),
        ("frank", "grace"),
        ("frank", "heidi"),
        ("frank", "ivan"),
        ("grace", "heidi"),
        ("grace", "ivan"),
        ("heidi", "ivan"),
        # A couple of stray acquaintances.
        ("bob", "frank"),
        ("dave", "ivan"),
    ]
    return Graph.from_edges(edges)


def main() -> None:
    graph = build_example_graph()
    k, q = 2, 5

    enumerator = KPlexEnumerator(graph, k=k, q=q)
    result = enumerator.run()

    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"Maximal {k}-plexes with at least {q} vertices: {result.count}")
    for plex in result:
        metrics = cohesion_metrics(graph, plex.vertices)
        members = ", ".join(str(label) for label in plex.labels)
        print(f"  size={plex.size} density={metrics.density:.2f}  [{members}]")

    report = verify_results(graph, result.kplexes, k, q)
    print(f"Verification: {report.summary()}")
    print(f"Search statistics: {result.statistics}")


if __name__ == "__main__":
    main()
