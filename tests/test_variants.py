"""All algorithm variants and baselines must return identical result sets.

This is the library's version of the paper's consistency check ("we have
verified that all three algorithms return the same result set for each
dataset and parameters").
"""

import pytest

from repro.baselines import (
    bron_kerbosch_vertex_sets,
    fp_vertex_sets,
    listplex_vertex_sets,
)
from repro.baselines.brute_force import brute_force_vertex_sets
from repro.core import EnumerationConfig, enumerate_maximal_kplexes
from repro.graph import generators

from _helpers import random_graph_cases, vertex_sets

VARIANTS = {
    "Ours": EnumerationConfig.ours(),
    "Ours_P": EnumerationConfig.ours_p(),
    "Basic": EnumerationConfig.basic(),
    "Basic+R1": EnumerationConfig.basic_with_r1(),
    "Basic+R2": EnumerationConfig.basic_with_r2(),
    "Ours\\ub": EnumerationConfig.without_upper_bound(),
    "Ours\\ub+fp": EnumerationConfig.with_fp_upper_bound(),
    "no-seed-pruning": EnumerationConfig.ours().with_changes(use_seed_pruning=False),
}


@pytest.mark.parametrize("name,config", sorted(VARIANTS.items()))
def test_variant_matches_oracle_on_random_graphs(name, config):
    for index, graph in enumerate(random_graph_cases(8, max_vertices=11, seed=33)):
        for k in (2, 3):
            q = 2 * k - 1
            expected = brute_force_vertex_sets(graph, k, q)
            actual = vertex_sets(enumerate_maximal_kplexes(graph, k, q, config))
            assert actual == expected, f"{name} disagrees on graph #{index}, k={k}"


@pytest.mark.parametrize("name,config", sorted(VARIANTS.items()))
def test_variant_matches_default_on_structured_graph(name, config):
    graph = generators.relaxed_caveman(4, 7, 0.3, seed=44)
    k, q = 2, 6
    expected = vertex_sets(enumerate_maximal_kplexes(graph, k, q))
    actual = vertex_sets(enumerate_maximal_kplexes(graph, k, q, config))
    assert actual == expected, name


def test_baselines_match_default_on_structured_graph():
    graph = generators.relaxed_caveman(4, 7, 0.3, seed=45)
    k, q = 2, 6
    expected = vertex_sets(enumerate_maximal_kplexes(graph, k, q))
    assert listplex_vertex_sets(graph, k, q) == expected
    assert fp_vertex_sets(graph, k, q) == expected
    assert bron_kerbosch_vertex_sets(graph, k, q) == expected


def test_all_variants_agree_on_planted_kplex_graph():
    graph = generators.planted_kplex(40, 0.08, 8, 2, num_plexes=2, seed=46)
    k, q = 2, 6
    families = {
        name: vertex_sets(enumerate_maximal_kplexes(graph, k, q, config))
        for name, config in VARIANTS.items()
    }
    reference = families["Ours"]
    assert reference  # the planted structures guarantee non-empty results
    for name, family in families.items():
        assert family == reference, name
