"""Synthetic graph generators.

The original evaluation runs on SNAP and LAW graphs that are not shipped with
this repository (and are far too large for a pure-Python branch-and-bound).
These generators produce deterministic synthetic graphs with the structural
features that matter for k-plex enumeration: skewed degree distributions,
degeneracy much smaller than ``n``, and planted dense substructures that give
rise to large maximal k-plexes.  They are used by :mod:`repro.datasets` to
build scaled surrogates for every dataset in Table 2 and by the test suite to
produce randomised inputs.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ParameterError
from .graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


# --------------------------------------------------------------------------- #
# Classic random graph models
# --------------------------------------------------------------------------- #
def erdos_renyi(num_vertices: int, probability: float, seed: Optional[int] = None) -> Graph:
    """Generate a G(n, p) Erdős–Rényi graph."""
    if not 0.0 <= probability <= 1.0:
        raise ParameterError("probability must lie in [0, 1]")
    rng = _rng(seed)
    edges = [
        (u, v)
        for u, v in itertools.combinations(range(num_vertices), 2)
        if rng.random() < probability
    ]
    return Graph.from_edges(edges, vertices=range(num_vertices))


def gnm_random(num_vertices: int, num_edges: int, seed: Optional[int] = None) -> Graph:
    """Generate a G(n, m) random graph with exactly ``num_edges`` edges."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ParameterError(f"cannot place {num_edges} edges in a {num_vertices}-vertex graph")
    rng = _rng(seed)
    chosen: Set[Tuple[int, int]] = set()
    while len(chosen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return Graph.from_edges(chosen, vertices=range(num_vertices))


def barabasi_albert(num_vertices: int, attachments: int, seed: Optional[int] = None) -> Graph:
    """Generate a preferential-attachment graph (Barabási–Albert model).

    Every new vertex attaches to ``attachments`` existing vertices chosen with
    probability proportional to their current degree, producing the heavy-tail
    degree distribution typical of the social and web graphs in Table 2.
    """
    if attachments < 1 or attachments >= num_vertices:
        raise ParameterError("attachments must satisfy 1 <= attachments < num_vertices")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    # Repeated-targets list: each endpoint occurrence acts as a degree token.
    repeated: List[int] = list(range(attachments))
    for new_vertex in range(attachments, num_vertices):
        targets: Set[int] = set()
        while len(targets) < attachments:
            targets.add(rng.choice(repeated) if repeated else rng.randrange(new_vertex))
        for target in targets:
            edges.append((new_vertex, target))
            repeated.append(target)
            repeated.append(new_vertex)
    return Graph.from_edges(edges, vertices=range(num_vertices))


def powerlaw_configuration(
    num_vertices: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: Optional[int] = None,
) -> Graph:
    """Generate a graph with a power-law degree sequence via the configuration model.

    Self-loops and parallel edges produced by the stub matching are discarded,
    so realised degrees are close to (not exactly equal to) the sampled
    sequence — the standard simplification for benchmark generation.
    """
    if max_degree is None:
        max_degree = max(min_degree + 1, int(num_vertices ** 0.5))
    if min_degree < 1 or max_degree < min_degree:
        raise ParameterError("degree bounds must satisfy 1 <= min_degree <= max_degree")
    rng = _rng(seed)
    # Sample degrees from a discrete power law by inverse-transform sampling.
    weights = [d ** (-exponent) for d in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cumulative = list(itertools.accumulate(w / total for w in weights))

    def sample_degree() -> int:
        u = rng.random()
        for offset, bound in enumerate(cumulative):
            if u <= bound:
                return min_degree + offset
        return max_degree

    degrees = [sample_degree() for _ in range(num_vertices)]
    if sum(degrees) % 2 == 1:
        degrees[rng.randrange(num_vertices)] += 1
    stubs: List[int] = []
    for vertex, degree in enumerate(degrees):
        stubs.extend([vertex] * degree)
    rng.shuffle(stubs)
    edges = []
    for position in range(0, len(stubs) - 1, 2):
        u, v = stubs[position], stubs[position + 1]
        if u != v:
            edges.append((u, v))
    return Graph.from_edges(edges, vertices=range(num_vertices))


# --------------------------------------------------------------------------- #
# Structured / community models
# --------------------------------------------------------------------------- #
def relaxed_caveman(
    num_communities: int,
    community_size: int,
    rewire_probability: float = 0.1,
    seed: Optional[int] = None,
) -> Graph:
    """Generate a relaxed caveman graph (cliques with randomly rewired edges)."""
    rng = _rng(seed)
    num_vertices = num_communities * community_size
    edges: List[Tuple[int, int]] = []
    for community in range(num_communities):
        members = range(community * community_size, (community + 1) * community_size)
        for u, v in itertools.combinations(members, 2):
            if rng.random() < rewire_probability:
                w = rng.randrange(num_vertices)
                if w not in (u, v):
                    edges.append((u, w))
                    continue
            edges.append((u, v))
    return Graph.from_edges(edges, vertices=range(num_vertices))


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """Generate ``num_cliques`` cliques connected in a ring by single edges."""
    if num_cliques < 1 or clique_size < 1:
        raise ParameterError("num_cliques and clique_size must be positive")
    edges: List[Tuple[int, int]] = []
    for clique in range(num_cliques):
        base = clique * clique_size
        members = range(base, base + clique_size)
        edges.extend(itertools.combinations(members, 2))
        if num_cliques > 1:
            next_base = ((clique + 1) % num_cliques) * clique_size
            edges.append((base, next_base))
    return Graph.from_edges(edges, vertices=range(num_cliques * clique_size))


def planted_kplex(
    num_vertices: int,
    background_probability: float,
    plex_size: int,
    k: int,
    num_plexes: int = 1,
    seed: Optional[int] = None,
) -> Graph:
    """Generate a sparse background graph with planted k-plexes.

    Each planted structure is a clique on ``plex_size`` vertices from which at
    most ``k - 1`` incident edges per vertex are removed, so the planted set is
    guaranteed to remain a k-plex.  Planted sets are vertex-disjoint; the
    remaining vertices form an Erdős–Rényi background.
    """
    if plex_size * num_plexes > num_vertices:
        raise ParameterError("planted structures do not fit into the requested vertex count")
    if plex_size < 2:
        raise ParameterError("plex_size must be at least 2")
    rng = _rng(seed)
    edges: Set[Tuple[int, int]] = set()
    for u, v in itertools.combinations(range(num_vertices), 2):
        if rng.random() < background_probability:
            edges.add((u, v))

    for plex_index in range(num_plexes):
        members = list(range(plex_index * plex_size, (plex_index + 1) * plex_size))
        plex_edges = {(min(u, v), max(u, v)) for u, v in itertools.combinations(members, 2)}
        # Remove up to k-1 edges per vertex while keeping the removal budget.
        removable_budget = {vertex: k - 1 for vertex in members}
        removable = sorted(plex_edges)
        rng.shuffle(removable)
        removed = set()
        for u, v in removable:
            if removable_budget[u] > 0 and removable_budget[v] > 0 and rng.random() < 0.3:
                removed.add((u, v))
                removable_budget[u] -= 1
                removable_budget[v] -= 1
        edges.update(plex_edges - removed)
        edges.difference_update(removed)
    return Graph.from_edges(edges, vertices=range(num_vertices))


def watts_strogatz(
    num_vertices: int,
    neighbours: int,
    rewire_probability: float,
    seed: Optional[int] = None,
) -> Graph:
    """Generate a Watts–Strogatz small-world graph.

    Vertices start on a ring lattice connected to their ``neighbours`` nearest
    neighbours (``neighbours`` must be even); each lattice edge is rewired to
    a uniformly random endpoint with probability ``rewire_probability``.
    Small-world graphs exercise the enumerator on inputs with high clustering
    but no planted dense blocks.
    """
    if neighbours % 2 != 0 or neighbours < 2:
        raise ParameterError("neighbours must be an even integer >= 2")
    if neighbours >= num_vertices:
        raise ParameterError("neighbours must be smaller than num_vertices")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ParameterError("rewire_probability must lie in [0, 1]")
    rng = _rng(seed)
    edges: Set[Tuple[int, int]] = set()
    half = neighbours // 2
    for vertex in range(num_vertices):
        for offset in range(1, half + 1):
            target = (vertex + offset) % num_vertices
            if rng.random() < rewire_probability:
                rewired = rng.randrange(num_vertices)
                if rewired != vertex:
                    target = rewired
            if target != vertex:
                edges.add((min(vertex, target), max(vertex, target)))
    return Graph.from_edges(edges, vertices=range(num_vertices))


def grid_graph(rows: int, columns: int) -> Graph:
    """Generate the ``rows x columns`` two-dimensional grid graph."""
    if rows < 1 or columns < 1:
        raise ParameterError("rows and columns must be positive")
    edges = []
    for row in range(rows):
        for column in range(columns):
            vertex = row * columns + column
            if column + 1 < columns:
                edges.append((vertex, vertex + 1))
            if row + 1 < rows:
                edges.append((vertex, vertex + columns))
    return Graph.from_edges(edges, vertices=range(rows * columns))


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: Optional[int] = None,
) -> Graph:
    """Generate a planted-partition (stochastic block model) graph."""
    rng = _rng(seed)
    num_vertices = num_communities * community_size
    community = [vertex // community_size for vertex in range(num_vertices)]
    edges = []
    for u, v in itertools.combinations(range(num_vertices), 2):
        probability = p_in if community[u] == community[v] else p_out
        if rng.random() < probability:
            edges.append((u, v))
    return Graph.from_edges(edges, vertices=range(num_vertices))


# --------------------------------------------------------------------------- #
# Deterministic small graphs (useful in unit tests and examples)
# --------------------------------------------------------------------------- #
def path_graph(num_vertices: int) -> Graph:
    """Return the path on ``num_vertices`` vertices."""
    edges = [(v, v + 1) for v in range(num_vertices - 1)]
    return Graph.from_edges(edges, vertices=range(num_vertices))


def cycle_graph(num_vertices: int) -> Graph:
    """Return the cycle on ``num_vertices`` vertices."""
    if num_vertices < 3:
        raise ParameterError("a cycle needs at least three vertices")
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    return Graph.from_edges(edges, vertices=range(num_vertices))


def star_graph(num_leaves: int) -> Graph:
    """Return the star with one hub (vertex 0) and ``num_leaves`` leaves."""
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return Graph.from_edges(edges, vertices=range(num_leaves + 1))


def complete_graph(num_vertices: int) -> Graph:
    """Return the complete graph on ``num_vertices`` vertices."""
    return Graph.complete(num_vertices)


def complete_multipartite(part_sizes: Sequence[int]) -> Graph:
    """Return the complete multipartite graph with the given part sizes."""
    offsets = [0]
    for size in part_sizes:
        offsets.append(offsets[-1] + size)
    edges = []
    for a in range(len(part_sizes)):
        for b in range(a + 1, len(part_sizes)):
            for u in range(offsets[a], offsets[a + 1]):
                for v in range(offsets[b], offsets[b + 1]):
                    edges.append((u, v))
    return Graph.from_edges(edges, vertices=range(offsets[-1]))


def paper_figure3_graph() -> Graph:
    """Return the toy graph of Figure 3 in the paper.

    Vertices are labelled ``v1 .. v7`` (internally 0..6).  The edge set is the
    one used by the running examples for pivot selection (Example 4.1) and the
    upper bounds (Examples 5.4 and 5.6): ``P = {v1, v3}``, ``C = {v2, v5, v7}``
    with ``k = 2``.

    The exact drawing is not reproduced in the text, so the edge set below is
    reconstructed to satisfy every fact the running examples state: ``N(v1) =
    {v2, v5, v7}``, ``d(v3) = 2`` with ``v3`` adjacent to ``v2`` only inside
    ``P ∪ C``, ``v7`` adjacent to ``v5`` but not ``v2`` or ``v3``, and ``v5``
    adjacent to ``v1`` but not ``v3``.
    """
    labels = [f"v{i}" for i in range(1, 8)]
    edges = [
        ("v1", "v2"),
        ("v1", "v5"),
        ("v1", "v7"),
        ("v2", "v3"),
        ("v2", "v5"),
        ("v3", "v4"),
        ("v5", "v7"),
        ("v6", "v7"),
        ("v4", "v6"),
    ]
    return Graph.from_edges(edges, vertices=labels)


def disjoint_union(graphs: Iterable[Graph]) -> Graph:
    """Return the disjoint union of the given graphs (labels are re-assigned)."""
    edges: List[Tuple[int, int]] = []
    offset = 0
    total = 0
    for graph in graphs:
        for u, v in graph.edges():
            edges.append((u + offset, v + offset))
        offset += graph.num_vertices
        total = offset
    return Graph.from_edges(edges, vertices=range(total))
