"""Pluggable check registry — the lint-side mirror of the solver registry.

Adding a checker is one decorated class::

    from repro.lint import Check, register_check

    @register_check("my-check")
    class MyCheck(Check):
        description = "flag the thing"

        def run(self, project):
            for module in project.modules:
                ...
                yield Finding(...)

Registered checks run project-wide (a check that needs cross-module facts,
like the lock-order cycle detector, sees every module at once); per-module
checks simply iterate ``project.modules`` themselves.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterator, List, Tuple, Type

from .finding import Finding
from .model import Project

__all__ = [
    "Check",
    "register_check",
    "unregister_check",
    "get_check",
    "check_names",
    "check_table",
]


class Check(abc.ABC):
    """Interface every registered lint check implements."""

    #: Registry name; filled in by :func:`register_check`.
    name: str = ""
    #: Human-readable one-liner for ``--list-checks``.
    description: str = ""

    @abc.abstractmethod
    def run(self, project: Project) -> Iterator[Finding]:
        """Yield findings over the whole project."""


_REGISTRY: Dict[str, Type[Check]] = {}
_PRIMARY_NAMES: List[str] = []


def _normalise(name: str) -> str:
    return name.strip().lower()


def register_check(
    name: str,
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Type[Check]], Type[Check]]:
    """Class decorator registering a :class:`Check` under ``name``."""

    def decorator(cls: Type[Check]) -> Type[Check]:
        if not issubclass(cls, Check):
            raise TypeError(f"{cls.__name__} must subclass Check to be registered")
        keys = [_normalise(name)] + [_normalise(alias) for alias in aliases]
        for key in keys:
            if not replace and key in _REGISTRY and _REGISTRY[key] is not cls:
                raise ValueError(f"check name {key!r} is already registered")
        cls.name = _normalise(name)
        for key in keys:
            _REGISTRY[key] = cls
        if cls.name not in _PRIMARY_NAMES:
            _PRIMARY_NAMES.append(cls.name)
        return cls

    return decorator


def unregister_check(name: str) -> None:
    """Remove a registration (primarily for tests); unknown names ignored."""
    key = _normalise(name)
    cls = _REGISTRY.pop(key, None)
    if cls is not None and key in _PRIMARY_NAMES:
        _PRIMARY_NAMES.remove(key)
        for alias in [alias for alias, target in _REGISTRY.items() if target is cls]:
            del _REGISTRY[alias]


def get_check(name: str) -> Type[Check]:
    """Resolve a registry name; raises ``ValueError`` with the known names."""
    try:
        return _REGISTRY[_normalise(name)]
    except KeyError:
        known = ", ".join(sorted(_PRIMARY_NAMES))
        raise ValueError(f"unknown check {name!r}; registered checks: {known}") from None


def check_names() -> List[str]:
    """Primary names, in registration order."""
    return list(_PRIMARY_NAMES)


def check_table() -> List[Dict[str, str]]:
    """``{check, description}`` rows for listings."""
    return [
        {"check": name, "description": _REGISTRY[name].description}
        for name in _PRIMARY_NAMES
    ]
