"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs work on minimal environments where the ``wheel``
package (needed for PEP 660 editable wheels) is unavailable.
"""

from setuptools import setup

setup()
