"""Search-space partitioning into seed subgraphs and initial sub-tasks (Algorithm 2).

For every seed vertex ``v_i`` (taken in degeneracy order) the algorithm
builds a *seed subgraph* ``G_i`` induced by the vertices that come after
``v_i`` in the ordering and lie within two hops of it (Eq (1) of the paper),
shrinks it with Corollary 5.2, and splits the work under ``v_i`` into
independent sub-tasks ``T_{ {v_i} ∪ S }`` — one per subset ``S`` of the
seed's non-neighbours in ``G_i`` with ``|S| <= k - 1``.  Each sub-task is a
``⟨P, C, X⟩`` triple ready to be mined by the branch-and-bound search of
Algorithm 3; the exclusive set ``X`` carries both the seed subgraph vertices
excluded from ``S`` and the *external* vertices that precede ``v_i`` in the
ordering but could still witness non-maximality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..graph import Graph
from ..graph.bitset import bits_to_list, iter_bits
from ..graph.dense import DenseSubgraph, external_adjacency_mask
from ..graph.prepared import PreparedGraph, prepare
from .bounds import seed_task_bound
from .config import EnumerationConfig
from .pruning import build_pair_matrix, corollary_52_keep
from .stats import SearchStatistics


@dataclass
class SeedContext:
    """Everything shared by the sub-tasks of one seed vertex (one task group).

    Attributes
    ----------
    seed_vertex:
        The seed's vertex id in the mined graph.
    subgraph:
        The dense (bitset) representation of the pruned seed subgraph ``G_i``.
    seed_local:
        Local index of the seed inside :attr:`subgraph`.
    candidate_mask:
        ``C_S = N_{G_i}(v_i)`` as a local bitset.
    two_hop_mask:
        The seed's non-neighbours in ``G_i`` (the pool the sets ``S`` are
        drawn from) as a local bitset.
    external_vertices / external_adjacency:
        The vertices of ``V'_i`` (earlier in the degeneracy ordering, within
        two hops of the seed) and their adjacency projected into the local
        index space; they participate only in maximality checks.
    degrees:
        Degree of every local vertex inside the pruned ``G_i`` (Theorem 5.3).
    pair_ok:
        The co-occurrence bitset rows of Theorems 5.13–5.15, or ``None`` when
        rule R2 is disabled.
    """

    seed_vertex: int
    subgraph: DenseSubgraph
    seed_local: int
    candidate_mask: int
    two_hop_mask: int
    external_vertices: List[int]
    external_adjacency: List[int]
    degrees: List[int]
    pair_ok: Optional[List[int]] = None

    @property
    def size(self) -> int:
        """Number of vertices in the (pruned) seed subgraph."""
        return self.subgraph.size


@dataclass(frozen=True)
class SubTask:
    """One initial sub-task ``T_{ {v_i} ∪ S } = ⟨P_S, C_S, X_S⟩`` (local bitsets)."""

    p_mask: int
    c_mask: int
    x_mask: int
    x_external_mask: int

    def describe(self, context: SeedContext) -> str:
        """Human-readable description used in logs and straggler reports."""
        members = context.subgraph.parents_of_mask(self.p_mask)
        return f"seed={context.seed_vertex} P={members}"


def build_seed_context(
    graph: Graph,
    order_position: Sequence[int],
    seed_vertex: int,
    k: int,
    q: int,
    config: EnumerationConfig,
    stats: Optional[SearchStatistics] = None,
) -> Optional[SeedContext]:
    """Build the :class:`SeedContext` for one seed vertex, or ``None`` if prunable.

    ``order_position[v]`` must give the position of vertex ``v`` in the
    degeneracy ordering.  ``None`` is returned when the (pruned) seed
    subgraph is too small to contain a k-plex with ``q`` vertices.

    The expansion deliberately stays on the frozenset adjacency: CPython's
    C-level set unions measure faster than interpreted scans over the CSR
    rows on every bundled dataset (see ``BENCH_results.json``), so the
    prepared-graph index accelerates this function through what it *caches*
    (the ordering and the shrunk core the caller passes in), not by swapping
    the inner loops.
    """
    seed_position = order_position[seed_vertex]
    neighbors = graph.neighbors(seed_vertex)
    reach = neighbors | graph.two_hop_neighbors(seed_vertex)

    later = [vertex for vertex in reach if order_position[vertex] > seed_position]
    candidate_vertices = set(later)
    candidate_vertices.add(seed_vertex)
    if len(candidate_vertices) < q:
        if stats is not None:
            stats.seeds_pruned_empty += 1
        return None

    if config.use_seed_pruning:
        kept = corollary_52_keep(graph, seed_vertex, candidate_vertices, k, q)
        if stats is not None:
            stats.vertices_pruned_by_corollary += len(candidate_vertices) - len(kept)
    else:
        kept = set(candidate_vertices)
    if len(kept) < q:
        if stats is not None:
            stats.seeds_pruned_empty += 1
        return None

    # Local ordering: seed first, then its neighbours, then its non-neighbours,
    # each group sorted by vertex id.  Keeping the seed at index 0 makes masks
    # easy to reason about in tests.
    kept_neighbors = sorted(v for v in kept if v in neighbors)
    kept_two_hop = sorted(v for v in kept if v != seed_vertex and v not in neighbors)
    local_vertices = [seed_vertex] + kept_neighbors + kept_two_hop
    subgraph = DenseSubgraph(graph, local_vertices)
    seed_local = 0
    candidate_mask = subgraph.mask_of_parents(kept_neighbors)
    two_hop_mask = subgraph.mask_of_parents(kept_two_hop)

    # External exclusive vertices: earlier in the ordering, within two hops.
    external_vertices = sorted(
        vertex for vertex in reach if order_position[vertex] < seed_position
    )
    external_adjacency = [
        external_adjacency_mask(subgraph, vertex) for vertex in external_vertices
    ]
    degrees = [subgraph.degree(v) for v in range(subgraph.size)]

    pair_ok = None
    if config.use_pair_pruning:
        pair_ok = build_pair_matrix(
            subgraph, seed_local, candidate_mask, two_hop_mask, k, q
        )

    if stats is not None:
        stats.record_seed(seed_vertex, subgraph.size)
    return SeedContext(
        seed_vertex=seed_vertex,
        subgraph=subgraph,
        seed_local=seed_local,
        candidate_mask=candidate_mask,
        two_hop_mask=two_hop_mask,
        external_vertices=external_vertices,
        external_adjacency=external_adjacency,
        degrees=degrees,
        pair_ok=pair_ok,
    )


def iter_subtasks(
    context: SeedContext,
    k: int,
    q: int,
    config: EnumerationConfig,
    stats: Optional[SearchStatistics] = None,
) -> Iterator[SubTask]:
    """Enumerate the sub-tasks of a seed context (Algorithm 2 lines 7–10).

    Subsets ``S`` of the seed's non-neighbours are generated by a
    set-enumeration search bounded by ``|S| <= k - 1``.  When rule R2 is
    active, extending ``S`` by a vertex ``u`` immediately filters both the
    remaining extension pool (Theorem 5.13) and the sub-task candidate set
    ``C_S`` (Theorem 5.14) through the pair matrix.  When rule R1 is active,
    sub-tasks whose Theorem 5.7 upper bound falls below ``q`` are skipped.
    """
    subgraph = context.subgraph
    seed_bit = 1 << context.seed_local
    two_hop_members = bits_to_list(context.two_hop_mask)
    pair_ok = context.pair_ok

    def emit(s_mask: int, c_mask: int) -> Optional[SubTask]:
        p_mask = seed_bit | s_mask
        if stats is not None:
            stats.subtasks += 1
        if config.use_seed_upper_bound and s_mask:
            bound = seed_task_bound(
                subgraph, context.seed_local, p_mask, c_mask, context.degrees, k
            )
            if bound < q:
                if stats is not None:
                    stats.subtasks_pruned_by_seed_bound += 1
                return None
        x_mask = context.two_hop_mask & ~s_mask
        return SubTask(
            p_mask=p_mask,
            c_mask=c_mask,
            x_mask=x_mask,
            x_external_mask=(1 << len(context.external_vertices)) - 1,
        )

    def recurse(
        s_mask: int, start: int, c_mask: int, extension_mask: int
    ) -> Iterator[SubTask]:
        task = emit(s_mask, c_mask)
        if task is not None:
            yield task
        if s_mask.bit_count() >= k - 1:
            return
        for position in range(start, len(two_hop_members)):
            vertex = two_hop_members[position]
            if (extension_mask >> vertex) & 1 == 0:
                continue
            new_c_mask = c_mask
            new_extension = extension_mask
            if pair_ok is not None:
                new_c_mask &= pair_ok[vertex]
                new_extension &= pair_ok[vertex]
                if stats is not None:
                    stats.candidates_pruned_by_pairs += (
                        c_mask.bit_count() - new_c_mask.bit_count()
                    )
            yield from recurse(
                s_mask | (1 << vertex), position + 1, new_c_mask, new_extension
            )

    yield from recurse(0, 0, context.candidate_mask, context.two_hop_mask)


def iter_seed_contexts(
    graph: Graph,
    k: int,
    q: int,
    config: EnumerationConfig,
    stats: Optional[SearchStatistics] = None,
    seed_vertices: Optional[Sequence[int]] = None,
    prepared: Optional[PreparedGraph] = None,
) -> Iterator[Tuple[int, Optional[SeedContext]]]:
    """Iterate over ``(seed_vertex, SeedContext or None)`` in degeneracy order.

    The caller is expected to have already shrunk ``graph`` to its
    ``(q - k)``-core (Theorem 3.5); the seed order is the degeneracy ordering
    of that graph.  ``seed_vertices`` restricts the iteration to a subset of
    seeds (used by the parallel executor to assign task groups to workers).
    The degeneracy ordering and the CSR adjacency come from the graph's
    prepared index (computed once per graph, shared across requests); pass
    ``prepared`` to reuse an index the caller already holds.
    """
    if prepared is None:
        prepared = prepare(graph)
    position = prepared.position
    seeds = (
        prepared.decomposition.order if seed_vertices is None else list(seed_vertices)
    )
    for seed_vertex in seeds:
        context = build_seed_context(graph, position, seed_vertex, k, q, config, stats)
        yield seed_vertex, context
