"""Verification of enumeration results.

These helpers are how the repository convinces itself (and its users) that an
enumeration run is correct: every reported set must be a k-plex, maximal, at
least ``q`` vertices large, unique, and — when several algorithms are run on
the same input — all algorithms must report exactly the same family of vertex
sets, which is the consistency check the paper performs between Ours,
ListPlex and FP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from ..core.kplex import KPlex, is_kplex, is_maximal_kplex
from ..graph import Graph
from ..graph.properties import is_connected_subset, subset_diameter


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_results`."""

    total: int
    invalid_kplexes: List[FrozenSet[int]] = field(default_factory=list)
    non_maximal: List[FrozenSet[int]] = field(default_factory=list)
    too_small: List[FrozenSet[int]] = field(default_factory=list)
    duplicates: List[FrozenSet[int]] = field(default_factory=list)
    disconnected: List[FrozenSet[int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not (
            self.invalid_kplexes
            or self.non_maximal
            or self.too_small
            or self.duplicates
            or self.disconnected
        )

    def summary(self) -> str:
        """One-line human readable summary."""
        if self.ok:
            return f"{self.total} results verified: all maximal k-plexes of the required size"
        return (
            f"{self.total} results, "
            f"{len(self.invalid_kplexes)} not k-plexes, "
            f"{len(self.non_maximal)} not maximal, "
            f"{len(self.too_small)} below the size threshold, "
            f"{len(self.duplicates)} duplicated, "
            f"{len(self.disconnected)} disconnected"
        )


def verify_results(
    graph: Graph,
    results: Sequence[KPlex],
    k: int,
    q: int,
    check_connectivity: bool = True,
) -> VerificationReport:
    """Check that ``results`` are valid, maximal, large-enough, unique k-plexes."""
    report = VerificationReport(total=len(results))
    seen: Set[FrozenSet[int]] = set()
    for plex in results:
        members = plex.as_set()
        if members in seen:
            report.duplicates.append(members)
            continue
        seen.add(members)
        if not is_kplex(graph, members, k):
            report.invalid_kplexes.append(members)
            continue
        if len(members) < q:
            report.too_small.append(members)
        if not is_maximal_kplex(graph, members, k):
            report.non_maximal.append(members)
        if check_connectivity and len(members) >= 2 * k - 1:
            if not is_connected_subset(graph, members):
                report.disconnected.append(members)
    return report


def results_as_sets(results: Iterable[KPlex]) -> Set[FrozenSet[int]]:
    """Convert result records into a set of frozensets of vertex ids."""
    return {plex.as_set() for plex in results}


def verify_response(response, check_connectivity: bool = True) -> VerificationReport:
    """Verify an :class:`repro.api.EnumerationResponse` in place.

    Convenience wrapper around :func:`verify_results` that pulls the graph
    and parameters out of the response's request, so engine consumers can
    write ``verify_response(engine.solve(request))``.
    """
    return verify_results(
        response.request.graph,
        response.kplexes,
        response.k,
        response.q,
        check_connectivity=check_connectivity,
    )


def compare_algorithm_outputs(
    outputs: Dict[str, Iterable[KPlex]],
) -> Dict[str, Set[FrozenSet[int]]]:
    """Return the per-algorithm result families that *disagree* with the others.

    The returned dictionary is empty when all algorithms produced exactly the
    same family of vertex sets (the paper's cross-check); otherwise it maps
    each algorithm name to the symmetric difference between its output and
    the union of all outputs, which pinpoints what it missed or invented.
    """
    families = {name: results_as_sets(results) for name, results in outputs.items()}
    if not families:
        return {}
    reference: Set[FrozenSet[int]] = set()
    for family in families.values():
        reference |= family
    disagreements = {
        name: family ^ reference for name, family in families.items() if family != reference
    }
    return disagreements


def diameter_within_bound(graph: Graph, results: Sequence[KPlex], k: int) -> bool:
    """Check Theorem 3.3 on actual results: plexes with ``>= 2k-1`` members have diameter <= 2."""
    for plex in results:
        members = plex.as_set()
        if len(members) >= 2 * k - 1 and len(members) > 1:
            if not is_connected_subset(graph, members):
                return False
            if subset_diameter(graph, members) > 2:
                return False
    return True
