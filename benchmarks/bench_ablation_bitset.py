"""Extra ablation — bitset seed subgraphs vs the plain set-based baseline.

DESIGN.md calls out the dense bitset representation of seed subgraphs as a
design choice of this reproduction (the paper uses adjacency matrices for the
same reason).  This bench compares the engine against the set-based
Bron–Kerbosch reference on the same workload to quantify the benefit of the
representation plus the decomposition.
"""

import time

from repro.analysis.reporting import render_table
from repro.baselines import bron_kerbosch_maximal_kplexes
from repro.core import enumerate_maximal_kplexes
from repro.datasets import load_dataset

from _bench_utils import run_once


def _compare(dataset: str, k: int, q: int):
    graph = load_dataset(dataset)
    started = time.perf_counter()
    ours = enumerate_maximal_kplexes(graph, k, q)
    ours_seconds = time.perf_counter() - started
    started = time.perf_counter()
    reference = bron_kerbosch_maximal_kplexes(graph, k, q)
    reference_seconds = time.perf_counter() - started
    assert {p.as_set() for p in ours} == {p.as_set() for p in reference}
    return {
        "dataset": dataset,
        "k": k,
        "q": q,
        "kplexes": len(ours),
        "Ours_seconds": round(ours_seconds, 4),
        "BronKerbosch_seconds": round(reference_seconds, 4),
        "speedup": round(reference_seconds / ours_seconds, 2) if ours_seconds else 0.0,
    }


def test_bitset_vs_set_representation(benchmark, scale):
    def run():
        return [
            _compare("jazz", 2, 8),
            _compare("wiki-vote", 2, 8),
        ]

    rows = run_once(benchmark, run)
    assert all(row["Ours_seconds"] <= row["BronKerbosch_seconds"] for row in rows)
    print()
    print(render_table(rows, title="Ablation — decomposed bitset engine vs set-based Bron-Kerbosch"))
