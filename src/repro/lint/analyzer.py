"""Run registered checks over a project and fold in suppressions/baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from . import checks as _builtin_checks  # noqa: F401  (registers built-ins)
from .baseline import Baseline
from .finding import Finding
from .model import Project, build_project
from .registry import check_names, get_check

__all__ = ["LintResult", "analyze", "run_checks"]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    files_analyzed: int = 0
    syntax_errors: List[str] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    def counts_by_check(self, include_quiet: bool = False) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            if finding.active or include_quiet:
                counts[finding.check] = counts.get(finding.check, 0) + 1
        return counts


def _select_checks(
    select: Optional[Sequence[str]], disable: Optional[Sequence[str]]
) -> List[str]:
    names = [get_check(name).name for name in select] if select else check_names()
    if disable:
        dropped = {get_check(name).name for name in disable}
        names = [name for name in names if name not in dropped]
    return names


def run_checks(
    project: Project,
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run the (selected) registered checks over an already-built project."""
    result = LintResult(
        checks_run=_select_checks(select, disable),
        files_analyzed=len(project.modules),
    )
    for module in project.modules:
        if module.syntax_error is not None:
            exc = module.syntax_error
            result.syntax_errors.append(f"{module.relpath}:{exc.lineno}: {exc.msg}")
    modules_by_path = {module.relpath: module for module in project.modules}
    for name in result.checks_run:
        check = get_check(name)()
        for finding in check.run(project):
            module = modules_by_path.get(finding.file)
            if module is not None and module.is_suppressed(finding.line, finding.check):
                finding.suppressed = True
            result.findings.append(finding)
    if baseline is not None:
        baseline.apply(result.findings)
    result.findings.sort(key=Finding.sort_key)
    return result


def analyze(
    paths: Sequence[str],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Build the project from ``paths`` and run the checks over it."""
    project = build_project(paths, root=root)
    return run_checks(project, select=select, disable=disable, baseline=baseline)
