"""Tests for the serving layer: catalog, caches, budgets and the service."""

import threading
import time

import pytest

from repro import EnumerationRequest, KPlexEngine, KPlexEnumerator
from repro.core.config import EnumerationConfig
from repro.datasets import load_dataset
from repro.errors import CatalogError, ParameterError, ServiceError, ServiceOverloadError
from repro.graph import Graph, generators, invalidate, prepare
from repro.graph.io import write_edge_list
from repro.api import Solver, SolverRun, register_solver, unregister_solver
from repro.service import (
    ByteBudgetLRU,
    GraphCatalog,
    KPlexService,
    ResultCache,
    SeedContextCache,
    ServiceConfig,
    estimate_graph_bytes,
    estimate_response_bytes,
    result_cache_key,
)


def diamond_graph() -> Graph:
    return Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


# --------------------------------------------------------------------------- #
# Graph epoch
# --------------------------------------------------------------------------- #
def test_graph_epoch_starts_at_zero_and_bumps():
    graph = diamond_graph()
    assert graph.epoch == 0
    assert graph.bump_epoch() == 1
    assert graph.epoch == 1


def test_invalidate_bumps_epoch_and_clears_caches():
    graph = diamond_graph()
    prepare(graph).csr
    before = graph.epoch
    invalidate(graph)
    assert graph.epoch == before + 1
    assert graph._prepared is None


def test_unpickled_graph_starts_fresh_epoch():
    import pickle

    graph = diamond_graph()
    graph.bump_epoch()
    restored = pickle.loads(pickle.dumps(graph))
    assert restored.epoch == 0


# --------------------------------------------------------------------------- #
# Prepared-index core-level memory budget
# --------------------------------------------------------------------------- #
def test_core_budget_evicts_lru_distinct_levels():
    # Levels 4/5/6 each peel at least one vertex of this graph, so all
    # three cache entries are distinct (non-identity) core subgraphs.
    graph = generators.erdos_renyi(60, 0.15, seed=7)
    invalidate(graph)
    prepared = prepare(graph, max_core_levels=2)
    reference = {level: prepared.core(level)[1] for level in (4, 5, 6)}
    info = prepared.core_budget_info()
    assert info["max_core_levels"] == 2
    assert info["distinct_levels"] <= 2
    assert info["evictions"] >= 1
    # Evicted levels are recomputed correctly on demand.
    for level, kept in reference.items():
        assert prepared.core(level)[1] == kept


def test_core_budget_exempts_identity_entries():
    graph = generators.complete_graph(8)  # no level below 7 peels anything
    invalidate(graph)
    prepared = prepare(graph, max_core_levels=1)
    for level in (1, 2, 3):
        core_graph, mapping = prepared.core(level)
        assert core_graph is graph
        assert mapping == list(range(8))
    info = prepared.core_budget_info()
    assert info["distinct_levels"] == 0
    assert info["evictions"] == 0
    assert info["identity_levels"] == [1, 2, 3]


def test_core_budget_keeps_identity_chain_after_eviction():
    graph = generators.erdos_renyi(60, 0.15, seed=11)
    invalidate(graph)
    prepared = prepare(graph, max_core_levels=1)
    first_core, first_map = prepared.core(4)
    prepared.core(6)  # evicts level 4
    again_core, again_map = prepared.core(4)
    assert again_map == first_map
    assert again_core.num_vertices == first_core.num_vertices
    # The recomputed core chains its own prepared index as before.
    chained, mapping = prepared.prepared_core(4)
    assert chained.graph is again_core
    assert mapping == again_map


def test_core_budget_rejects_negative():
    graph = diamond_graph()
    with pytest.raises(ValueError):
        prepare(graph).set_core_budget(-1)


def test_core_budget_does_not_change_results():
    graph = generators.erdos_renyi(40, 0.3, seed=3)
    engine = KPlexEngine()
    expected = [
        engine.solve(EnumerationRequest(graph=graph, k=2, q=q)).vertex_sets()
        for q in (4, 5, 6)
    ]
    invalidate(graph)
    prepare(graph, max_core_levels=1)
    capped = [
        engine.solve(EnumerationRequest(graph=graph, k=2, q=q)).vertex_sets()
        for q in (4, 5, 6)
    ]
    assert capped == expected


# --------------------------------------------------------------------------- #
# ByteBudgetLRU
# --------------------------------------------------------------------------- #
def test_lru_entry_budget_evicts_oldest():
    lru = ByteBudgetLRU(max_entries=2)
    lru.put("a", 1, 10)
    lru.put("b", 2, 10)
    assert lru.get("a") == 1  # refresh recency: b is now LRU
    lru.put("c", 3, 10)
    assert lru.get("b") is None
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert lru.stats()["evictions"] == 1


def test_lru_byte_budget_and_oversized_rejection():
    lru = ByteBudgetLRU(max_bytes=100)
    assert lru.put("big", "x", 101) is False
    assert lru.stats()["rejected_oversized"] == 1
    lru.put("a", 1, 60)
    lru.put("b", 2, 60)  # over budget: evicts a
    assert lru.get("a") is None and lru.get("b") == 2
    assert lru.current_bytes <= 100


def test_lru_replacing_key_updates_bytes():
    lru = ByteBudgetLRU(max_bytes=100)
    lru.put("a", 1, 80)
    lru.put("a", 2, 30)
    assert lru.current_bytes == 30
    assert lru.get("a") == 2


# --------------------------------------------------------------------------- #
# GraphCatalog
# --------------------------------------------------------------------------- #
def test_catalog_register_all_source_kinds(tmp_path):
    catalog = GraphCatalog()
    catalog.register("from-graph", diamond_graph())
    catalog.register("from-edges", [(0, 1), (1, 2), (0, 2)])
    catalog.register("from-dataset", "dataset:jazz")
    path = tmp_path / "graph.txt"
    write_edge_list(generators.ring_of_cliques(2, 5), path)
    catalog.register("from-file", str(path))
    assert catalog.names() == ["from-dataset", "from-edges", "from-file", "from-graph"]
    assert catalog.get("from-edges").num_vertices == 3
    assert catalog.get("from-file").num_vertices == 10
    assert "from-graph" in catalog and len(catalog) == 4
    sources = {row["name"]: row["source"] for row in catalog.info()}
    assert sources["from-dataset"] == "dataset:jazz"
    assert sources["from-file"].startswith("file:")


def test_catalog_rejects_bad_sources_and_names(tmp_path):
    catalog = GraphCatalog()
    with pytest.raises(CatalogError):
        catalog.register("", diamond_graph())
    with pytest.raises(CatalogError):
        catalog.register("nope", "dataset:does-not-exist")
    with pytest.raises(CatalogError):
        catalog.register("nope", str(tmp_path / "missing.txt"))
    with pytest.raises(CatalogError):
        catalog.register("nope", 42)
    with pytest.raises(CatalogError):
        catalog.get("unknown")


def test_catalog_duplicate_needs_replace():
    catalog = GraphCatalog()
    first = diamond_graph()
    catalog.register("g", first)
    with pytest.raises(CatalogError):
        catalog.register("g", diamond_graph())
    second = diamond_graph()
    catalog.register("g", second, replace=True)
    assert catalog.get("g") is second
    # The replaced graph's epoch was bumped so its cached results retire.
    assert first.epoch == 1


def test_catalog_prewarm_materialises_index():
    catalog = GraphCatalog()
    graph = load_dataset("jazz")
    invalidate(graph)
    entry = catalog.register("jazz", graph, prewarm=[(2, 8), (2, 10)])
    assert entry.prewarmed_levels == (6, 8)
    info = graph._prepared.cache_info()
    assert info["csr"] is True
    assert set(info["core_levels"]) >= {6, 8}
    assert entry.memory_bytes() > estimate_graph_bytes(graph)


def test_catalog_prewarm_validates_pairs():
    catalog = GraphCatalog()
    with pytest.raises(CatalogError):
        catalog.register("g", diamond_graph(), prewarm=[3])
    with pytest.raises(ParameterError):
        catalog.register("g2", diamond_graph(), prewarm=[(0, 3)])


def test_catalog_unregister_and_invalidate():
    catalog = GraphCatalog()
    graph = diamond_graph()
    catalog.register("g", graph)
    assert catalog.invalidate("g") == 1
    assert graph._prepared is None
    entry = catalog.unregister("g")
    assert entry.graph is graph
    assert graph.epoch == 2
    assert "g" not in catalog
    with pytest.raises(CatalogError):
        catalog.invalidate("g")


def test_catalog_applies_prepared_core_budget():
    catalog = GraphCatalog(prepared_core_budget=1)
    graph = generators.erdos_renyi(50, 0.3, seed=5)
    invalidate(graph)
    catalog.register("g", graph, prewarm=[(2, 6)])
    prepared = graph._prepared
    assert prepared.core_budget_info()["max_core_levels"] == 1


# --------------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------------- #
def test_result_cache_roundtrip_and_alias_folding():
    engine = KPlexEngine()
    graph = diamond_graph()
    cache = ResultCache()
    request = EnumerationRequest(graph=graph, k=2, q=3)
    assert cache.lookup(request) is None
    response = engine.solve(request)
    assert cache.store(request, response) is True
    assert cache.lookup(request) is response
    # Same key through a solver alias and an equal-by-value config.
    alias = EnumerationRequest(graph=graph, k=2, q=3, solver="paper", variant="ours")
    assert cache.lookup(alias) is response


def test_result_cache_key_separates_parameters():
    graph = diamond_graph()
    base = EnumerationRequest(graph=graph, k=2, q=3)
    assert result_cache_key(base) == result_cache_key(
        EnumerationRequest(graph=graph, k=2, q=3, timeout_seconds=9.0)
    )
    for other in (
        EnumerationRequest(graph=graph, k=1, q=3),
        EnumerationRequest(graph=graph, k=2, q=4),
        EnumerationRequest(graph=graph, k=2, q=3, solver="bron-kerbosch"),
        EnumerationRequest(graph=graph, k=2, q=3, variant="basic"),
        EnumerationRequest(graph=graph, k=2, q=3, max_results=1),
        EnumerationRequest(graph=graph, k=2, q=3, query_vertices=(0,)),
        EnumerationRequest(graph=graph, k=2, q=3, sort_results=False),
        EnumerationRequest(graph=diamond_graph(), k=2, q=3),
    ):
        assert result_cache_key(other) != result_cache_key(base)


def test_result_cache_refuses_partial_responses():
    engine = KPlexEngine()
    graph = load_dataset("jazz")
    cache = ResultCache()
    request = EnumerationRequest(graph=graph, k=2, q=8, timeout_seconds=0.0)
    response = engine.solve(request)
    assert response.termination == "timeout"
    assert cache.store(request, response) is False
    assert len(cache) == 0


def test_result_cache_epoch_miss_after_invalidate():
    engine = KPlexEngine()
    graph = diamond_graph()
    cache = ResultCache()
    request = EnumerationRequest(graph=graph, k=2, q=3)
    cache.store(request, engine.solve(request))
    invalidate(graph)
    fresh = EnumerationRequest(graph=graph, k=2, q=3)
    assert cache.lookup(fresh) is None
    assert cache.lookup(request) is None  # same request object: key re-derives


def test_result_cache_store_uses_admission_time_key():
    # An invalidate() racing with an in-flight run must not publish the
    # pre-invalidation answer under the fresh epoch: the service stores
    # under the key derived before the run started.
    engine = KPlexEngine()
    graph = diamond_graph()
    cache = ResultCache()
    request = EnumerationRequest(graph=graph, k=2, q=3)
    admission_key = result_cache_key(request)
    response = engine.solve(request)
    invalidate(graph)  # epoch bump lands mid-"run"
    assert cache.store(request, response, key=admission_key) is True
    # The stale entry is stranded under the old epoch: a fresh request
    # (which derives the new-epoch key) misses and recomputes.
    assert cache.lookup(EnumerationRequest(graph=graph, k=2, q=3)) is None


def test_seed_context_cache_put_uses_sweep_start_epoch():
    graph = load_dataset("jazz")
    cache = SeedContextCache()
    enumerator = KPlexEnumerator(graph, 2, 8, seed_context_cache=cache)
    invalidate(graph)  # epoch bump lands while the run is "in flight"
    enumerator.run()
    # The sweep's contexts were stored under the pre-bump epoch, so a new
    # run (new epoch) rebuilds instead of replaying stale subgraphs.
    assert cache.get(graph, 2, 8, EnumerationConfig.ours()) is None
    assert cache.stats()["stores"] == 1


def test_result_cache_invalidate_graph_drops_entries():
    engine = KPlexEngine()
    keep, drop = diamond_graph(), diamond_graph()
    cache = ResultCache()
    keep_request = EnumerationRequest(graph=keep, k=2, q=3)
    drop_request = EnumerationRequest(graph=drop, k=2, q=3)
    cache.store(keep_request, engine.solve(keep_request))
    cache.store(drop_request, engine.solve(drop_request))
    assert cache.invalidate_graph(drop) == 1
    assert cache.lookup(keep_request) is not None
    assert cache.lookup(drop_request) is None


# --------------------------------------------------------------------------- #
# Seed-context cache (enumerator-level reuse)
# --------------------------------------------------------------------------- #
def test_seed_context_cache_replay_is_identical():
    graph = load_dataset("wiki-vote")
    cache = SeedContextCache()
    first = KPlexEnumerator(graph, 2, 8, seed_context_cache=cache).run()
    assert cache.stats()["stores"] == 1
    replay = KPlexEnumerator(graph, 2, 8, seed_context_cache=cache).run()
    bare = KPlexEnumerator(graph, 2, 8).run()
    assert replay.vertex_sets() == first.vertex_sets() == bare.vertex_sets()
    assert cache.stats()["hits"] == 1


def test_seed_context_cache_distinguishes_config_and_epoch():
    graph = load_dataset("jazz")
    cache = SeedContextCache()
    KPlexEnumerator(graph, 2, 8, seed_context_cache=cache).run()
    KPlexEnumerator(
        graph, 2, 8, EnumerationConfig.basic(), seed_context_cache=cache
    ).run()
    assert cache.stats()["stores"] == 2
    invalidate(graph)
    KPlexEnumerator(graph, 2, 8, seed_context_cache=cache).run()
    assert cache.stats()["stores"] == 3  # epoch changed: fresh entry


def test_seed_context_cache_not_filled_by_abandoned_runs():
    graph = load_dataset("jazz")
    cache = SeedContextCache()
    enumerator = KPlexEnumerator(graph, 2, 8, seed_context_cache=cache)
    stream = enumerator.iter_results()
    next(stream)
    stream.close()  # abandoned early: a partial sweep must not be published
    assert cache.stats()["stores"] == 0


def test_engine_routes_seed_context_cache_option():
    graph = load_dataset("jazz")
    cache = SeedContextCache()
    engine = KPlexEngine()
    request = EnumerationRequest(
        graph=graph, k=2, q=8, options={"seed_context_cache": cache}
    )
    first = engine.solve(request)
    second = engine.solve(request)
    assert cache.stats()["hits"] == 1
    assert first.vertex_sets() == second.vertex_sets()


# --------------------------------------------------------------------------- #
# KPlexService
# --------------------------------------------------------------------------- #
def test_service_solve_hit_and_metrics():
    with KPlexService() as service:
        service.catalog.register("toy", diamond_graph())
        first = service.solve("toy", k=2, q=3)
        second = service.solve("toy", k=2, q=3)
        assert second is first  # shared completed response
        metrics = service.metrics()
        assert metrics["cache_hits"] == 1
        assert metrics["cache_misses"] == 1
        assert metrics["completed"] == 2
        assert metrics["in_flight"] == 0
        assert metrics["hit_rate"] == 0.5
        assert metrics["latency_samples"] == 2
        assert metrics["catalog"]["graphs"] == 1


def test_service_accepts_request_objects_and_graphs():
    with KPlexService() as service:
        graph = diamond_graph()
        direct = service.solve(graph, k=2, q=3)
        request = EnumerationRequest(graph=graph, k=2, q=3)
        again = service.solve(request)
        assert again is direct  # same key: graph identity + parameters
        with pytest.raises(ParameterError):
            service.solve(request, k=2)
        with pytest.raises(ParameterError):
            service.solve(graph)  # k/q required


def test_service_default_timeout_applied():
    config = ServiceConfig(default_timeout_seconds=0.0)
    with KPlexService(config=config) as service:
        service.catalog.register("jazz", "dataset:jazz")
        response = service.solve("jazz", k=2, q=8)
        assert response.termination == "timeout"
        assert service.metrics()["timeouts"] == 1
        # Partial responses are not cached: the next call recomputes.
        assert service.metrics()["cache_hits"] == 0


def test_service_solve_many_preserves_order():
    with KPlexService(config=ServiceConfig(max_workers=3)) as service:
        service.catalog.register("jazz", "dataset:jazz")
        requests = [service.request("jazz", 2, q) for q in (8, 9, 10, 8, 9, 10)]
        responses = service.solve_many(requests)
        assert [r.q for r in responses] == [8, 9, 10, 8, 9, 10]
        assert responses[0].vertex_sets() == responses[3].vertex_sets()
        assert service.metrics()["completed"] == 6


def test_service_mutation_then_query_invalidation():
    graph = Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    with KPlexService() as service:
        service.catalog.register("g", graph)
        before = service.solve("g", k=1, q=3)
        assert sorted(before.vertex_sets()) == [(0, 1, 2), (3, 4, 5)]
        # Out-of-band mutation: bridge the two triangles, then invalidate.
        adjacency = [set(neigh) for neigh in graph._adjacency]
        adjacency[2].add(3)
        adjacency[3].add(2)
        graph._adjacency = [frozenset(neigh) for neigh in adjacency]
        graph._num_edges += 1
        service.invalidate("g")
        after = service.solve("g", k=1, q=3)
        # Fresh computation on the mutated structure, not the stale answer.
        assert after.vertex_sets() == before.vertex_sets()  # same cliques...
        assert after is not before
        expected = KPlexEngine().solve(
            EnumerationRequest(
                graph=Graph.from_edges(
                    [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
                ),
                k=1,
                q=3,
            )
        )
        assert after.vertex_sets() == expected.vertex_sets()
        assert service.metrics()["cache_misses"] == 2


def test_service_admission_control_rejects_and_recovers():
    release = threading.Event()
    started = threading.Event()

    @register_solver("slow-test-solver", replace=True)
    class SlowSolver(Solver):
        description = "blocks until released (admission-control test)"
        requires_diameter_bound = False

        def start(self, request):
            def generate():
                started.set()
                release.wait(timeout=10.0)
                yield from ()

            return SolverRun(results=generate())

    try:
        config = ServiceConfig(max_workers=1, max_queue_depth=1)
        with KPlexService(config=config) as service:
            graph = diamond_graph()
            service.catalog.register("g", graph)
            # Distinct q values so the requests do not coalesce.
            first = service.submit("g", k=2, q=3, solver="slow-test-solver")
            started.wait(timeout=10.0)
            second = service.submit("g", k=2, q=4, solver="slow-test-solver")
            with pytest.raises(ServiceOverloadError):
                service.submit("g", k=2, q=5, solver="slow-test-solver")
            assert service.metrics()["rejected"] == 1
            release.set()
            assert first.result(timeout=10.0).count == 0
            assert second.result(timeout=10.0).count == 0
            # Capacity freed: admission accepts again.
            assert service.solve("g", k=2, q=3).count >= 1
    finally:
        unregister_solver("slow-test-solver")


def test_service_coalesces_identical_concurrent_misses():
    release = threading.Event()
    running = threading.Event()
    starts = []

    @register_solver("coalesce-test-solver", replace=True)
    class CoalesceSolver(Solver):
        description = "records how many searches actually ran"
        requires_diameter_bound = False

        def start(self, request):
            def generate():
                starts.append(time.monotonic())
                running.set()
                release.wait(timeout=10.0)
                yield from ()

            return SolverRun(results=generate())

    try:
        with KPlexService(config=ServiceConfig(max_workers=4)) as service:
            service.catalog.register("g", diamond_graph())
            leader = service.submit("g", k=2, q=3, solver="coalesce-test-solver")
            running.wait(timeout=10.0)
            followers = [
                service.submit("g", k=2, q=3, solver="coalesce-test-solver")
                for _ in range(3)
            ]
            time.sleep(0.1)  # let the followers reach the rendezvous
            release.set()
            responses = [leader.result(timeout=10.0)] + [
                follower.result(timeout=10.0) for follower in followers
            ]
            assert len(starts) == 1  # one search served all four requests
            assert all(response is responses[0] for response in responses)
            metrics = service.metrics()
            assert metrics["cache_misses"] == 1
            assert metrics["coalesced"] == 3
    finally:
        unregister_solver("coalesce-test-solver")


def test_service_closed_rejects_requests():
    service = KPlexService()
    service.catalog.register("g", diamond_graph())
    service.close()
    with pytest.raises(ServiceError):
        service.submit("g", k=2, q=3)


def test_service_byte_budget_eviction_under_load():
    config = ServiceConfig(result_cache_entries=None, result_cache_bytes=2048)
    with KPlexService(config=config) as service:
        service.catalog.register("jazz", "dataset:jazz")
        for q in (8, 9, 10, 11, 12):
            service.solve("jazz", k=2, q=q)
        stats = service.result_cache.stats()
        assert stats["current_bytes"] <= 2048
        assert stats["evictions"] + stats["rejected_oversized"] > 0


def test_service_caches_are_optional():
    config = ServiceConfig(result_cache_entries=0, seed_cache_entries=0)
    with KPlexService(config=config) as service:
        assert service.result_cache is None
        assert service.seed_context_cache is None
        service.catalog.register("g", diamond_graph())
        first = service.solve("g", k=2, q=3)
        second = service.solve("g", k=2, q=3)
        assert first is not second
        assert first.vertex_sets() == second.vertex_sets()
        assert service.metrics()["cache_misses"] == 2


def test_service_config_validation():
    with pytest.raises(ParameterError):
        ServiceConfig(max_workers=0)
    with pytest.raises(ParameterError):
        ServiceConfig(max_queue_depth=-1)
    with pytest.raises(ParameterError):
        ServiceConfig(default_timeout_seconds=-1.0)
    with pytest.raises(ParameterError):
        ServiceConfig(latency_window=0)


# --------------------------------------------------------------------------- #
# Concurrency: N threads hammering shared catalog graphs
# --------------------------------------------------------------------------- #
def test_concurrent_clients_bit_identical_to_serial():
    cells = [
        ("jazz", 2, 8),
        ("jazz", 2, 9),
        ("wiki-vote", 2, 8),
        ("wiki-vote", 3, 12),
    ]
    engine = KPlexEngine()
    expected = {}
    for dataset, k, q in cells:
        serial_graph = load_dataset(dataset)
        response = engine.solve(EnumerationRequest(graph=serial_graph, k=k, q=q))
        # Compare by labels: catalog graphs are distinct objects with the
        # same construction, so labels are the stable identity.
        expected[(dataset, k, q)] = sorted(tuple(p.labels) for p in response.kplexes)

    with KPlexService(config=ServiceConfig(max_workers=4)) as service:
        service.catalog.register("jazz", "dataset:jazz")
        service.catalog.register("wiki-vote", "dataset:wiki-vote")
        mismatches = []
        errors = []

        def client(offset: int) -> None:
            try:
                for step in range(8):
                    dataset, k, q = cells[(offset + step) % len(cells)]
                    response = service.solve(dataset, k=k, q=q)
                    got = sorted(tuple(p.labels) for p in response.kplexes)
                    if got != expected[(dataset, k, q)]:
                        mismatches.append((dataset, k, q))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(n,)) for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert not mismatches
        metrics = service.metrics()
        total = 6 * 8
        assert metrics["requests_total"] == total
        assert metrics["completed"] == total
        assert (
            metrics["cache_hits"] + metrics["cache_misses"] + metrics["coalesced"]
            == total
        )
        assert metrics["cache_misses"] >= len(cells)
        assert metrics["in_flight"] == 0
        assert metrics["errors"] == 0


def test_sizing_estimates_are_positive_and_monotone():
    small = diamond_graph()
    large = load_dataset("jazz")
    assert 0 < estimate_graph_bytes(small) < estimate_graph_bytes(large)
    engine = KPlexEngine()
    response_small = engine.solve(EnumerationRequest(graph=large, k=2, q=12))
    response_large = engine.solve(EnumerationRequest(graph=large, k=2, q=8))
    assert (
        0
        < estimate_response_bytes(response_small)
        < estimate_response_bytes(response_large)
    )


# --------------------------------------------------------------------------- #
# Cache accounting under overwrite/evict churn (regression coverage)
# --------------------------------------------------------------------------- #
def test_lru_put_overwrite_promotes_to_mru_and_keeps_bytes_exact():
    lru = ByteBudgetLRU(max_entries=3)
    lru.put("a", "A1", 100)
    lru.put("b", "B1", 10)
    lru.put("c", "C1", 10)
    # Overwrite "a": must replace the byte estimate, not accumulate it ...
    lru.put("a", "A2", 40)
    assert lru.current_bytes == 60
    # ... and must promote "a" to most-recently-used, so the next eviction
    # takes "b" (the oldest untouched entry), not "a".
    lru.put("d", "D1", 10)
    assert lru.get("a") == "A2"
    assert lru.get("b") is None
    assert lru.get("c") == "C1" and lru.get("d") == "D1"
    assert lru.current_bytes == 60


def test_lru_bytes_stay_exact_under_overwrite_evict_cycles():
    lru = ByteBudgetLRU(max_bytes=100)
    for cycle in range(50):
        key = f"k{cycle % 7}"
        lru.put(key, cycle, 10 + (cycle % 3) * 5)
        stats = lru.stats()
        # The tracked total must always equal the sum over live entries.
        live_total = sum(
            entry[1] for entry in lru._entries.values()
        )
        assert stats["current_bytes"] == live_total
        assert stats["current_bytes"] <= 100
    lru.clear()
    assert lru.current_bytes == 0


def test_lru_overwrite_that_pushes_over_budget_evicts_lru_first():
    lru = ByteBudgetLRU(max_bytes=100)
    lru.put("a", "A", 40)
    lru.put("b", "B", 40)
    # Growing "a" to 80 bytes busts the budget; "b" (now LRU) must go and
    # the accounting must land exactly on the survivor's estimate.
    assert lru.put("a", "A-big", 80) is True
    assert lru.get("b") is None
    assert lru.get("a") == "A-big"
    assert lru.current_bytes == 80


# --------------------------------------------------------------------------- #
# Nearest-rank percentile boundaries (regression: p50 of 1..100 must be 50)
# --------------------------------------------------------------------------- #
def test_percentile_nearest_rank_boundaries():
    from repro.service.service import _percentile

    window = [float(value) for value in range(1, 101)]
    assert _percentile(window, 0.50) == 50.0
    assert _percentile(window, 0.95) == 95.0
    assert _percentile(window, 0.0) == 1.0
    assert _percentile(window, 1.0) == 100.0
    assert _percentile([7.5], 0.50) == 7.5
    assert _percentile([7.5], 0.95) == 7.5
    # Ranks between grid points round up to the next sample (nearest-rank).
    assert _percentile([1.0, 2.0, 3.0], 0.50) == 2.0
    assert _percentile([1.0, 2.0, 3.0], 0.34) == 2.0
    assert _percentile([1.0, 2.0, 3.0], 0.33) == 1.0
