"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.graph import Graph, generators


@pytest.fixture
def triangle() -> Graph:
    """The triangle graph."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def diamond() -> Graph:
    """K4 minus one edge (a 4-vertex 2-plex that is not a clique)."""
    return Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_triangles_bridge() -> Graph:
    """Two triangles joined by a single bridge edge."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])


@pytest.fixture
def figure3_graph() -> Graph:
    """The running-example graph of the paper (Figure 3)."""
    return generators.paper_figure3_graph()


@pytest.fixture
def karate_like() -> Graph:
    """A deterministic 34-vertex social-style graph used by integration tests."""
    return generators.relaxed_caveman(4, 9, rewire_probability=0.25, seed=5)


def random_graph_cases(count: int, max_vertices: int = 13, seed: int = 0) -> List[Graph]:
    """Deterministic list of small random graphs for oracle comparisons."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(5, max_vertices)
        p = rng.choice([0.2, 0.35, 0.5, 0.7])
        graphs.append(generators.erdos_renyi(n, p, seed=seed * 1000 + index))
    return graphs


def vertex_sets(plexes) -> set:
    """Convert KPlex results to a comparable set of frozensets."""
    return {frozenset(plex.vertices) for plex in plexes}
