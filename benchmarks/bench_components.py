"""Micro-benchmarks of the individual building blocks.

These benches are not tied to a specific table of the paper; they track the
cost of the substrates the enumeration relies on (degeneracy ordering, seed
subgraph construction, the upper-bound computation and the pair matrix), so
regressions in any of them are visible independently of the end-to-end
tables.
"""

from repro.core import EnumerationConfig, build_seed_context, iter_seed_contexts
from repro.core.bounds import support_bound
from repro.core.pruning import build_pair_matrix
from repro.core.seeds import iter_subtasks
from repro.core.stats import SearchStatistics
from repro.datasets import load_dataset
from repro.graph.core_decomposition import core_decomposition, shrink_to_core


def _first_context(graph, k, q):
    config = EnumerationConfig.ours()
    core, _ = shrink_to_core(graph, q - k)
    stats = SearchStatistics()
    for _seed, context in iter_seed_contexts(core, k, q, config, stats):
        if context is not None and context.candidate_mask.bit_count() >= 6:
            return context
    raise AssertionError("no usable seed context found")


def test_bench_degeneracy_ordering(benchmark):
    graph = load_dataset("enwiki-2021")
    result = benchmark(core_decomposition, graph)
    assert len(result.order) == graph.num_vertices


def test_bench_seed_context_construction(benchmark):
    graph = load_dataset("soc-epinions")
    config = EnumerationConfig.ours()
    core, _ = shrink_to_core(graph, 8 - 2)
    decomposition = core_decomposition(core)
    position = decomposition.position()
    seed = decomposition.order[0]

    def build():
        return build_seed_context(core, position, seed, 2, 8, config, SearchStatistics())

    benchmark(build)


def test_bench_subtask_enumeration(benchmark):
    graph = load_dataset("soc-epinions")
    context = _first_context(graph, 3, 8)

    def enumerate_tasks():
        return sum(1 for _ in iter_subtasks(context, 3, 8, EnumerationConfig.ours(), SearchStatistics()))

    count = benchmark(enumerate_tasks)
    assert count >= 1


def test_bench_support_upper_bound(benchmark):
    graph = load_dataset("soc-epinions")
    context = _first_context(graph, 2, 8)
    pivot = (context.candidate_mask & -context.candidate_mask).bit_length() - 1
    p_mask = 1 << context.seed_local
    c_mask = context.candidate_mask

    value = benchmark(support_bound, context.subgraph, p_mask, c_mask, pivot, 2)
    assert value >= 1


def test_bench_pair_matrix(benchmark):
    graph = load_dataset("soc-epinions")
    context = _first_context(graph, 2, 8)

    def build():
        return build_pair_matrix(
            context.subgraph,
            context.seed_local,
            context.candidate_mask,
            context.two_hop_mask,
            2,
            8,
        )

    rows = benchmark(build)
    assert len(rows) == context.subgraph.size
