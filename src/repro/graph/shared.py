"""Zero-copy prepared-graph transfer over ``multiprocessing.shared_memory``.

The parallel executor ships one :class:`~repro.graph.prepared.PreparedGraph`
to every worker process.  Pickling it costs ``O(n + m)`` serialisation *per
worker* on spawn-based platforms and the same again to deserialise; with
this module the driver publishes the prepared graph's flat integer arrays —
CSR offsets/neighbors, degeneracy order, core numbers, position index —
into **one** shared-memory segment, and each worker maps that single copy
and rebuilds its Python-level views from the mapped pages.

Lifecycle contract (the part that is easy to get wrong):

* the **driver** owns the segment.  :meth:`SharedPreparedGraph.unlink`
  removes it exactly once, is idempotent, and the executor calls it in a
  ``finally`` block so a crashed pool cannot leak ``/dev/shm`` entries;
* **workers** only attach (:func:`attach_prepared`); attached segments stay
  mapped for the worker's lifetime and die with the process;
* :func:`live_owned_segments` exposes the driver-side registry so tests can
  prove that no segment outlives its pool, including on crash paths.

Layout of a segment (all integers little-endian native, item sizes from
:mod:`repro.graph.csr_types` — the same helper both CSR backends use, so an
``array``-built segment is numpy-readable bit-for-bit and vice versa)::

    [offsets   (n + 1) x offset_itemsize]
    [neighbors (2m)    x index_itemsize]
    [order     (n)     x index_itemsize]
    [cores     (n)     x index_itemsize]
    [position  (n)     x index_itemsize]
"""

from __future__ import annotations

import threading
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from ..errors import SharedMemoryError
from .core_decomposition import CoreDecomposition
from .csr_types import (
    index_itemsize,
    memoryview_format,
    neighbor_typecode,
    offset_itemsize,
    offset_typecode,
)
from .graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .prepared import PreparedGraph

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down interpreters
    _shared_memory = None  # type: ignore[assignment]


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """Picklable handle a worker needs to attach a published prepared graph.

    A descriptor is a few hundred bytes regardless of graph size — that is
    the whole point: per-worker transfer cost stays flat while the pickled
    payload grows with ``n + m``.
    """

    name: str
    num_vertices: int
    num_neighbor_slots: int
    degeneracy: int
    offset_itemsize: int
    index_itemsize: int
    csr_backend: str
    nbytes: int


#: Driver-side registry of owned, not-yet-unlinked segment names (tests use
#: this to prove pool shutdown and crash paths cannot leak segments).
_OWNED: Dict[str, "SharedPreparedGraph"] = {}
_OWNED_LOCK = threading.Lock()

#: Worker-side keep-alive references: attached segments must stay mapped as
#: long as the zero-copy views built over them are reachable.
_ATTACHED: List[object] = []

_AVAILABLE: Dict[str, bool] = {}


def shared_memory_available() -> bool:
    """Whether this platform can create and reattach shared-memory segments."""
    cached = _AVAILABLE.get("ok")
    if cached is not None:
        return cached
    ok = False
    if _shared_memory is not None:
        try:
            probe = _shared_memory.SharedMemory(create=True, size=16)
            name = probe.name
            probe.buf[0] = 1
            probe.close()
            again = _shared_memory.SharedMemory(name=name)
            again.close()
            again.unlink()
            ok = True
        except (OSError, ValueError, FileNotFoundError):  # pragma: no cover
            ok = False
    _AVAILABLE["ok"] = ok
    return ok


def live_owned_segments() -> List[str]:
    """Names of segments this process owns and has not unlinked yet."""
    with _OWNED_LOCK:
        return sorted(_OWNED)


if _shared_memory is not None:

    class _AttachedForProcessLifetime(_shared_memory.SharedMemory):
        """An attached mapping that lives until the process dies (no-op destructor)."""

        def __del__(self) -> None:  # noqa: D105 - intentional no-op
            pass


class SharedPreparedGraph:
    """Driver-side owner of one published prepared graph (see module doc)."""

    def __init__(self, prepared: "PreparedGraph") -> None:
        if _shared_memory is None:  # pragma: no cover - stripped interpreters
            raise SharedMemoryError("multiprocessing.shared_memory is unavailable")
        csr = prepared.csr
        decomposition = prepared.decomposition
        position = prepared.position
        n = csr.num_vertices
        slots = len(csr.neighbors)

        offsets_bytes = _int_bytes(csr.offsets, offset_typecode())
        index_code = neighbor_typecode()
        sections = [
            offsets_bytes,
            _int_bytes(csr.neighbors, index_code),
            _int_bytes(decomposition.order, index_code),
            _int_bytes(decomposition.core_numbers, index_code),
            _int_bytes(position, index_code),
        ]
        total = sum(len(section) for section in sections)
        try:
            shm = _shared_memory.SharedMemory(create=True, size=max(1, total))
        except OSError as exc:
            raise SharedMemoryError(
                f"cannot create a {total}-byte shared-memory segment: {exc}"
            ) from exc
        cursor = 0
        for section in sections:
            shm.buf[cursor : cursor + len(section)] = section
            cursor += len(section)

        self._shm = shm
        self._lock = threading.Lock()
        self._unlinked = False
        self._descriptor = SharedGraphDescriptor(
            name=shm.name,
            num_vertices=n,
            num_neighbor_slots=slots,
            degeneracy=decomposition.degeneracy,
            offset_itemsize=offset_itemsize(),
            index_itemsize=index_itemsize(),
            csr_backend=csr.backend,
            nbytes=total,
        )
        with _OWNED_LOCK:
            _OWNED[shm.name] = self

    def descriptor(self) -> SharedGraphDescriptor:
        """The picklable attach handle for worker initializers."""
        return self._descriptor

    @property
    def nbytes(self) -> int:
        """Total payload bytes published in the segment."""
        return self._descriptor.nbytes

    def unlink(self) -> bool:
        """Remove the segment; idempotent, returns ``True`` on first call.

        Safe to call from ``finally`` blocks and from multiple threads: the
        segment is unlinked exactly once, and a segment the OS already
        dropped (e.g. a crashed resource tracker got there first) is treated
        as unlinked rather than an error.
        """
        with self._lock:
            if self._unlinked:
                return False
            self._unlinked = True
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - tracker raced us
            pass
        finally:
            with _OWNED_LOCK:
                _OWNED.pop(self._descriptor.name, None)
        return True

    # Context-manager sugar: ``with prepared.share() as shared: ...``
    def __enter__(self) -> "SharedPreparedGraph":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.unlink()

    def __repr__(self) -> str:
        state = "unlinked" if self._unlinked else "live"
        return (
            f"SharedPreparedGraph(name={self._descriptor.name!r}, "
            f"n={self._descriptor.num_vertices}, bytes={self.nbytes}, {state})"
        )


def attach_prepared(descriptor: SharedGraphDescriptor) -> "PreparedGraph":
    """Worker-side attach: map the segment and rebuild a prepared graph.

    The CSR arrays are zero-copy views over the mapped pages (numpy
    ``frombuffer`` or ``memoryview.cast`` depending on the publishing
    backend); the adjacency sets, decomposition lists and position index
    are materialised as ordinary Python objects because the mining hot path
    consumes them as such.  The mapping stays open for the process
    lifetime; only the owner unlinks.
    """
    from .prepared import PreparedGraph  # local: avoid import cycle

    if _shared_memory is None:  # pragma: no cover - stripped interpreters
        raise SharedMemoryError("multiprocessing.shared_memory is unavailable")
    try:
        shm = _shared_memory.SharedMemory(name=descriptor.name)
    except FileNotFoundError as exc:
        raise SharedMemoryError(
            f"shared graph segment {descriptor.name!r} does not exist "
            f"(was it unlinked before the worker attached?)"
        ) from exc
    # The zero-copy views handed out below must outlive any close() attempt:
    # closing a mapping with exported buffers raises BufferError from
    # SharedMemory.__del__ at interpreter shutdown.  An attached mapping is
    # meant to live exactly as long as the process, so neuter the destructor
    # and let the OS reclaim the mapping at exit; unlinking the *name*
    # remains the owner's job.
    shm.__class__ = _AttachedForProcessLifetime
    _ATTACHED.append(shm)

    n = descriptor.num_vertices
    slots = descriptor.num_neighbor_slots
    offsets_end = (n + 1) * descriptor.offset_itemsize
    index_size = descriptor.index_itemsize
    bounds = [
        offsets_end,
        offsets_end + slots * index_size,
        offsets_end + (slots + n) * index_size,
        offsets_end + (slots + 2 * n) * index_size,
        offsets_end + (slots + 3 * n) * index_size,
    ]
    buf = memoryview(shm.buf)
    offset_view = buf[: bounds[0]].cast(memoryview_format(descriptor.offset_itemsize))
    index_format = memoryview_format(index_size)
    neighbor_view = buf[bounds[0] : bounds[1]].cast(index_format)
    order_view = buf[bounds[1] : bounds[2]].cast(index_format)
    cores_view = buf[bounds[2] : bounds[3]].cast(index_format)
    position_view = buf[bounds[3] : bounds[4]].cast(index_format)

    csr = _attach_csr(descriptor, offset_view, neighbor_view)

    # The mining path consumes frozenset adjacency; build it straight from
    # the mapped rows (memoryview slices yield Python ints, which keeps the
    # bitset arithmetic downstream on arbitrary-precision integers).
    adjacency = [
        frozenset(neighbor_view[offset_view[v] : offset_view[v + 1]])
        for v in range(n)
    ]
    graph = Graph.__new__(Graph)
    graph.__setstate__((adjacency, list(range(n))))

    prepared = PreparedGraph(graph)
    prepared._csr = csr
    prepared._decomposition = CoreDecomposition(
        order=list(order_view),
        core_numbers=list(cores_view),
        degeneracy=descriptor.degeneracy,
    )
    prepared._position = list(position_view)
    graph._prepared = prepared
    return prepared


def _attach_csr(descriptor, offset_view, neighbor_view):
    if descriptor.csr_backend == "numpy":
        try:
            from .csr_backend_numpy import NumpyCSRGraph

            return NumpyCSRGraph.attach(offset_view, neighbor_view)
        except ImportError:  # pragma: no cover - publisher had numpy, we don't
            pass
    from .csr_backend_array import CSRGraph

    csr = CSRGraph.__new__(CSRGraph)
    CSRGraph.__init__(csr, offset_view, neighbor_view)
    return csr


def _int_bytes(values, typecode: str) -> bytes:
    """Flat little-endian bytes of an integer sequence at the given width."""
    if isinstance(values, array) and values.typecode == typecode:
        return values.tobytes()
    try:
        import numpy

        if isinstance(values, numpy.ndarray):
            width = array(typecode).itemsize
            return values.astype(f"i{width}", copy=False).tobytes()
    except ImportError:  # pragma: no cover - array path below covers it
        pass
    return array(typecode, values).tobytes()
