"""ListPlex-style baseline.

ListPlex (Wang et al., WWW 2022) partitions the search space with the same
seed-subgraph / sub-task scheme the paper adopts, but branches with the
FaPlexen rule (the Eq (4)–(6) multi-branching) and applies **no**
upper-bound-based pruning and no vertex-pair pruning.  The baseline here is a
re-implementation with exactly that combination of techniques, obtained by
configuring the shared branch-and-bound engine accordingly; it therefore
returns identical result sets while exhibiting the cost profile the paper
attributes to ListPlex.
"""

from __future__ import annotations

from typing import List, Optional, Set, FrozenSet

from ..core.config import BRANCHING_FAPLEXEN, EnumerationConfig
from ..core.enumerator import EnumerationResult, KPlexEnumerator
from ..core.kplex import KPlex
from ..graph import Graph


def listplex_config() -> EnumerationConfig:
    """Configuration matching the techniques used by ListPlex."""
    return EnumerationConfig(
        branching=BRANCHING_FAPLEXEN,
        use_upper_bound=False,
        use_seed_upper_bound=False,
        use_pair_pruning=False,
        use_seed_pruning=True,
    )


class ListPlexLike:
    """Baseline enumerator configured to mirror ListPlex's search strategy."""

    def __init__(self, graph: Graph, k: int, q: int) -> None:
        self.enumerator = KPlexEnumerator(graph, k, q, config=listplex_config())

    @property
    def statistics(self):
        """Search statistics of the underlying engine."""
        return self.enumerator.statistics

    def iter_results(self):
        """Lazily yield maximal k-plexes (delegates to the shared engine)."""
        return self.enumerator.iter_results()

    def run(self) -> EnumerationResult:
        """Enumerate all maximal k-plexes with at least ``q`` vertices."""
        return self.enumerator.run()


def listplex_maximal_kplexes(graph: Graph, k: int, q: int) -> List[KPlex]:
    """Functional wrapper returning the ListPlex-style baseline results."""
    return ListPlexLike(graph, k, q).run().kplexes


def listplex_vertex_sets(graph: Graph, k: int, q: int) -> Set[FrozenSet[int]]:
    """Return the baseline results as a set of frozensets (for tests)."""
    return {plex.as_set() for plex in listplex_maximal_kplexes(graph, k, q)}
