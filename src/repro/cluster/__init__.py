"""Sharded multi-replica serving: ring placement, supervision, routing.

One ``kplex-enum serve-cluster`` process owns N supervised ``serve-http``
replica subprocesses and fronts them with a consistent-hash router:

``repro.cluster.ring``
    A hash ring with virtual nodes; graph names map to replicas, and
    adding or removing one replica moves only ~1/N of the keys.

``repro.cluster.replicas``
    :class:`ReplicaSet` — spawn, readiness-gate, supervise, and restart
    the replica subprocesses (the process-level sibling of
    :class:`repro.resilience.PoolSupervisor`).

``repro.cluster.proxy``
    Buffered and streaming HTTP forwarding primitives.

``repro.cluster.router``
    The :class:`ClusterRouter` HTTP front door: ring-routed solves with
    ring-order failover, fan-out graph registration and batch, merged
    cluster metrics, cross-replica cache warming, and trace propagation.
"""

from .ring import DEFAULT_VNODES, HashRing
from .replicas import (
    DEFAULT_RESTART_POLICY,
    REPLICA_DOWN,
    REPLICA_FAILED,
    REPLICA_STARTING,
    REPLICA_STOPPED,
    REPLICA_UP,
    Replica,
    ReplicaSet,
)
from .proxy import ProxyResponse, forward, open_stream
from .router import (
    ClusterRequestHandler,
    ClusterRouter,
    replica_argv,
    serve_cluster,
    start_cluster,
)

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "DEFAULT_RESTART_POLICY",
    "REPLICA_DOWN",
    "REPLICA_FAILED",
    "REPLICA_STARTING",
    "REPLICA_STOPPED",
    "REPLICA_UP",
    "Replica",
    "ReplicaSet",
    "ProxyResponse",
    "forward",
    "open_stream",
    "ClusterRequestHandler",
    "ClusterRouter",
    "replica_argv",
    "serve_cluster",
    "start_cluster",
]
