"""The :class:`Finding` record and its stable wire/fingerprint forms.

The JSON schema emitted for a finding is **stable** (CI annotations and
tooling consume it): ``file``, ``line``, ``col``, ``check``, ``message``,
``symbol``, ``subject``, ``suppressed``, ``baselined``, ``fingerprint``.
New keys may be added; existing keys never change meaning.

Fingerprints deliberately exclude line numbers: they hash the file, the
check id, the enclosing symbol and the finding's *subject* (the attribute
/ call / function the check fired on), so a baseline entry survives
unrelated edits that shift code up or down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Finding"]


@dataclass
class Finding:
    """One static-analysis diagnostic."""

    file: str
    line: int
    col: int
    check: str
    message: str
    #: Enclosing ``Class.function`` context ("" at module level).
    symbol: str = ""
    #: What the check fired on (attribute name, dotted call, cycle, ...).
    subject: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        raw = "::".join((self.file, self.check, self.symbol, self.subject))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    @property
    def active(self) -> bool:
        """``True`` when the finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "check": self.check,
            "message": self.message,
            "symbol": self.symbol,
            "subject": self.subject,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        flags = ""
        if self.suppressed:
            flags = " [suppressed]"
        elif self.baselined:
            flags = " [baseline]"
        where = f" ({self.symbol})" if self.symbol else ""
        return f"{self.file}:{self.line}:{self.col}: [{self.check}] {self.message}{where}{flags}"

    def sort_key(self):
        return (self.file, self.line, self.col, self.check, self.subject)
