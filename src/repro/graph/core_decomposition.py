"""k-core decomposition, degeneracy ordering and k-shells.

The enumeration algorithm relies on three facts established in Section 3 of
the paper:

* every k-plex with at least ``q`` vertices is contained in the ``(q-k)``-core
  of the graph (Theorem 3.5), so the input can be shrunk before mining;
* the degeneracy ordering produced by the linear-time peeling algorithm of
  Batagelj & Zaversnik bounds the number of *later* neighbours of every vertex
  by the degeneracy ``D``, which keeps seed subgraphs small;
* vertices removed with the same minimum degree form a k-shell; ties inside a
  shell are broken by vertex id so the ordering is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .graph import Graph


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of the peeling algorithm.

    Attributes
    ----------
    order:
        The degeneracy ordering ``η = [v_1, ..., v_n]`` (internal vertex ids).
    core_numbers:
        ``core_numbers[v]`` is the core number (shell index) of vertex ``v``.
    degeneracy:
        The degeneracy ``D`` of the graph, i.e. the maximum core number.
    """

    order: List[int]
    core_numbers: List[int]
    degeneracy: int

    def position(self) -> List[int]:
        """Return ``position[v]`` = index of vertex ``v`` within :attr:`order`."""
        positions = [0] * len(self.order)
        for index, vertex in enumerate(self.order):
            positions[vertex] = index
        return positions

    def shells(self) -> Dict[int, List[int]]:
        """Group vertices by core number (the k-shells), keyed by ``k``."""
        grouped: Dict[int, List[int]] = {}
        for vertex in self.order:
            grouped.setdefault(self.core_numbers[vertex], []).append(vertex)
        return grouped


def core_decomposition(graph: Graph) -> CoreDecomposition:
    """Return the core decomposition of ``graph`` (cached per graph object).

    Vertices are repeatedly removed in order of minimum remaining degree; ties
    are broken by the smallest vertex id, matching the convention used in the
    paper to make the ordering unique.  The result is computed once per graph
    through the prepared-graph index (:mod:`repro.graph.prepared`) and reused
    by every subsequent request on the same graph object.
    """
    from .prepared import prepare  # local import: prepared depends on this module

    cached = prepare(graph).decomposition
    # Fresh lists per call: callers historically received their own copy and
    # may mutate it (e.g. to experiment with orderings); the cached object
    # itself must stay pristine for every later request on this graph.
    return CoreDecomposition(
        order=list(cached.order),
        core_numbers=list(cached.core_numbers),
        degeneracy=cached.degeneracy,
    )


def set_backed_core_decomposition(graph: Graph) -> CoreDecomposition:
    """Reference peeling over the adjacency sets (uncached).

    This is the original bucket-queue implementation; the CSR-backed kernel
    in :mod:`repro.graph.prepared` must produce bit-identical results, which
    the equivalence tests assert against this function.
    """
    n = graph.num_vertices
    if n == 0:
        return CoreDecomposition(order=[], core_numbers=[], degeneracy=0)

    degrees = graph.degrees()
    max_degree = max(degrees) if degrees else 0
    # Bucket queue: buckets[d] holds the vertices whose current degree is d.
    buckets: List[Set[int]] = [set() for _ in range(max_degree + 1)]
    for vertex, degree in enumerate(degrees):
        buckets[degree].add(vertex)

    removed = [False] * n
    current = list(degrees)
    order: List[int] = []
    core_numbers = [0] * n
    degeneracy = 0
    level = 0

    for _ in range(n):
        while level <= max_degree and not buckets[level]:
            level += 1
        if level > max_degree:
            break
        vertex = min(buckets[level])
        buckets[level].discard(vertex)
        removed[vertex] = True
        degeneracy = max(degeneracy, level)
        core_numbers[vertex] = degeneracy
        order.append(vertex)
        for neighbour in graph.neighbors(vertex):
            if removed[neighbour]:
                continue
            degree = current[neighbour]
            if degree > level:
                buckets[degree].discard(neighbour)
                buckets[degree - 1].add(neighbour)
                current[neighbour] = degree - 1
                if degree - 1 < level:
                    level = degree - 1
        # Removing a vertex can only lower degrees, so the scan level may need
        # to move back by at most one bucket; handled above via the min update.
        if level > 0 and buckets[level - 1]:
            level -= 1

    return CoreDecomposition(order=order, core_numbers=core_numbers, degeneracy=degeneracy)


def degeneracy_ordering(graph: Graph) -> List[int]:
    """Return only the degeneracy ordering of ``graph``."""
    return core_decomposition(graph).order


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy ``D`` of ``graph``."""
    return core_decomposition(graph).degeneracy


def k_core_vertices(graph: Graph, k: int) -> Set[int]:
    """Return the vertex set of the ``k``-core of ``graph``.

    The ``k``-core is the (unique, possibly empty) maximal induced subgraph in
    which every vertex has degree at least ``k``.  It is computed by the same
    peeling process: repeatedly delete any vertex whose remaining degree is
    below ``k``.
    """
    if k <= 0:
        return set(graph.vertices())
    degrees = graph.degrees()
    alive = [True] * graph.num_vertices
    stack = [v for v in graph.vertices() if degrees[v] < k]
    for vertex in stack:
        alive[vertex] = False
    while stack:
        vertex = stack.pop()
        for neighbour in graph.neighbors(vertex):
            if alive[neighbour]:
                degrees[neighbour] -= 1
                if degrees[neighbour] < k:
                    alive[neighbour] = False
                    stack.append(neighbour)
    return {v for v in graph.vertices() if alive[v]}


def k_core_subgraph(graph: Graph, k: int):
    """Return the ``k``-core as a new :class:`Graph` plus the vertex map."""
    return graph.induced_subgraph(k_core_vertices(graph, k))


def shrink_to_core(graph: Graph, minimum_degree: int):
    """Shrink ``graph`` to its ``minimum_degree``-core (Theorem 3.5 helper).

    Returns ``(core_graph, vertex_map)`` where ``vertex_map[new_id]`` is the
    vertex id in the original graph.  Cached per graph object and core level
    via the prepared-graph index; when nothing is peeled the input graph
    itself is returned with an identity map, so the core's own cached
    preprocessing is shared too.
    """
    from .prepared import prepare  # local import: prepared depends on this module

    core_graph, vertex_map = prepare(graph).core(minimum_degree)
    # The cached vertex map is shared across requests; hand out a copy.
    return core_graph, list(vertex_map)


def validate_degeneracy_ordering(graph: Graph, order: Sequence[int]) -> bool:
    """Check that ``order`` is a valid degeneracy ordering of ``graph``.

    An ordering is valid if every vertex has at most ``D`` neighbours among
    the vertices that come after it, where ``D`` is the graph degeneracy.
    Used by tests and by the verification utilities.
    """
    if sorted(order) != list(range(graph.num_vertices)):
        return False
    cap = degeneracy(graph)
    position = {vertex: index for index, vertex in enumerate(order)}
    for vertex in order:
        later = sum(1 for w in graph.neighbors(vertex) if position[w] > position[vertex])
        if later > cap:
            return False
    return True
