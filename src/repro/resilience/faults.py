"""Fault injection: deterministic failures on demand, for chaos tests.

A :class:`FaultInjector` holds a set of armed *fault points*, configured
from a compact spec string (env var ``REPRO_FAULT``, the ``serve-http
--fault`` flag, or programmatically from tests)::

    REPRO_FAULT="worker_kill:1"             # kill 1 worker process mid-run
    REPRO_FAULT="worker_kill:1@40"          # ... after 40 task submissions
    REPRO_FAULT="seed_crash:7"              # seed 7 always kills its worker
    REPRO_FAULT="seed_exception:7"          # seed 7 always raises
    REPRO_FAULT="seed_delay:0.05"           # every seed sleeps 50ms first
    REPRO_FAULT="pool_build:1"              # next pool construction fails
    REPRO_FAULT="snapshot_torn:1"           # next snapshot save writes torn JSON
    REPRO_FAULT="http_drop:1@5"             # cut a result stream after 5 records
    REPRO_FAULT="shm_fail:1"                # next shared-memory publish fails
    REPRO_FAULT="worker_kill:1,seed_delay:0.01"   # combine points

Grammar: ``name[:arg][@after]``, comma-separated.  For *budgeted* points
(``worker_kill``, ``pool_build``, ``snapshot_torn``, ``http_drop``,
``shm_fail``) the arg is how many times the fault fires — the budget lives
on the **driver side**, so a respawned worker does not inherit a live
fault and kill itself forever.  For *parametrized* points (``seed_crash``,
``seed_exception``, ``seed_delay``) the arg is the parameter (seed vertex
or seconds) and the fault is deterministic.  ``@after`` skips that many
eligible occurrences before firing.

Production code never imports fault *behaviour* from here — it only asks
"does fault point X fire now?" at a handful of marked sites; with no spec
configured every call is a cheap no-op.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional

#: Points whose arg is a firing budget (default 1).
BUDGETED_POINTS = frozenset(
    {"worker_kill", "pool_build", "snapshot_torn", "http_drop", "shm_fail"}
)
#: Points whose arg is a parameter and which fire deterministically.
PARAMETRIZED_POINTS = frozenset({"seed_crash", "seed_exception", "seed_delay"})

KNOWN_POINTS = BUDGETED_POINTS | PARAMETRIZED_POINTS

ENV_VAR = "REPRO_FAULT"


class _FaultPoint:
    __slots__ = ("name", "param", "budget", "after", "fired")

    def __init__(self, name: str, param: Optional[float], budget: Optional[int], after: int):
        self.name = name
        self.param = param
        self.budget = budget  # None = unlimited (parametrized points)
        self.after = after
        self.fired = 0


def _parse_spec(spec: str) -> Dict[str, _FaultPoint]:
    points: Dict[str, _FaultPoint] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        after = 0
        if "@" in chunk:
            chunk, after_text = chunk.rsplit("@", 1)
            after = int(after_text)
        name, _, arg_text = chunk.partition(":")
        name = name.strip()
        if name not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {name!r}; known: {sorted(KNOWN_POINTS)}"
            )
        if name in BUDGETED_POINTS:
            budget = int(arg_text) if arg_text else 1
            points[name] = _FaultPoint(name, None, budget, after)
        else:
            if not arg_text:
                raise ValueError(f"fault point {name!r} needs an argument, e.g. {name}:3")
            points[name] = _FaultPoint(name, float(arg_text), None, after)
    return points


class FaultInjector:
    """Armed fault points with driver-side budgets.  Thread-safe."""

    def __init__(self, spec: str = "") -> None:
        self._lock = threading.Lock()
        self._points = _parse_spec(spec)

    def configure(self, spec: str) -> None:
        """Replace the armed fault set (and reset all budgets/counters)."""
        points = _parse_spec(spec)
        with self._lock:
            self._points = points

    def clear(self) -> None:
        with self._lock:
            self._points = {}

    @property
    def enabled(self) -> bool:
        with self._lock:
            return bool(self._points)

    def fire(self, point: str) -> bool:
        """Check-and-consume: does ``point`` fire at this occurrence?

        Budgeted points decrement their budget on firing; parametrized
        points fire every time (the caller applies the parameter).  The
        ``@after`` skip count is consumed before the first firing.
        """
        with self._lock:
            entry = self._points.get(point)
            if entry is None:
                return False
            if entry.after > 0:
                entry.after -= 1
                return False
            if entry.budget is not None:
                if entry.budget <= 0:
                    return False
                entry.budget -= 1
            entry.fired += 1
            return True

    def param(self, point: str) -> Optional[float]:
        """The parameter of an armed parametrized point, without consuming."""
        with self._lock:
            entry = self._points.get(point)
            return None if entry is None else entry.param

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            return [
                {
                    "point": entry.name,
                    "param": entry.param,
                    "budget_remaining": entry.budget,
                    "fired": entry.fired,
                }
                for entry in self._points.values()
            ]


_GLOBAL: Optional[FaultInjector] = None
_GLOBAL_LOCK = threading.Lock()


def fault_injector() -> FaultInjector:
    """The process-wide injector, armed from ``$REPRO_FAULT`` on first use."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = FaultInjector(os.environ.get(ENV_VAR, ""))
    return _GLOBAL
