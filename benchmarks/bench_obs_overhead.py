"""Observability — tracing overhead on the cached-replay serving path.

The tracing layer must be affordable exactly where it is always on: the
hot serving path.  The worst case for relative overhead is the *cheapest*
request — a pure cache hit, where the service does no search work and the
per-request span bookkeeping is its largest fraction of the server-side
work.

This bench boots the HTTP front-end twice against identical warm
services: once with tracing on (the default — every request gets a
``Trace``, a span tree and a recorder entry) and once with tracing
disabled (``trace_capacity=0`` — the genuine off switch, where spans
degrade to the shared no-op).  The same cached solve is then replayed
through a keep-alive :class:`~repro.server.client.ServiceClient` against
each, in adjacent plain/traced round pairs.  Each pair yields one
traced/plain ratio, and the gate takes the best pair — back-to-back
rounds see the same CPU-frequency and scheduler conditions, so the ratio
cancels drift that independent best-of minimums cannot.  The gate:
tracing may cost at most 5% on top of the untraced replay (plus a small
absolute epsilon so sub-millisecond jitter cannot fail the run).
"""

import time

from repro.analysis.reporting import render_table
from repro.graph import generators
from repro.server import start_server
from repro.server.client import ServiceClient
from repro.service import KPlexService, ServiceConfig

from _bench_utils import run_once

REQUESTS = 400
ROUNDS = 7
#: Absolute slack (seconds) so pure timer jitter cannot fail the 5% gate
#: when a whole replay round takes only tens of milliseconds.
EPSILON_SECONDS = 0.01


def _make_service() -> KPlexService:
    service = KPlexService(config=ServiceConfig(max_workers=2))
    service.catalog.register(
        "bench", generators.ring_of_cliques(num_cliques=4, clique_size=5)
    )
    service.solve("bench", k=2, q=4)  # warm: every replay below is a hit
    return service


def _replay(client: ServiceClient, requests: int) -> float:
    started = time.perf_counter()
    for _ in range(requests):
        client.solve("bench", k=2, q=4)
    return time.perf_counter() - started


def test_bench_tracing_overhead_on_cached_replay(benchmark):
    traced_service = _make_service()
    plain_service = _make_service()
    traced_server = start_server(traced_service)
    plain_server = start_server(plain_service, trace_capacity=0)
    traced_client = ServiceClient(traced_server.url, keep_alive=True)
    plain_client = ServiceClient(plain_server.url, keep_alive=True)

    def run():
        # One untimed warm round per connection settles keep-alive setup,
        # lazily created worker threads and the interpreter's own caches.
        _replay(plain_client, REQUESTS // 4)
        _replay(traced_client, REQUESTS // 4)
        pairs = []
        for _ in range(ROUNDS):
            plain = _replay(plain_client, REQUESTS)
            traced = _replay(traced_client, REQUESTS)
            pairs.append((plain, traced))
        best_plain, best_traced = min(
            pairs, key=lambda pair: pair[1] / pair[0]
        )
        overhead = (best_traced - best_plain) / best_plain
        return {
            "requests": REQUESTS,
            "plain_seconds": round(best_plain, 4),
            "traced_seconds": round(best_traced, 4),
            "overhead_pct": round(overhead * 100.0, 2),
        }

    try:
        row = run_once(benchmark, run)
    finally:
        for client in (traced_client, plain_client):
            client.close()
        for server in (traced_server, plain_server):
            server.drain()
    print()
    print(render_table([row], title="Tracing overhead — cached HTTP replay"))
    assert row["traced_seconds"] <= row["plain_seconds"] * 1.05 + EPSILON_SECONDS, row
    # Sanity: both replays really took the cached path, and only the traced
    # server recorded anything.
    assert traced_service.metrics()["cache_hits"] >= REQUESTS
    assert plain_service.metrics()["cache_hits"] >= REQUESTS
    assert len(traced_server.recorder) > 0
    assert plain_server.recorder is None
