"""Unit tests for the synthetic graph generators."""

import pytest

from repro.core import is_kplex
from repro.errors import ParameterError
from repro.graph import generators
from repro.graph.core_decomposition import degeneracy


def test_erdos_renyi_deterministic_and_bounds():
    first = generators.erdos_renyi(30, 0.3, seed=1)
    second = generators.erdos_renyi(30, 0.3, seed=1)
    assert first == second
    assert first.num_vertices == 30
    assert 0 < first.num_edges < 30 * 29 // 2
    with pytest.raises(ParameterError):
        generators.erdos_renyi(10, 1.5)


def test_erdos_renyi_extremes():
    assert generators.erdos_renyi(8, 0.0, seed=1).num_edges == 0
    assert generators.erdos_renyi(8, 1.0, seed=1).num_edges == 28


def test_gnm_random_exact_edge_count():
    graph = generators.gnm_random(20, 37, seed=2)
    assert graph.num_edges == 37
    with pytest.raises(ParameterError):
        generators.gnm_random(4, 100)


def test_barabasi_albert_structure():
    graph = generators.barabasi_albert(100, 3, seed=3)
    assert graph.num_vertices == 100
    # Every vertex beyond the seed core attaches to exactly 3 targets.
    assert graph.num_edges >= 3 * (100 - 3) - 5
    assert graph.max_degree() > 6  # hubs emerge
    with pytest.raises(ParameterError):
        generators.barabasi_albert(5, 5)


def test_powerlaw_configuration_degree_bounds():
    graph = generators.powerlaw_configuration(150, exponent=2.3, min_degree=2, max_degree=20, seed=4)
    assert graph.num_vertices == 150
    assert graph.max_degree() <= 20
    with pytest.raises(ParameterError):
        generators.powerlaw_configuration(10, min_degree=0)


def test_relaxed_caveman_deterministic():
    first = generators.relaxed_caveman(4, 6, 0.2, seed=5)
    second = generators.relaxed_caveman(4, 6, 0.2, seed=5)
    assert first == second
    assert first.num_vertices == 24


def test_ring_of_cliques_counts():
    graph = generators.ring_of_cliques(3, 4)
    assert graph.num_vertices == 12
    assert graph.num_edges == 3 * 6 + 3
    assert degeneracy(graph) == 3
    with pytest.raises(ParameterError):
        generators.ring_of_cliques(0, 4)


def test_planted_kplex_planted_sets_are_kplexes():
    k = 2
    graph = generators.planted_kplex(50, 0.05, 8, k, num_plexes=3, seed=6)
    for index in range(3):
        members = set(range(index * 8, (index + 1) * 8))
        assert is_kplex(graph, members, k)
    with pytest.raises(ParameterError):
        generators.planted_kplex(10, 0.1, 8, 2, num_plexes=2)
    with pytest.raises(ParameterError):
        generators.planted_kplex(10, 0.1, 1, 2)


def test_planted_partition_block_structure():
    graph = generators.planted_partition(3, 6, p_in=1.0, p_out=0.0, seed=7)
    assert graph.num_edges == 3 * 15
    assert is_kplex(graph, set(range(6)), 1)


def test_deterministic_small_graphs():
    assert generators.path_graph(5).num_edges == 4
    assert generators.cycle_graph(5).num_edges == 5
    assert generators.star_graph(6).num_edges == 6
    assert generators.complete_graph(6).num_edges == 15
    with pytest.raises(ParameterError):
        generators.cycle_graph(2)


def test_complete_multipartite():
    graph = generators.complete_multipartite([2, 3])
    assert graph.num_vertices == 5
    assert graph.num_edges == 6
    assert not graph.has_edge(0, 1)


def test_disjoint_union_sizes():
    union = generators.disjoint_union([generators.path_graph(3), generators.cycle_graph(4)])
    assert union.num_vertices == 7
    assert union.num_edges == 2 + 4


def test_paper_figure3_graph_matches_running_examples():
    graph = generators.paper_figure3_graph()
    index = {f"v{i}": graph.index_of(f"v{i}") for i in range(1, 8)}
    # N(v1) = {v2, v5, v7} (Example 5.4: upper bound 3 + k).
    assert graph.neighbors(index["v1"]) == frozenset(
        {index["v2"], index["v5"], index["v7"]}
    )
    # d(v3) = 2 (Example 5.4: upper bound 2 + k).
    assert graph.degree(index["v3"]) == 2
    # v7 is adjacent to v5 but not to v2 or v3 (Example 5.6: K = {v5}).
    assert graph.has_edge(index["v7"], index["v5"])
    assert not graph.has_edge(index["v7"], index["v2"])
    assert not graph.has_edge(index["v7"], index["v3"])
    # v5 is adjacent to v1 but not v3 (Example 5.6: \bar N_P(v5) = {v3}).
    assert graph.has_edge(index["v5"], index["v1"])
    assert not graph.has_edge(index["v5"], index["v3"])


def test_watts_strogatz_structure():
    graph = generators.watts_strogatz(30, 4, 0.1, seed=8)
    assert graph.num_vertices == 30
    # Rewiring can only drop duplicate edges, never add beyond the lattice count.
    assert 0 < graph.num_edges <= 60
    with pytest.raises(ParameterError):
        generators.watts_strogatz(10, 3, 0.1)
    with pytest.raises(ParameterError):
        generators.watts_strogatz(4, 6, 0.1)
    with pytest.raises(ParameterError):
        generators.watts_strogatz(10, 4, 1.5)


def test_watts_strogatz_no_rewiring_is_ring_lattice():
    graph = generators.watts_strogatz(12, 4, 0.0, seed=1)
    assert graph.num_edges == 24
    assert all(degree == 4 for degree in graph.degrees())


def test_grid_graph_counts():
    graph = generators.grid_graph(3, 4)
    assert graph.num_vertices == 12
    assert graph.num_edges == 3 * 3 + 2 * 4
    assert degeneracy(graph) == 2
    with pytest.raises(ParameterError):
        generators.grid_graph(0, 3)
