"""Replica process management: spawn, readiness, supervised restart.

A **replica** is one ``kplex-enum serve-http`` subprocess bound to an
ephemeral loopback port.  :class:`ReplicaSet` owns N of them:

* :meth:`ReplicaSet.start` boots every replica and blocks until each one
  printed its boot line (``serving on http://...`` — the CLI's documented
  machine-readable boot signal) and answers ``/healthz`` with ``ok``;
* a supervisor thread polls the processes (the same poll-restart shape as
  :class:`repro.resilience.PoolSupervisor`, lifted from threads to
  processes): a dead replica is respawned after
  :meth:`~repro.resilience.RetryPolicy.backoff` and an ``on_restart``
  callback lets the router replay graph registrations into the fresh
  process before it is marked up again;
* :meth:`ReplicaSet.stop` SIGTERMs every replica — each drains and exits 0
  under the serve-http shutdown contract — escalating to SIGKILL only for
  stragglers.

Replica stdout carries exactly the one boot line (everything else the CLI
prints goes to stderr), so the pipe never fills and needs no drain thread.
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ClusterError
from ..obs import log_event
from ..resilience import RetryPolicy
from ..server import ServiceClient

__all__ = [
    "REPLICA_STARTING",
    "REPLICA_UP",
    "REPLICA_DOWN",
    "REPLICA_FAILED",
    "REPLICA_STOPPED",
    "Replica",
    "ReplicaSet",
]

REPLICA_STARTING = "starting"
REPLICA_UP = "up"
REPLICA_DOWN = "down"      # died; supervisor is restarting it
REPLICA_FAILED = "failed"  # restart budget exhausted; left down
REPLICA_STOPPED = "stopped"

#: Default backoff between restart attempts of one dead replica.
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=6, backoff_seconds=0.05, max_backoff_seconds=2.0
)


class Replica:
    """Mutable record of one replica process (id is stable, the rest churns)."""

    def __init__(self, replica_id: str) -> None:
        self.id = replica_id
        self.url: Optional[str] = None
        self.process: Optional[subprocess.Popen] = None
        self.state = REPLICA_STARTING
        self.restarts = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "url": self.url,
            "state": self.state,
            "restarts": self.restarts,
            "pid": self.pid,
        }


def _read_boot_line(process: subprocess.Popen, timeout: float) -> Optional[str]:
    """First stdout line within ``timeout``, or ``None`` (reader is daemonic)."""
    box: Dict[str, str] = {}

    def _reader() -> None:
        assert process.stdout is not None
        box["line"] = process.stdout.readline()

    thread = threading.Thread(target=_reader, daemon=True)
    thread.start()
    thread.join(timeout)
    return box.get("line")


class ReplicaSet:
    """N supervised serve-http subprocesses behind stable replica ids."""

    def __init__(
        self,
        replica_ids: Sequence[str],
        argv_factory: Callable[[str], List[str]],
        boot_timeout: float = 30.0,
        poll_interval: float = 0.15,
        restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY,
        max_restarts: Optional[int] = None,
        on_restart: Optional[Callable[[Replica], None]] = None,
        quiet: bool = False,
    ) -> None:
        if not replica_ids:
            raise ClusterError("a cluster needs at least one replica")
        if len(set(replica_ids)) != len(replica_ids):
            raise ClusterError(f"duplicate replica ids in {list(replica_ids)}")
        self.ids = list(replica_ids)
        self.argv_factory = argv_factory
        self.boot_timeout = boot_timeout
        self.poll_interval = poll_interval
        self.restart_policy = restart_policy
        #: Total successful restarts allowed per replica (``None`` = unbounded);
        #: distinct from ``restart_policy.max_attempts``, which bounds the
        #: consecutive *failed* respawn attempts of one death.
        self.max_restarts = max_restarts
        #: Called with the freshly restarted replica (after readiness, before
        #: it is marked up) — the router replays graph registrations here.
        self.on_restart = on_restart
        self.replicas: Dict[str, Replica] = {rid: Replica(rid) for rid in self.ids}
        self._stderr = subprocess.DEVNULL if quiet else None
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def get(self, replica_id: str) -> Replica:
        return self.replicas[replica_id]

    def live(self) -> List[Replica]:
        """Replicas currently able to serve (state ``up``)."""
        return [r for r in self.replicas.values() if r.state == REPLICA_UP]

    @property
    def restarts_total(self) -> int:
        return sum(r.restarts for r in self.replicas.values())

    def describe(self) -> List[Dict[str, object]]:
        return [self.replicas[rid].describe() for rid in self.ids]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Boot every replica to readiness, then start the supervisor."""
        try:
            for replica in self.replicas.values():
                self._spawn(replica)
                replica.state = REPLICA_UP
        except BaseException:
            self.stop(timeout=5.0)
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="kplex-replica-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, replica: Replica) -> None:
        """Start one subprocess and block until it serves; raises on failure."""
        argv = self.argv_factory(replica.id)
        env = dict(os.environ)
        # Make `python -m repro.cli` importable regardless of the caller's
        # cwd: prepend the directory that contains the repro package.
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=self._stderr,
            text=True,
            env=env,
        )
        line = _read_boot_line(process, self.boot_timeout)
        if not line or not line.strip().startswith("serving on "):
            self._reap(process)
            raise ClusterError(
                f"replica {replica.id} did not print its boot line within "
                f"{self.boot_timeout}s (got {line!r})"
            )
        url = line.strip().rsplit(" ", 1)[-1]
        client = ServiceClient(url, timeout=self.boot_timeout)
        try:
            client.wait_ready(timeout=self.boot_timeout)
        except Exception as exc:
            self._reap(process)
            raise ClusterError(f"replica {replica.id} never became ready: {exc}")
        replica.process = process
        replica.url = url

    @staticmethod
    def _reap(process: subprocess.Popen) -> None:
        """Kill and fully collect a half-booted or doomed process."""
        try:
            process.kill()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            pass
        if process.stdout is not None:
            process.stdout.close()

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _supervise(self) -> None:
        while not self._stop.wait(self.poll_interval):
            for replica in self.replicas.values():
                if replica.state != REPLICA_UP or replica.process is None:
                    continue
                code = replica.process.poll()
                if code is None or self._stop.is_set():
                    continue
                replica.state = REPLICA_DOWN
                log_event(
                    "replica_died",
                    level=logging.WARNING,
                    replica=replica.id,
                    exit_code=code,
                    restarts=replica.restarts,
                )
                self._restart(replica)

    def _restart(self, replica: Replica) -> None:
        if self.max_restarts is not None and replica.restarts >= self.max_restarts:
            replica.state = REPLICA_FAILED
            log_event(
                "replica_failed",
                level=logging.ERROR,
                replica=replica.id,
                restarts=replica.restarts,
            )
            return
        if replica.process is not None and replica.process.stdout is not None:
            replica.process.stdout.close()
        attempt = 0
        while not self._stop.is_set():
            attempt += 1
            if not self.restart_policy.should_retry(attempt):
                replica.state = REPLICA_FAILED
                log_event(
                    "replica_failed",
                    level=logging.ERROR,
                    replica=replica.id,
                    restarts=replica.restarts,
                )
                return
            if self._stop.wait(self.restart_policy.backoff(attempt)):
                return
            try:
                self._spawn(replica)
            except Exception as exc:
                log_event(
                    "replica_respawn_failed",
                    level=logging.WARNING,
                    replica=replica.id,
                    attempt=attempt,
                    error=str(exc),
                )
                continue
            with self._lock:
                replica.restarts += 1
            if self.on_restart is not None:
                try:
                    self.on_restart(replica)
                except Exception as exc:  # pragma: no cover - defensive
                    log_event(
                        "replica_restart_hook_error",
                        level=logging.WARNING,
                        replica=replica.id,
                        error=type(exc).__name__,
                    )
            replica.state = REPLICA_UP
            log_event(
                "replica_restarted",
                level=logging.WARNING,
                replica=replica.id,
                url=replica.url,
                restarts=replica.restarts,
            )
            return

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def stop(self, timeout: float = 30.0) -> Dict[str, Optional[int]]:
        """SIGTERM every replica and wait; returns exit codes by replica id.

        SIGTERM triggers serve-http's drain (finish in-flight work, final
        snapshot, exit 0); a replica that outlives ``timeout`` is SIGKILLed
        (reported as its actual negative exit code).
        """
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=max(5.0, self.poll_interval * 4))
        for replica in self.replicas.values():
            if replica.process is not None and replica.process.poll() is None:
                try:
                    replica.process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
        deadline = time.monotonic() + timeout
        exit_codes: Dict[str, Optional[int]] = {}
        for replica in self.replicas.values():
            process = replica.process
            if process is None:
                exit_codes[replica.id] = None
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                exit_codes[replica.id] = process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - drain hang
                process.kill()
                exit_codes[replica.id] = process.wait(timeout=5.0)
            if process.stdout is not None:
                process.stdout.close()
            replica.state = REPLICA_STOPPED
        return exit_codes
