"""Table 5 — ablation of the upper-bounding technique.

``Ours\\ub`` removes the Eq (3) pruning entirely, ``Ours\\ub+fp`` replaces it
with the FP-style sorting bound, ``Ours`` uses the paper's O(D) bound.  The
paper's finding is that Ours explores no more branches than either variant
and is the fastest overall.
"""

from repro.analysis.reporting import render_table
from repro.experiments import table5_upper_bound_ablation

from _bench_utils import run_once


def test_table5_upper_bound_ablation(benchmark, scale):
    rows = run_once(benchmark, table5_upper_bound_ablation, scale)
    assert rows
    for row in rows:
        # The paper bound prunes at least as much of the search tree as
        # running without any bound.
        assert row["Ours_branches"] <= row["Ours\\ub_branches"]
    total_ours = sum(row["Ours_seconds"] for row in rows)
    total_no_ub = sum(row["Ours\\ub_seconds"] for row in rows)
    assert total_ours <= total_no_ub * 1.10
    print()
    print(render_table(rows, title="Table 5 — upper-bound ablation"))
