"""Tests for the static-analysis framework (``repro.lint``).

Each built-in checker gets fixture snippets proving a true positive, a
true negative, an inline suppression and a baseline match; on top sit
registry/reporter/CLI tests and a self-check that the analyzer runs
clean over the real ``src``/``tests`` trees modulo the committed
baseline.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    BASELINE_NAME,
    Baseline,
    Check,
    Finding,
    build_project_from_sources,
    check_names,
    find_repo_root,
    get_check,
    load_baseline,
    register_check,
    render_json,
    render_text,
    run_checks,
    summary_line,
    unregister_check,
    write_baseline,
)
from repro.lint.analyzer import analyze


def run_on(sources, select=None):
    """Lint in-memory sources and return the findings list."""
    if isinstance(sources, str):
        sources = {"src/repro/fixture.py": sources}
    dedented = {path: textwrap.dedent(text) for path, text in sources.items()}
    project = build_project_from_sources(dedented)
    return run_checks(project, select=select).findings


def checks_of(findings):
    return sorted({f.check for f in findings if f.active})


# --------------------------------------------------------------------------- #
# unlocked-shared-write
# --------------------------------------------------------------------------- #
UNLOCKED_WRITE_POSITIVE = """
    import threading

    class Manager:
        def __init__(self):
            self._lock = threading.Lock()
            self._closed = False

        def close(self):
            self._closed = True

        def submit(self):
            with self._lock:
                if self._closed:
                    raise RuntimeError("closed")
"""


class TestUnlockedSharedWrite:
    def test_positive_unguarded_write(self):
        findings = [
            f for f in run_on(UNLOCKED_WRITE_POSITIVE)
            if f.check == "unlocked-shared-write"
        ]
        assert len(findings) == 1
        assert findings[0].subject == "_closed"
        assert findings[0].symbol == "Manager.close"

    def test_negative_write_under_lock(self):
        findings = run_on(
            """
            import threading

            class Manager:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False

                def close(self):
                    with self._lock:
                        self._closed = True

                def submit(self):
                    with self._lock:
                        if self._closed:
                            raise RuntimeError("closed")
            """
        )
        assert "unlocked-shared-write" not in checks_of(findings)

    def test_negative_locked_suffix_helper(self):
        """``*_locked`` methods are assumed to run with the lock held."""
        findings = run_on(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._size = 0

                def _evict_locked(self):
                    self._size = 0

                def put(self):
                    with self._lock:
                        self._size += 1
                        self._evict_locked()
            """
        )
        assert "unlocked-shared-write" not in checks_of(findings)

    def test_negative_setstate_is_construction(self):
        findings = run_on(
            """
            import threading

            class Prepared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._csr = None

                def __setstate__(self, state):
                    self._lock = threading.Lock()
                    self._csr = state["csr"]

                def backend(self):
                    with self._lock:
                        return self._csr
            """
        )
        assert "unlocked-shared-write" not in checks_of(findings)

    def test_suppressed_inline(self):
        suppressed_src = UNLOCKED_WRITE_POSITIVE.replace(
            "self._closed = True",
            "self._closed = True  # repro-lint: disable=unlocked-shared-write",
        )
        findings = [
            f for f in run_on(suppressed_src) if f.check == "unlocked-shared-write"
        ]
        assert len(findings) == 1
        assert findings[0].suppressed and not findings[0].active

    def test_baseline_matched(self):
        first = [
            f for f in run_on(UNLOCKED_WRITE_POSITIVE)
            if f.check == "unlocked-shared-write"
        ]
        baseline = Baseline.from_findings(first)
        # Shift the code down a line: the fingerprint must still match.
        shifted = "\n" + textwrap.dedent(UNLOCKED_WRITE_POSITIVE)
        project = build_project_from_sources({"src/repro/fixture.py": shifted})
        result = run_checks(
            project, select=["unlocked-shared-write"], baseline=baseline
        )
        assert len(result.findings) == 1
        assert result.findings[0].baselined
        assert not result.new_findings


# --------------------------------------------------------------------------- #
# lock-order
# --------------------------------------------------------------------------- #
class TestLockOrder:
    def test_positive_inverted_order(self):
        findings = run_on(
            """
            import threading

            class Router:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def drain(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        cycle = [f for f in findings if f.check == "lock-order" and f.active]
        assert cycle
        assert "_a" in cycle[0].subject and "_b" in cycle[0].subject

    def test_negative_consistent_order(self):
        findings = run_on(
            """
            import threading

            class Router:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def drain(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )
        assert "lock-order" not in checks_of(findings)

    def test_positive_self_nested_plain_lock(self):
        findings = run_on(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert "lock-order" in checks_of(findings)

    def test_negative_self_nested_rlock(self):
        findings = run_on(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.RLock()

                def poke(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert "lock-order" not in checks_of(findings)


# --------------------------------------------------------------------------- #
# blocking-under-lock
# --------------------------------------------------------------------------- #
class TestBlockingUnderLock:
    def test_positive_sleep_under_lock(self):
        findings = run_on(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        time.sleep(0.5)
            """
        )
        hits = [f for f in findings if f.check == "blocking-under-lock"]
        assert len(hits) == 1
        assert hits[0].subject == "time.sleep"

    def test_positive_future_result_under_lock(self):
        findings = run_on(
            """
            import threading

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pool = None

                def run(self, fn):
                    with self._lock:
                        future = self._pool.submit(fn)
                        return future.result()
            """
        )
        assert "blocking-under-lock" in checks_of(findings)

    def test_negative_sleep_outside_lock(self):
        findings = run_on(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        deadline = 5
                    time.sleep(deadline)
            """
        )
        assert "blocking-under-lock" not in checks_of(findings)

    def test_suppressed_inline(self):
        findings = run_on(
            """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        # repro-lint: disable=blocking-under-lock
                        time.sleep(0.5)
            """
        )
        hits = [f for f in findings if f.check == "blocking-under-lock"]
        assert len(hits) == 1 and hits[0].suppressed


# --------------------------------------------------------------------------- #
# epoch-key-contract
# --------------------------------------------------------------------------- #
class TestEpochKeyContract:
    def test_positive_key_without_epoch(self):
        findings = run_on(
            """
            from repro.service.cache import ByteBudgetLRU

            def result_cache_key(request):
                return (request.k, request.q)
            """
        )
        hits = [f for f in findings if f.check == "epoch-key-contract"]
        assert len(hits) == 1
        assert "result_cache_key" in hits[0].subject

    def test_negative_key_with_epoch(self):
        findings = run_on(
            """
            from repro.service.cache import ByteBudgetLRU

            def result_cache_key(graph, request):
                return (graph.epoch, request.k, request.q)
            """
        )
        assert "epoch-key-contract" not in checks_of(findings)

    def test_negative_delegating_key(self):
        findings = run_on(
            """
            from repro.service.cache import ByteBudgetLRU, result_cache_key

            def seed_cache_key(graph, request):
                return ("seed",) + result_cache_key(graph, request)
            """
        )
        assert "epoch-key-contract" not in checks_of(findings)

    def test_negative_module_without_cache_markers(self):
        """Key builders in cache-free modules are out of scope."""
        findings = run_on(
            """
            def partition_key(row):
                return (row.shard, row.bucket)
            """
        )
        assert "epoch-key-contract" not in checks_of(findings)

    def test_positive_inline_literal_key(self):
        findings = run_on(
            """
            class Service:
                def __init__(self, lru):
                    self._result_cache = lru  # a ByteBudgetLRU

                def lookup(self, request):
                    return self._result_cache.get((request.k, request.q))
            """
        )
        assert "epoch-key-contract" in checks_of(findings)


# --------------------------------------------------------------------------- #
# resource-cleanup
# --------------------------------------------------------------------------- #
class TestResourceCleanup:
    def test_positive_never_cleaned(self):
        findings = run_on(
            """
            from multiprocessing import shared_memory

            def scratch(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                return n
            """
        )
        hits = [f for f in findings if f.check == "resource-cleanup"]
        assert len(hits) == 1
        assert "never" in hits[0].message

    def test_positive_cleanup_not_exception_safe(self):
        findings = run_on(
            """
            from multiprocessing import shared_memory

            def fill(n, data):
                shm = shared_memory.SharedMemory(create=True, size=n)
                data.validate()
                shm.close()
                shm.unlink()
            """
        )
        hits = [f for f in findings if f.check == "resource-cleanup"]
        assert len(hits) == 1
        assert "finally" in hits[0].message

    def test_negative_try_finally(self):
        findings = run_on(
            """
            from multiprocessing import shared_memory

            def fill(n, data):
                shm = shared_memory.SharedMemory(create=True, size=n)
                try:
                    data.validate()
                finally:
                    shm.close()
                    shm.unlink()
            """
        )
        assert "resource-cleanup" not in checks_of(findings)

    def test_negative_escaping_handle(self):
        """Returned/stored handles move cleanup responsibility elsewhere."""
        findings = run_on(
            """
            from multiprocessing import shared_memory

            def attach(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                return shm
            """
        )
        assert "resource-cleanup" not in checks_of(findings)

    def test_positive_popen(self):
        findings = run_on(
            """
            import subprocess

            def spawn(cmd):
                proc = subprocess.Popen(cmd)
                proc.poll()
            """
        )
        assert "resource-cleanup" in checks_of(findings)


# --------------------------------------------------------------------------- #
# nondeterminism-in-solver
# --------------------------------------------------------------------------- #
class TestNondeterminismInSolver:
    def test_positive_random_in_core(self):
        findings = run_on(
            {
                "src/repro/core/order.py": textwrap.dedent(
                    """
                    import random

                    def pick_pivot(candidates):
                        return random.choice(sorted(candidates))
                    """
                )
            }
        )
        hits = [f for f in findings if f.check == "nondeterminism-in-solver"]
        assert len(hits) == 1
        assert hits[0].subject == "random.choice"

    def test_negative_same_code_outside_solver_surface(self):
        findings = run_on(
            {
                "src/repro/server/ids.py": textwrap.dedent(
                    """
                    import random

                    def request_id():
                        return random.random()
                    """
                )
            }
        )
        assert "nondeterminism-in-solver" not in checks_of(findings)

    def test_negative_sanctioned_stats_capture(self):
        findings = run_on(
            {
                "src/repro/parallel/executor.py": textwrap.dedent(
                    """
                    import time

                    def run(tracer, work):
                        started_wall = time.time()
                        out = work()
                        tracer.span_record("parallel", wall=time.time())
                        return out, started_wall
                    """
                )
            }
        )
        assert "nondeterminism-in-solver" not in checks_of(findings)

    def test_negative_monotonic_allowed(self):
        findings = run_on(
            {
                "src/repro/core/budget.py": textwrap.dedent(
                    """
                    import time

                    def expired(deadline):
                        return time.monotonic() > deadline
                    """
                )
            }
        )
        assert "nondeterminism-in-solver" not in checks_of(findings)


# --------------------------------------------------------------------------- #
# swallowed-exception
# --------------------------------------------------------------------------- #
class TestSwallowedException:
    def test_positive_silent_fallback(self):
        findings = run_on(
            """
            def parse(graph, label):
                try:
                    return graph.index_of(label)
                except Exception:
                    return graph.index_of(int(label))
            """
        )
        hits = [f for f in findings if f.check == "swallowed-exception"]
        assert len(hits) == 1

    def test_positive_pass_only_even_with_binding(self):
        findings = run_on(
            """
            def drop(work):
                try:
                    work()
                except Exception as exc:
                    pass
            """
        )
        assert "swallowed-exception" in checks_of(findings)

    def test_negative_narrow_type(self):
        findings = run_on(
            """
            def parse(graph, label):
                try:
                    return graph.index_of(label)
                except KeyError:
                    return graph.index_of(int(label))
            """
        )
        assert "swallowed-exception" not in checks_of(findings)

    def test_negative_reported(self):
        findings = run_on(
            """
            import logging

            def attempt(work):
                try:
                    work()
                except Exception:
                    logging.warning("work failed")
            """
        )
        assert "swallowed-exception" not in checks_of(findings)

    def test_negative_reraise(self):
        findings = run_on(
            """
            def attempt(work, cleanup):
                try:
                    work()
                except Exception:
                    cleanup()
                    raise
            """
        )
        assert "swallowed-exception" not in checks_of(findings)


# --------------------------------------------------------------------------- #
# Registry / framework plumbing
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_registered(self):
        names = check_names()
        for expected in (
            "unlocked-shared-write",
            "lock-order",
            "blocking-under-lock",
            "epoch-key-contract",
            "resource-cleanup",
            "nondeterminism-in-solver",
            "swallowed-exception",
        ):
            assert expected in names

    def test_register_and_run_custom_check(self):
        @register_check("fixture-todo")
        class TodoCheck(Check):
            description = "flag TODO markers"

            def run(self, project):
                for module in project.modules:
                    for lineno, line in enumerate(module.lines, start=1):
                        if "TODO" in line:
                            yield Finding(
                                file=module.relpath,
                                line=lineno,
                                col=0,
                                check=self.name,
                                message="TODO left in source",
                                subject="todo",
                            )

        try:
            findings = run_on("x = 1  # TODO later\n", select=["fixture-todo"])
            assert [f.check for f in findings] == ["fixture-todo"]
        finally:
            unregister_check("fixture-todo")
        with pytest.raises(ValueError):
            get_check("fixture-todo")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_check("lock-order")
            class Clash(Check):  # noqa: F811 - intentionally clashing
                def run(self, project):
                    return iter(())

    def test_unknown_check_lists_known_names(self):
        with pytest.raises(ValueError, match="lock-order"):
            get_check("no-such-check")


class TestBaselineSemantics:
    def test_counts_are_budgets(self):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    self._n = 1

                def reset(self):
                    self._n = 0

                def read(self):
                    with self._lock:
                        return self._n
            """
        findings = [
            f for f in run_on(source) if f.check == "unlocked-shared-write"
        ]
        assert len(findings) == 2
        fingerprints = {f.fingerprint for f in findings}
        assert len(fingerprints) == 2  # distinct enclosing symbols
        # Baseline only one of the two: the other must stay active.
        baseline = Baseline.from_findings(findings[:1])
        project = build_project_from_sources(
            {"src/repro/fixture.py": textwrap.dedent(source)}
        )
        result = run_checks(
            project, select=["unlocked-shared-write"], baseline=baseline
        )
        assert len(result.baselined_findings) == 1
        assert len(result.new_findings) == 1

    def test_write_and_load_round_trip(self, tmp_path):
        findings = [
            f for f in run_on(UNLOCKED_WRITE_POSITIVE)
            if f.check == "unlocked-shared-write"
        ]
        path = tmp_path / BASELINE_NAME
        assert write_baseline(path, findings) == 1
        loaded = load_baseline(path)
        loaded.apply(findings)
        assert all(f.baselined for f in findings)

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert baseline.counts == {}


class TestReporters:
    def _result(self):
        project = build_project_from_sources(
            {"src/repro/fixture.py": textwrap.dedent(UNLOCKED_WRITE_POSITIVE)}
        )
        return run_checks(project, select=["unlocked-shared-write"])

    def test_json_schema_stable(self):
        stream = io.StringIO()
        render_json(self._result(), stream)
        document = json.loads(stream.getvalue())
        assert document["version"] == 1
        assert set(document) >= {
            "version", "files_analyzed", "checks_run", "findings",
            "summary", "syntax_errors",
        }
        finding = document["findings"][0]
        assert set(finding) >= {
            "file", "line", "col", "check", "message", "symbol",
            "subject", "suppressed", "baselined", "fingerprint",
        }
        summary = document["summary"]
        assert summary["new"] == 1
        assert summary["by_check"] == {"unlocked-shared-write": 1}

    def test_text_report_and_summary(self):
        result = self._result()
        stream = io.StringIO()
        render_text(result, stream)
        text = stream.getvalue()
        assert "src/repro/fixture.py" in text
        assert "[unlocked-shared-write]" in text
        assert summary_line(result) in text
        assert "1 new finding" in summary_line(result)

    def test_syntax_error_reported(self):
        project = build_project_from_sources({"src/repro/bad.py": "def broken(:\n"})
        result = run_checks(project)
        assert result.syntax_errors
        assert "src/repro/bad.py" in result.syntax_errors[0]


class TestCli:
    def _run(self, argv, cwd=None):
        from repro.lint.cli import build_parser, run_lint

        out, err = io.StringIO(), io.StringIO()
        args = build_parser().parse_args(argv)
        code = run_lint(args, stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def test_list_checks(self):
        code, out, _ = self._run(["--list-checks"])
        assert code == 0
        assert "unlocked-shared-write" in out

    def test_unknown_select_is_usage_error(self):
        code, _, err = self._run(["--select", "bogus", "src"])
        assert code == 2
        assert "bogus" in err

    def test_missing_path_is_usage_error(self):
        code, _, err = self._run(["definitely/not/here"])
        assert code == 2
        assert "no such path" in err

    def test_exit_zero_reports_without_failing(self, tmp_path):
        bad = tmp_path / "racy.py"
        bad.write_text(textwrap.dedent(UNLOCKED_WRITE_POSITIVE), encoding="utf-8")
        code, out, _ = self._run(
            [str(bad), "--no-baseline", "--select", "unlocked-shared-write",
             "--exit-zero"]
        )
        assert code == 0
        assert "unlocked-shared-write" in out
        code, _, _ = self._run(
            [str(bad), "--no-baseline", "--select", "unlocked-shared-write"]
        )
        assert code == 1

    def test_kplex_enum_subcommand_wired(self):
        from repro.cli import main as kplex_main

        assert kplex_main(["lint", "--list-checks"]) == 0


# --------------------------------------------------------------------------- #
# Self-check: the real tree is clean modulo the committed baseline
# --------------------------------------------------------------------------- #
class TestSelfCheck:
    def test_src_and_tests_clean_modulo_baseline(self):
        root = find_repo_root(Path(__file__).resolve().parent)
        baseline = load_baseline(root / BASELINE_NAME)
        result = analyze(["src", "tests"], root=root, baseline=baseline)
        assert result.files_analyzed > 100
        assert not result.syntax_errors
        new = result.new_findings
        assert new == [], "\n".join(f.render() for f in new)

    def test_known_fixed_sites_stay_fixed(self):
        """Regression guard for findings fixed in this PR (not baselined)."""
        root = find_repo_root(Path(__file__).resolve().parent)
        result = analyze(["src/repro/jobs", "src/repro/service"], root=root)
        unlocked = [
            f.render() for f in result.findings
            if f.check == "unlocked-shared-write" and f.subject == "_closed"
        ]
        assert unlocked == []
