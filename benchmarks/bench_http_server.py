"""HTTP front-end — warm-start restart vs cold restart, over the wire.

The deployment story of the server subsystem is that a restart is not a
cold start: the warm-state snapshot (:mod:`repro.server.persistence`)
replays the hottest request specs through the normal service path on boot,
so the recurring workload is answered from a warm cache at HTTP-overhead
latency instead of search latency.

This bench boots a real :class:`KPlexHTTPServer` three times over the
repeated-query workload of the serving benches and gates two claims:

* **>= 3x**: the median per-request HTTP latency of a warm-started restart
  is at least 3x lower than a cold restart's on the same workload;
* **epoch safety**: a snapshot taken *before* ``bump_epoch()`` warms
  nothing after the mutation — the restarted-and-mutated server serves the
  first round entirely from recomputation (zero cache hits).
"""

import statistics
import time

from repro.analysis.reporting import render_table
from repro.experiments.workloads import service_replay_workloads
from repro.server import ServiceClient, save_snapshot, start_server, warm_start
from repro.service import KPlexService, ServiceConfig

from _bench_utils import run_once

GATE_SPEEDUP = 3.0


def _boot(snapshot_path=None):
    service = KPlexService(config=ServiceConfig(max_workers=2))
    server = start_server(service, port=0, snapshot_path=snapshot_path)
    client = ServiceClient(server.url)
    client.wait_ready()
    return service, server, client


def _register_all(client, workloads):
    for dataset in {workload.dataset for workload in workloads}:
        client.register(dataset, dataset=dataset)


def _replay_latencies(client, workloads):
    latencies = []
    for workload in workloads:
        started = time.perf_counter()
        client.solve(
            workload.dataset, k=workload.k, q=workload.q, include_results=False
        )
        latencies.append(time.perf_counter() - started)
    return latencies


def test_bench_http_warm_start_restart(benchmark, scale):
    workloads = service_replay_workloads(scale, repeats=1)

    def run(tmp_path_factory=None):
        import tempfile, os

        snapshot_path = os.path.join(tempfile.mkdtemp(), "warm.json")

        # Generation 1: take live traffic, persist the hot set, drain.
        service, server, client = _boot(snapshot_path)
        _register_all(client, workloads)
        _replay_latencies(client, workloads)
        server.drain()  # final snapshot written here

        # Generation 2a: cold restart — no warm start, every request searches.
        service, server, client = _boot()
        _register_all(client, workloads)
        cold = _replay_latencies(client, workloads)
        server.drain()

        # Generation 2b: warm restart — replay the snapshot, then the same
        # workload is served from the rebuilt cache at wire latency.
        service, server, client = _boot()
        report = warm_start(service, snapshot_path)
        assert report.replayed >= len({(w.dataset, w.k, w.q) for w in workloads})
        assert report.failed == 0
        warm = _replay_latencies(client, workloads)
        warm_hits = client.metrics()["cache_hits"]
        server.drain()

        # Epoch safety: snapshot, mutate, warm-start — nothing may hit.
        service, server, client = _boot(snapshot_path)
        _register_all(client, workloads)
        _replay_latencies(client, workloads)
        save_snapshot(service, snapshot_path)
        for dataset in {w.dataset for w in workloads}:
            service.catalog.get(dataset).bump_epoch()
        if service.result_cache is not None:
            service.result_cache.clear()
        stale_report = warm_start(service, snapshot_path)
        stale_hits_before = client.metrics()["cache_hits"]
        client.solve(
            workloads[0].dataset,
            k=workloads[0].k,
            q=workloads[0].q,
            include_results=False,
        )
        stale_hits_after = client.metrics()["cache_hits"]
        server.drain()

        return {
            "requests": len(workloads),
            "cold_median_ms": round(statistics.median(cold) * 1e3, 3),
            "warm_median_ms": round(statistics.median(warm) * 1e3, 3),
            "speedup": round(statistics.median(cold) / statistics.median(warm), 2),
            "warm_hits": warm_hits,
            "stale_replayed": stale_report.replayed,
            "stale_hits_gained": stale_hits_after - stale_hits_before,
        }

    row = run_once(benchmark, run)
    print()
    print(render_table([row], title="HTTP warm-start restart (median per-request latency)"))

    assert row["warm_hits"] >= len(workloads), "warm replay did not serve the workload"
    assert row["speedup"] >= GATE_SPEEDUP, (
        f"warm restart only {row['speedup']}x faster than cold "
        f"(gate {GATE_SPEEDUP}x)"
    )
    assert row["stale_replayed"] == 0, "stale snapshot must not replay anything"
    assert row["stale_hits_gained"] == 0, (
        "a snapshot taken before bump_epoch() produced a cache hit after the mutation"
    )
