"""Shared fixtures for the test-suite.

Non-fixture helpers live in ``tests/_helpers.py`` and are imported
explicitly; keeping them out of ``conftest.py`` avoids the module-name
collision with ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.graph import Graph, generators


@pytest.fixture
def triangle() -> Graph:
    """The triangle graph."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def diamond() -> Graph:
    """K4 minus one edge (a 4-vertex 2-plex that is not a clique)."""
    return Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_triangles_bridge() -> Graph:
    """Two triangles joined by a single bridge edge."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])


@pytest.fixture
def figure3_graph() -> Graph:
    """The running-example graph of the paper (Figure 3)."""
    return generators.paper_figure3_graph()


@pytest.fixture
def karate_like() -> Graph:
    """A deterministic 34-vertex social-style graph used by integration tests."""
    return generators.relaxed_caveman(4, 9, rewire_probability=0.25, seed=5)
