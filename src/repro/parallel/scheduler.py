"""Deterministic simulated multi-core scheduler.

The scalability experiments of the paper (Figure 8: speedup with 2–16
threads; Figure 13: sensitivity to the straggler timeout ``τ_time``) measure
scheduling behaviour — load balancing across per-worker queues, work
stealing, and the decomposition of straggler tasks.  A CPython process pool
reproduces the qualitative behaviour but its wall-clock numbers are noisy and
hardware dependent, so this module additionally provides a *deterministic*
event-driven model of the paper's scheduler:

* seeds are processed in stages of ``num_workers`` task groups; worker ``i``
  owns the queue of sub-tasks of the ``i``-th group of the stage;
* an idle worker steals from the non-empty queue with the most remaining
  work (the paper's load-balancing rule);
* a sub-task whose processing exceeds ``timeout`` is split: the worker runs
  it for ``timeout`` time units and re-enqueues the remainder as a new task
  (modelling the re-materialised branch states), which then becomes stealable;
* a configurable per-split overhead models the cost of materialising the new
  task's status variables.

Sub-task costs are supplied by the caller; :func:`collect_task_costs` measures
them from a real sequential run (branch calls per sub-task), so the simulated
speedups inherit the true skew of the workload.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.branch import BranchSearcher
from ..core.config import EnumerationConfig
from ..core.seeds import iter_seed_contexts, iter_subtasks
from ..core.stats import SearchStatistics
from ..graph import Graph
from ..graph.core_decomposition import shrink_to_core


@dataclass
class SimulationReport:
    """Outcome of one simulated schedule."""

    num_workers: int
    makespan: float
    total_work: float
    busy_time: List[float]
    tasks_executed: int
    tasks_split: int
    stages: int

    @property
    def speedup(self) -> float:
        """Speedup over a single worker processing the same work serially."""
        if self.makespan <= 0:
            return float(self.num_workers)
        return self.total_work / self.makespan

    @property
    def utilisation(self) -> float:
        """Mean fraction of the makespan each worker spent busy."""
        if self.makespan <= 0 or not self.busy_time:
            return 1.0
        return sum(self.busy_time) / (self.makespan * len(self.busy_time))


class StageScheduler:
    """Simulate the stage-based scheduler with stealing and timeout splitting."""

    def __init__(
        self,
        num_workers: int,
        timeout: Optional[float] = None,
        split_overhead: float = 0.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable splitting)")
        self.num_workers = num_workers
        self.timeout = timeout
        self.split_overhead = split_overhead

    def run(self, task_groups: Sequence[Sequence[float]]) -> SimulationReport:
        """Schedule ``task_groups`` (one list of sub-task costs per seed).

        Returns the report with the resulting makespan.  Stages are formed by
        consecutive blocks of ``num_workers`` task groups, mirroring how the
        executor walks the degeneracy ordering.
        """
        makespan = 0.0
        busy = [0.0] * self.num_workers
        executed = 0
        split = 0
        total_work = float(sum(sum(group) for group in task_groups))
        stages = 0

        for start in range(0, len(task_groups), self.num_workers):
            block = task_groups[start : start + self.num_workers]
            stages += 1
            queues: List[List[float]] = [[] for _ in range(self.num_workers)]
            for index, group in enumerate(block):
                queues[index] = list(group)
            clock = [0.0] * self.num_workers

            # Event loop: repeatedly give work to the least-loaded worker.
            while True:
                pending_total = sum(len(queue) for queue in queues)
                if pending_total == 0:
                    break
                worker = min(range(self.num_workers), key=lambda w: clock[w])
                if queues[worker]:
                    source = worker
                else:
                    # Work stealing: take from the queue with the most
                    # outstanding work.
                    candidates = [w for w in range(self.num_workers) if queues[w]]
                    source = max(candidates, key=lambda w: sum(queues[w]))
                cost = queues[source].pop(0)
                executed += 1
                if self.timeout is not None and cost > self.timeout:
                    # Run for one timeout slice, re-enqueue the remainder as a
                    # fresh (stealable) task on the executing worker's queue.
                    clock[worker] += self.timeout + self.split_overhead
                    busy[worker] += self.timeout + self.split_overhead
                    queues[worker].append(cost - self.timeout)
                    split += 1
                else:
                    clock[worker] += cost
                    busy[worker] += cost
            stage_end = max(clock) if any(clock) else 0.0
            makespan += stage_end

        return SimulationReport(
            num_workers=self.num_workers,
            makespan=makespan,
            total_work=total_work,
            busy_time=busy,
            tasks_executed=executed,
            tasks_split=split,
            stages=stages,
        )


def collect_task_costs(
    graph: Graph,
    k: int,
    q: int,
    config: Optional[EnumerationConfig] = None,
) -> List[List[float]]:
    """Measure per-sub-task costs (branch calls) with a real sequential run.

    Returns one list per seed task group containing the number of
    branch-and-bound invocations of each of its sub-tasks.  These counts are
    the cost model fed to :class:`StageScheduler` by the speedup and timeout
    experiments, so the simulated schedules inherit the genuine skew of the
    workload (including straggler sub-tasks).
    """
    config = config or EnumerationConfig.ours()
    core_graph, _ = shrink_to_core(graph, q - k)
    costs: List[List[float]] = []
    if core_graph.num_vertices < q:
        return costs
    stats = SearchStatistics()
    for _seed, context in iter_seed_contexts(core_graph, k, q, config, stats):
        if context is None:
            continue
        group_costs: List[float] = []
        searcher = BranchSearcher(
            context, k, q, config, stats, on_result=lambda mask: None
        )
        for task in iter_subtasks(context, k, q, config, stats):
            before = stats.branch_calls
            searcher.run_subtask(task)
            group_costs.append(float(stats.branch_calls - before))
        if group_costs:
            costs.append(group_costs)
    return costs


def speedup_curve(
    task_groups: Sequence[Sequence[float]],
    worker_counts: Sequence[int],
    timeout: Optional[float] = None,
    split_overhead: float = 0.0,
) -> Dict[int, SimulationReport]:
    """Run the simulated scheduler for several worker counts (Figure 8 helper)."""
    reports: Dict[int, SimulationReport] = {}
    for workers in worker_counts:
        scheduler = StageScheduler(workers, timeout=timeout, split_overhead=split_overhead)
        reports[workers] = scheduler.run(task_groups)
    return reports


def timeout_curve(
    task_groups: Sequence[Sequence[float]],
    num_workers: int,
    timeouts: Sequence[Optional[float]],
    split_overhead: float = 0.0,
) -> Dict[Optional[float], SimulationReport]:
    """Run the simulated scheduler for several timeout values (Figure 13 helper)."""
    reports: Dict[Optional[float], SimulationReport] = {}
    for timeout in timeouts:
        scheduler = StageScheduler(num_workers, timeout=timeout, split_overhead=split_overhead)
        reports[timeout] = scheduler.run(task_groups)
    return reports
