"""Prepared-graph index: cached preprocessing shared across engine requests.

Every enumeration request performs the same graph-structure work before the
search proper starts: build a fast adjacency form, peel the ``(q-k)``-core
(Theorem 3.5) and compute the degeneracy ordering.  When the same graph is
queried repeatedly — the service scenario of the ROADMAP — recomputing these
from scratch dominates the preprocessing time.

:class:`PreparedGraph` caches, per :class:`~repro.graph.graph.Graph`:

* the :class:`~repro.graph.csr.CSRGraph` form (flat sorted adjacency arrays);
* the core decomposition (degeneracy ordering, core numbers, degeneracy);
* the shrunk ``d``-core for every requested minimum degree ``d``, together
  with the vertex map back to the source graph and a chained
  :class:`PreparedGraph` for the core graph itself.

Everything is computed lazily and at most once, guarded by a lock so the
engine's thread-pool ``solve_batch`` can share one index.

The cache is keyed by graph *identity* with the lifetime of the graph: the
index lives in a slot on the ``Graph`` object, so it is reused by every
request that passes the same graph and is garbage-collected together with
it.  (This has the semantics of a weak-keyed cache without the
value-keeps-key-alive leak a ``WeakKeyDictionary`` would suffer here, since
the index must reference its graph.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .core_decomposition import CoreDecomposition, set_backed_core_decomposition
from .csr import CSRGraph, build_csr, resolve_csr_backend
from .graph import Graph

_LOCK = threading.Lock()


def prepare(
    graph: Graph,
    max_core_levels: Optional[int] = None,
    csr_backend: Optional[str] = None,
) -> "PreparedGraph":
    """Return the (lazily filled) prepared index of ``graph``.

    Repeated calls with the same graph object return the same index; all
    engine entry points route their preprocessing through it, so a second
    request on a graph pays none of the structure-building cost again.

    ``max_core_levels`` optionally (re)configures the index's core-level
    memory budget: at most that many *distinct* shrunk ``core(level)``
    subgraphs are kept, evicted LRU-first (see
    :meth:`PreparedGraph.set_core_budget`).  Passing ``None`` leaves an
    existing budget untouched.

    ``csr_backend`` optionally pins the CSR kernel backend (``"array"`` or
    ``"numpy"``; see :mod:`repro.graph.csr`).  ``None`` keeps the index's
    current setting (initially the process default).
    """
    prepared = graph._prepared
    if prepared is None:
        with _LOCK:
            prepared = graph._prepared
            if prepared is None:
                prepared = PreparedGraph(graph)
                graph._prepared = prepared
    if max_core_levels is not None:
        prepared.set_core_budget(max_core_levels)
    if csr_backend is not None:
        prepared.set_csr_backend(csr_backend)
    return prepared


def invalidate(graph: Graph) -> None:
    """Drop every cached artefact of ``graph`` and bump its epoch.

    Clears the prepared index and the cached degree sequence, so a
    subsequent request measures a genuinely cold start.  The epoch bump
    additionally retires every cross-request cache entry keyed by
    ``(graph, epoch)`` — after an invalidation no serving-layer cache can
    hand out results computed from the previous state.
    """
    graph._prepared = None
    graph._degrees = None
    graph.bump_epoch()


class PreparedGraph:
    """Cached structural indexes of one graph (see module docstring)."""

    def __init__(
        self,
        graph: Graph,
        max_core_levels: Optional[int] = None,
        csr_backend: Optional[str] = None,
    ) -> None:
        self._graph = graph
        self._lock = threading.RLock()
        self._csr: Optional[CSRGraph] = None
        self._csr_backend: Optional[str] = (
            resolve_csr_backend(csr_backend) if csr_backend is not None else None
        )
        self._decomposition: Optional[CoreDecomposition] = None
        self._position: Optional[List[int]] = None
        # LRU over core levels: entries move to the end on every hit so the
        # optional memory budget evicts the least recently used level first.
        self._cores: "OrderedDict[int, Tuple[Graph, List[int]]]" = OrderedDict()
        self._max_core_levels = max_core_levels
        self._core_evictions = 0

    # ------------------------------------------------------------------ #
    # Cached artefacts
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The source graph this index belongs to."""
        return self._graph

    @property
    def csr(self) -> CSRGraph:
        """The CSR form of the graph (built on first use).

        The backend (``array``/``numpy``) is the index's configured one, or
        the process default at build time — see
        :func:`repro.graph.csr.default_csr_backend` and
        :meth:`set_csr_backend`.
        """
        csr = self._csr
        if csr is None:
            with self._lock:
                csr = self._csr
                if csr is None:
                    csr = build_csr(self._graph, backend=self._csr_backend)
                    self._csr = csr
        return csr

    def set_csr_backend(self, backend: Optional[str]) -> str:
        """Pin the CSR backend for this index; returns the resolved name.

        A CSR already built with a *different* backend is dropped and
        rebuilt lazily (the flat arrays are identical either way, so no
        other cached artefact is invalidated).  ``None``/``"auto"`` restores
        the process default.
        """
        resolved = resolve_csr_backend(backend)
        with self._lock:
            self._csr_backend = None if backend in (None, "auto") else resolved
            if self._csr is not None and self._csr.backend != resolved:
                self._csr = None
        return resolved

    @property
    def decomposition(self) -> CoreDecomposition:
        """The core decomposition, computed once by the reference peeling.

        The bucket-queue peeling over the adjacency sets is the fastest of
        the implementations measured under CPython (its inner loops are
        C-level set operations), so the cached artefact is produced by the
        reference itself — the win here is paying for it once per graph.

        The returned object (and its lists) is the shared cache entry:
        treat it as read-only.  The public
        :func:`~repro.graph.core_decomposition.core_decomposition` hands out
        defensive copies instead.
        """
        decomposition = self._decomposition
        if decomposition is None:
            with self._lock:
                decomposition = self._decomposition
                if decomposition is None:
                    decomposition = set_backed_core_decomposition(self._graph)
                    self._decomposition = decomposition
        return decomposition

    @property
    def position(self) -> List[int]:
        """``position[v]`` = index of ``v`` in the degeneracy ordering."""
        position = self._position
        if position is None:
            with self._lock:
                position = self._position
                if position is None:
                    position = self.decomposition.position()
                    self._position = position
        return position

    def core(self, minimum_degree: int) -> Tuple[Graph, List[int]]:
        """Return the cached ``minimum_degree``-core and its vertex map.

        The vertex map sends core-graph ids back to ids in this graph.  When
        no vertex is peeled the graph itself is returned (with an identity
        map), which chains the prepared indexes: preparing the core is then
        the same cache entry as preparing the graph.

        Services mixing many ``q`` values can cap how many distinct shrunk
        cores are retained with :meth:`set_core_budget`; identity entries
        (level did not peel anything) are exempt because they carry no graph
        payload of their own and keep the identity-shortcut chain shared.
        """
        with self._lock:
            entry = self._cores.get(minimum_degree)
            if entry is None:
                entry = self._build_core(minimum_degree)
                self._cores[minimum_degree] = entry
            else:
                self._cores.move_to_end(minimum_degree)
            self._enforce_core_budget_locked()
        return entry

    def set_core_budget(self, max_core_levels: Optional[int]) -> None:
        """Cap the number of retained *distinct* shrunk core subgraphs.

        ``None`` removes the cap.  Identity entries — levels where nothing
        was peeled, so :meth:`core` returned the graph itself — do not count
        against (and are never evicted by) the budget: they hold only an
        identity vertex map, and keeping them preserves the chained
        identity-shortcut semantics (``prepared_core`` of such a level *is*
        this index).  Eviction is LRU and is recorded in
        :meth:`core_budget_info`; an evicted level is simply recomputed on
        the next request, so correctness is unaffected.
        """
        if max_core_levels is not None and max_core_levels < 0:
            raise ValueError(
                f"max_core_levels must be non-negative or None, got {max_core_levels}"
            )
        with self._lock:
            self._max_core_levels = max_core_levels
            self._enforce_core_budget_locked()

    def _enforce_core_budget_locked(self) -> None:
        """Evict LRU non-identity core entries until the budget holds."""
        budget = self._max_core_levels
        if budget is None:
            return
        while True:
            distinct = [
                level
                for level, (core_graph, _) in self._cores.items()
                if core_graph is not self._graph
            ]
            if len(distinct) <= budget:
                return
            # OrderedDict iteration order is LRU-first.
            del self._cores[distinct[0]]
            self._core_evictions += 1

    def core_budget_info(self) -> Dict[str, object]:
        """Budget telemetry: cap, retained/identity level counts, evictions."""
        with self._lock:
            identity_levels = [
                level
                for level, (core_graph, _) in self._cores.items()
                if core_graph is self._graph
            ]
            return {
                "max_core_levels": self._max_core_levels,
                "distinct_levels": len(self._cores) - len(identity_levels),
                "identity_levels": sorted(identity_levels),
                "evictions": self._core_evictions,
            }

    def prepared_core(self, minimum_degree: int) -> Tuple["PreparedGraph", List[int]]:
        """Like :meth:`core` but returning the core's own prepared index.

        The vertex map is the shared cache entry — treat it as read-only.
        """
        core_graph, vertex_map = self.core(minimum_degree)
        return prepare(core_graph), vertex_map

    def for_worker_transfer(self) -> "PreparedGraph":
        """A slim copy carrying only what parallel workers read.

        Ships the graph, the finished core decomposition and the position
        index; the CSR arrays and cached core subgraphs stay behind, keeping
        the per-worker pickle payload minimal.  When the platform supports
        shared memory the executor prefers :meth:`share`, which ships only a
        fixed-size descriptor per worker.
        """
        slim = PreparedGraph(self._graph)
        slim._decomposition = self.decomposition
        slim._position = self.position
        return slim

    def share(self) -> "SharedPreparedGraph":
        """Publish this index's flat arrays in one shared-memory segment.

        Materialises the CSR form, decomposition and position index, then
        copies them into a segment workers attach with
        :func:`repro.graph.shared.attach_prepared` — per-worker transfer is
        a fixed-size descriptor instead of an ``O(n + m)`` pickle.  The
        caller owns the returned handle and must ``unlink()`` it (once) when
        the worker pool is done; the executor does so in a ``finally``.
        """
        from .shared import SharedPreparedGraph

        return SharedPreparedGraph(self)

    def _build_core(self, minimum_degree: int) -> Tuple[Graph, List[int]]:
        graph = self._graph
        n = graph.num_vertices
        if minimum_degree <= 0 or n == 0:
            return graph, list(range(n))
        csr = self.csr
        alive = csr.k_core_alive(minimum_degree)
        kept = [vertex for vertex in range(n) if alive[vertex]]
        if len(kept) == n:
            return graph, kept
        adjacency = csr.induced_adjacency(kept)
        labels = [graph.label(vertex) for vertex in kept]
        return Graph(adjacency, labels), kept

    # ------------------------------------------------------------------ #
    # Introspection and pickling
    # ------------------------------------------------------------------ #
    def cache_info(self) -> Dict[str, object]:
        """Which artefacts have been materialised so far (for tests/logs)."""
        return {
            "csr": self._csr is not None,
            "csr_backend": self._csr.backend if self._csr is not None else None,
            "decomposition": self._decomposition is not None,
            "core_levels": sorted(self._cores),
        }

    def __getstate__(self):
        # Ship the computed artefacts so worker processes skip the
        # preprocessing entirely; the lock is recreated on arrival.
        return {
            "graph": self._graph,
            "csr": self._csr,
            "csr_backend": self._csr_backend,
            "decomposition": self._decomposition,
            "position": self._position,
            "cores": self._cores,
            "core_budget": self._max_core_levels,
        }

    def __setstate__(self, state) -> None:
        self._graph = state["graph"]
        self._lock = threading.RLock()
        self._csr = state["csr"]
        self._csr_backend = state.get("csr_backend")
        self._decomposition = state["decomposition"]
        self._position = state["position"]
        self._cores = OrderedDict(state["cores"])
        self._max_core_levels = state.get("core_budget")
        self._core_evictions = 0
        # Re-attach to the unpickled graph so prepare() finds this index.
        if self._graph._prepared is None:
            self._graph._prepared = self

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"PreparedGraph(n={self._graph.num_vertices}, csr={info['csr']}, "
            f"decomposition={info['decomposition']}, cores={info['core_levels']})"
        )
