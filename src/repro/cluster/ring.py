"""Consistent-hash ring with virtual nodes for graph → replica placement.

The router shards *graph names* across replicas.  Requirements that shaped
this implementation:

* **Deterministic across processes.**  Placement decisions are made by the
  router, by benchmarks, and by operators reading ``/v1/cluster`` — all in
  different interpreters.  Python's builtin ``hash`` is salted per process,
  so points are derived from ``blake2b`` digests instead.
* **Minimal movement.**  Adding or removing one replica must only remap
  ~``1/N`` of the keys (the classic consistent-hashing property); the
  test-suite pins this bound.
* **Stable backup choice.**  ``lookup_n(key, 2)`` yields the owner followed
  by the first *distinct* successor on the ring — the replica that receives
  peer-warm broadcasts and failover retries for that key.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing"]

DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """Position of ``data`` on the 64-bit ring (process-independent)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Maps keys to nodes via consistent hashing with virtual nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """Member node names, sorted for reproducible iteration."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        points = []
        for vnode in range(self.vnodes):
            point = _point(f"{node}#{vnode}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)
            points.append(point)
        self._nodes[node] = tuple(points)

    def remove(self, node: str) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            return
        for point in points:
            index = bisect.bisect_left(self._points, point)
            # Walk forward over hash collisions to the entry owned by `node`.
            while self._owners[index] != node or self._points[index] != point:
                index += 1
            del self._points[index]
            del self._owners[index]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> str:
        """The node owning ``key``."""
        if not self._nodes:
            raise KeyError("hash ring is empty")
        index = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        return self._owners[index]

    def lookup_n(self, key: str, count: int) -> List[str]:
        """Up to ``count`` distinct nodes in ring order (owner first)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if not self._nodes:
            raise KeyError("hash ring is empty")
        start = bisect.bisect_right(self._points, _point(key))
        found: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) == count or len(found) == len(self._nodes):
                    break
        return found

    def partition(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning node (missing nodes map to empty lists)."""
        groups: Dict[str, List[str]] = {node: [] for node in self.nodes}
        for key in keys:
            groups[self.lookup(key)].append(key)
        return groups
