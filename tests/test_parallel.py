"""Tests for the parallel executor and the deterministic scheduler model."""

import pytest

from repro.core import enumerate_maximal_kplexes
from repro.graph import generators
from repro.parallel import (
    ParallelConfig,
    StageScheduler,
    collect_task_costs,
    parallel_enumerate_maximal_kplexes,
    speedup_curve,
    timeout_curve,
)

from _helpers import vertex_sets


# --------------------------------------------------------------------------- #
# Real executor
# --------------------------------------------------------------------------- #
def test_thread_executor_matches_sequential():
    graph = generators.relaxed_caveman(4, 7, 0.25, seed=50)
    k, q = 2, 5
    sequential = vertex_sets(enumerate_maximal_kplexes(graph, k, q))
    parallel = parallel_enumerate_maximal_kplexes(
        graph, k, q, ParallelConfig(num_workers=3, use_processes=False)
    )
    assert vertex_sets(parallel.kplexes) == sequential
    assert parallel.statistics.outputs == len(parallel.kplexes)


def test_process_executor_matches_sequential():
    graph = generators.relaxed_caveman(3, 7, 0.25, seed=51)
    k, q = 2, 5
    sequential = vertex_sets(enumerate_maximal_kplexes(graph, k, q))
    parallel = parallel_enumerate_maximal_kplexes(
        graph, k, q, ParallelConfig(num_workers=2, use_processes=True)
    )
    assert vertex_sets(parallel.kplexes) == sequential


def test_executor_without_timeout_matches_sequential():
    graph = generators.relaxed_caveman(3, 6, 0.3, seed=52)
    k, q = 2, 5
    sequential = vertex_sets(enumerate_maximal_kplexes(graph, k, q))
    parallel = parallel_enumerate_maximal_kplexes(
        graph,
        k,
        q,
        ParallelConfig(num_workers=2, use_processes=False, timeout_seconds=None),
    )
    assert vertex_sets(parallel.kplexes) == sequential


def test_executor_on_empty_result_graph():
    graph = generators.path_graph(10)
    parallel = parallel_enumerate_maximal_kplexes(
        graph, 2, 6, ParallelConfig(num_workers=2, use_processes=False)
    )
    assert parallel.kplexes == []


def test_executor_validates_parameters():
    graph = generators.path_graph(5)
    with pytest.raises(Exception):
        parallel_enumerate_maximal_kplexes(graph, 2, 1, ParallelConfig(num_workers=1))


# --------------------------------------------------------------------------- #
# Deterministic scheduler
# --------------------------------------------------------------------------- #
def test_scheduler_single_worker_is_serial_sum():
    scheduler = StageScheduler(num_workers=1)
    report = scheduler.run([[3.0, 2.0], [5.0]])
    assert report.makespan == pytest.approx(10.0)
    assert report.speedup == pytest.approx(1.0)
    assert report.tasks_executed == 3


def test_scheduler_balances_equal_tasks():
    scheduler = StageScheduler(num_workers=4)
    report = scheduler.run([[1.0] * 4, [1.0] * 4, [1.0] * 4, [1.0] * 4])
    assert report.makespan == pytest.approx(4.0)
    assert report.speedup == pytest.approx(4.0)
    assert report.utilisation == pytest.approx(1.0)


def test_scheduler_straggler_without_timeout_limits_speedup():
    # One giant task dominates the stage when it cannot be split.
    groups = [[16.0], [1.0], [1.0], [1.0]]
    no_timeout = StageScheduler(num_workers=4).run(groups)
    assert no_timeout.makespan == pytest.approx(16.0)
    with_timeout = StageScheduler(num_workers=4, timeout=1.0).run(groups)
    assert with_timeout.makespan < no_timeout.makespan


def test_scheduler_timeout_overhead_visible():
    groups = [[4.0] * 4]
    cheap = StageScheduler(num_workers=2, timeout=None).run(groups)
    expensive = StageScheduler(num_workers=2, timeout=0.5, split_overhead=0.5).run(groups)
    assert expensive.makespan > cheap.makespan


def test_scheduler_work_is_conserved():
    groups = [[2.0, 3.0, 1.0], [4.0], [2.5, 2.5]]
    report = StageScheduler(num_workers=3).run(groups)
    assert sum(report.busy_time) == pytest.approx(report.total_work)


def test_scheduler_rejects_bad_arguments():
    with pytest.raises(ValueError):
        StageScheduler(num_workers=0)
    with pytest.raises(ValueError):
        StageScheduler(num_workers=2, timeout=0.0)


def test_scheduler_stage_structure():
    # Two stages of two groups each on two workers.
    groups = [[1.0], [1.0], [1.0], [1.0]]
    report = StageScheduler(num_workers=2).run(groups)
    assert report.stages == 2
    assert report.makespan == pytest.approx(2.0)


# --------------------------------------------------------------------------- #
# Cost collection and curves
# --------------------------------------------------------------------------- #
def test_collect_task_costs_counts_all_branches():
    graph = generators.relaxed_caveman(3, 7, 0.25, seed=53)
    costs = collect_task_costs(graph, 2, 5)
    assert costs
    assert all(cost > 0 for group in costs for cost in group)


def test_collect_task_costs_empty_when_core_too_small():
    graph = generators.path_graph(6)
    assert collect_task_costs(graph, 2, 6) == []


def test_speedup_curve_monotone():
    graph = generators.relaxed_caveman(4, 7, 0.25, seed=54)
    costs = collect_task_costs(graph, 2, 5)
    reports = speedup_curve(costs, [1, 2, 4, 8], timeout=4.0)
    speedups = [reports[w].speedup for w in (1, 2, 4, 8)]
    assert speedups[0] == pytest.approx(1.0)
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))


def test_timeout_curve_contains_all_requested_values():
    graph = generators.relaxed_caveman(3, 7, 0.25, seed=55)
    costs = collect_task_costs(graph, 2, 5)
    reports = timeout_curve(costs, num_workers=4, timeouts=[1.0, 8.0, None])
    assert set(reports) == {1.0, 8.0, None}
    assert all(report.makespan > 0 for report in reports.values())
