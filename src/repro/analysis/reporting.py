"""Plain-text rendering of experiment tables and figure series.

The experiment drivers return plain data (lists of dictionaries for tables,
``x -> series`` mappings for figures); this module renders them the way the
benchmark harness prints them: fixed-width text tables and simple aligned
series listings, so the output of ``pytest benchmarks/`` can be compared
side-by-side with the paper's tables and figure data points.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    """Render one cell: floats get 3 decimals, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [format_value(row.get(column, "")) for column in columns]
        rendered_rows.append(cells)
        for column, cell in zip(columns, cells):
            widths[column] = max(widths[column], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for cells in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, cells))
        )
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[object, object]],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render figure-style data: one column of x values, one column per series."""
    x_values: List[object] = []
    for values in series.values():
        for x in values:
            if x not in x_values:
                x_values.append(x)
    rows = []
    for x in x_values:
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            if x in values:
                row[name] = values[x]
        rows.append(row)
    return render_table(rows, columns=[x_label, *series.keys()], title=title)


def render_ratio_row(label: str, numerator: float, denominator: float) -> str:
    """Render a one-line speedup/ratio statement (used in bench summaries)."""
    if denominator <= 0:
        return f"{label}: n/a"
    return f"{label}: {numerator / denominator:.2f}x"


def print_report(text: str) -> None:
    """Print a rendered report surrounded by blank lines (bench-friendly)."""
    print()
    print(text)
    print()
