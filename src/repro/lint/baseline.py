"""Baseline file: grandfathered findings that do not fail the run.

The baseline maps line-independent fingerprints (see
:attr:`repro.lint.finding.Finding.fingerprint`) to the *count* of
findings allowed under that fingerprint, plus a human-readable context
block so reviewers can see what each hash stands for.  Counts matter:
two distinct unlocked writes to the same attribute share a fingerprint,
and a third one appearing later must still fail the run.

Workflow:

* ``kplex-enum lint --baseline-update`` rewrites the file from the
  current findings (run it after intentionally accepting a finding);
* a finding whose fingerprint has remaining budget is marked
  ``baselined`` and does not affect the exit code;
* baseline entries that no longer match anything are reported by
  ``--baseline-update`` runs simply by vanishing from the diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .finding import Finding

__all__ = ["BASELINE_NAME", "Baseline", "load_baseline", "write_baseline"]

BASELINE_NAME = "lint-baseline.json"
_FORMAT_VERSION = 1


class Baseline:
    """Fingerprint budgets loaded from (or destined for) the baseline file."""

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    def apply(self, findings: List[Finding]) -> None:
        """Mark findings covered by the baseline, consuming budgets in order."""
        remaining = dict(self.counts)
        for finding in sorted(findings, key=Finding.sort_key):
            if finding.suppressed:
                continue
            budget = remaining.get(finding.fingerprint, 0)
            if budget > 0:
                finding.baselined = True
                remaining[finding.fingerprint] = budget - 1

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
        return cls(counts)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    counts: Dict[str, int] = {}
    for entry in data.get("findings", []):
        counts[entry["fingerprint"]] = int(entry.get("count", 1))
    return Baseline(counts)


def write_baseline(path: Path, findings: List[Finding]) -> int:
    """Rewrite ``path`` from the given findings; returns the entry count.

    Suppressed findings are excluded (the inline comment already owns
    them).  Entries keep one exemplar's context so the file reviews well.
    """
    by_fingerprint: Dict[str, Dict[str, object]] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        if finding.suppressed:
            continue
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is None:
            by_fingerprint[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "count": 1,
                "check": finding.check,
                "file": finding.file,
                "symbol": finding.symbol,
                "subject": finding.subject,
                "message": finding.message,
            }
        else:
            entry["count"] = int(entry["count"]) + 1
    payload = {
        "version": _FORMAT_VERSION,
        "findings": sorted(
            by_fingerprint.values(),
            key=lambda e: (e["file"], e["check"], e["subject"], e["fingerprint"]),
        ),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(by_fingerprint)
