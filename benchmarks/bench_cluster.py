"""Cluster serving — sharded scale-out, peer warming, failover durability.

Three claims of the :mod:`repro.cluster` subsystem, measured over real
subprocess replicas behind a real router:

* **scale-out >= 1.7x**: a two-replica cluster sustains at least 1.7x the
  throughput of a single-replica cluster on a cache-disabled mixed-graph
  workload (same router in both, so the proxy hop cancels out).  CI hosts
  are often single-core, where multi-process CPU scale-out is physically
  impossible to demonstrate; the workload therefore emulates seed-level
  search latency with the fault harness's ``seed_delay`` point (each seed
  task sleeps inside the replica's real worker-pool path, releasing the
  interpreter lock), so throughput is bounded by *serving slots* — the
  resource replicas actually add;
* **peer warming**: after the router broadcasts a cache-missed spec to
  the ring's backup replica, the backup serves that spec as a cache hit
  without ever having received it from a client;
* **failover durability**: SIGKILLing one replica mid-workload loses
  zero accepted requests (ring-order failover covers the gap), and the
  supervisor restarts the dead replica —
  ``kplex_cluster_replica_restarts_total >= 1`` in the merged metrics.
"""

import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.reporting import render_table
from repro.cluster import HashRing, start_cluster
from repro.graph import generators
from repro.server import ServiceClient

from _bench_utils import run_once

GATE_SCALEOUT = 1.7
GATE_RESTARTS = 1
CLIENT_THREADS = 4
SEED_DELAY = "seed_delay:0.05"
SOLVE_OPTIONS = {"num_workers": 1, "use_processes": False}


def _shard_balanced_names(per_replica=3):
    """Graph names a two-replica ring splits evenly (looked up, not hoped).

    The result interleaves owners (r0, r1, r0, r1, ...) so that any window
    of consecutive in-flight requests spreads across both replicas; a
    grouped ordering would serialize the two-replica run on one replica at
    a time and understate scale-out.
    """
    ring = HashRing(["r0", "r1"])
    chosen = {"r0": [], "r1": []}
    index = 0
    while any(len(names) < per_replica for names in chosen.values()):
        name = f"bench-g{index}"
        owner = ring.lookup(name)
        if len(chosen[owner]) < per_replica:
            chosen[owner].append(name)
        index += 1
    return [name for pair in zip(chosen["r0"], chosen["r1"]) for name in pair]


def _register_workload(client, names):
    for seed, name in enumerate(names):
        graph = generators.erdos_renyi(10, 0.4, seed=seed)
        client.register(name, edges=sorted(graph.edges()))


def _solve(client, name):
    client.solve(
        name, k=2, q=4, solver="parallel", options=SOLVE_OPTIONS,
        include_results=False,
    )


def _run_workload(router_url, names, requests, on_request=None):
    """Fan ``requests`` solves over the router; returns (elapsed, failures)."""
    specs = [names[i % len(names)] for i in range(requests)]
    failures = []

    def one(index_name):
        index, name = index_name
        if on_request is not None:
            on_request(index)
        client = ServiceClient(router_url, timeout=120.0)
        try:
            _solve(client, name)
        except Exception as exc:  # noqa: BLE001 - any loss fails the gate
            failures.append((name, repr(exc)))
        finally:
            client.close()

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        list(pool.map(one, enumerate(specs)))
    return time.perf_counter() - started, failures


def _best_of_two(router_url, names, requests):
    """Two measured passes, fastest elapsed wins (all failures count).

    Single-core CI hosts schedule noisily; one pass can lose 20%+ to an
    unlucky stall.  Throughput gates compare best-observed capacity.
    """
    first_elapsed, first_failures = _run_workload(router_url, names, requests)
    second_elapsed, second_failures = _run_workload(router_url, names, requests)
    return min(first_elapsed, second_elapsed), first_failures + second_failures


def _boot(replicas, cache_entries, peer_warm, fault=None):
    args = ["--workers", "2", "--cache-entries", str(cache_entries)]
    if fault:
        args += ["--fault", fault]
    router = start_cluster(
        replicas=replicas,
        replica_args=args,
        peer_warm=peer_warm,
        boot_timeout=60.0,
    )
    client = ServiceClient(router.url, timeout=120.0)
    client.wait_ready(timeout=30.0)
    return router, client


def test_bench_cluster_scaleout_warm_and_failover(benchmark, scale):
    requests = 32 if scale == "full" else 16
    names = _shard_balanced_names(per_replica=3)

    def run():
        # ---- Gate (a): two replicas vs one, cache disabled ------------- #
        single, single_client = _boot(
            1, cache_entries=0, peer_warm=False, fault=SEED_DELAY
        )
        try:
            _register_workload(single_client, names)
            _run_workload(single.url, names, len(names))  # prep-warm pass
            single_elapsed, single_failures = _best_of_two(
                single.url, names, requests
            )
        finally:
            single.drain()

        duo, duo_client = _boot(
            2, cache_entries=0, peer_warm=False, fault=SEED_DELAY
        )
        try:
            _register_workload(duo_client, names)
            _run_workload(duo.url, names, len(names))
            duo_elapsed, duo_failures = _best_of_two(duo.url, names, requests)

            # ---- Gate (c): SIGKILL one replica mid-workload ------------ #
            victim = duo.replica_set.get(duo.ring.lookup(names[0]))
            kill_at = requests // 3
            killed = []

            def on_request(index):
                if index == kill_at and not killed:
                    killed.append(victim.pid)
                    os.kill(victim.pid, signal.SIGKILL)

            _, kill_failures = _run_workload(
                duo.url, names, requests, on_request=on_request
            )
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if duo.replica_set.restarts_total >= GATE_RESTARTS:
                    break
                time.sleep(0.1)
            restarts = duo.replica_set.restarts_total
            prometheus = duo_client.metrics(fmt="prometheus")
            restarts_line = next(
                line for line in prometheus.splitlines()
                if line.startswith("kplex_cluster_replica_restarts_total ")
            )
        finally:
            duo.drain()

        # ---- Gate (b): peer-warm broadcast hits on the backup ---------- #
        warm, warm_client = _boot(2, cache_entries=256, peer_warm=True)
        try:
            _register_workload(warm_client, names)
            target = names[0]
            warm_client.solve(target, k=2, q=4, include_results=False)
            assert warm_client.last_cache == "miss"
            backup_id = warm.ring.lookup_n(target, 2)[1]
            backup = ServiceClient(warm.replica_set.get(backup_id).url)
            warmed = False
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                backup.solve(target, k=2, q=4, include_results=False)
                if backup.last_cache == "hit":
                    warmed = True
                    break
                time.sleep(0.05)
            backup.close()
        finally:
            warm.drain()

        single_rps = requests / single_elapsed
        duo_rps = requests / duo_elapsed
        return {
            "requests": requests,
            "graphs": len(names),
            "single_rps": round(single_rps, 2),
            "duo_rps": round(duo_rps, 2),
            "scaleout": round(duo_rps / single_rps, 2),
            "lost_baseline": len(single_failures) + len(duo_failures),
            "lost_during_kill": len(kill_failures),
            "replica_restarts": restarts,
            "restarts_metric": int(float(restarts_line.split()[-1])),
            "backup_warm_hit": warmed,
        }

    row = run_once(benchmark, run)
    print()
    print(render_table([row], title="Cluster serving (2 replicas vs 1, kill mid-workload)"))

    assert row["lost_baseline"] == 0, "throughput workloads must not drop requests"
    assert row["scaleout"] >= GATE_SCALEOUT, (
        f"2-replica cluster only {row['scaleout']}x a single replica "
        f"(gate {GATE_SCALEOUT}x)"
    )
    assert row["backup_warm_hit"], (
        "peer-warm broadcast never became a cache hit on the backup replica"
    )
    assert row["lost_during_kill"] == 0, (
        f"{row['lost_during_kill']} requests lost while a replica was down"
    )
    assert row["replica_restarts"] >= GATE_RESTARTS
    assert row["restarts_metric"] >= GATE_RESTARTS, (
        "kplex_cluster_replica_restarts_total did not record the restart"
    )
