"""Async job streaming — time-to-first-result vs the synchronous path.

The point of ``/v1/jobs`` + chunked NDJSON streaming is latency to the
*first* result: a synchronous ``POST /v1/solve`` client sees nothing until
the full enumeration finishes and the complete JSON body arrives, while a
streaming consumer receives k-plexes as the solver emits them.

This bench boots a real :class:`KPlexHTTPServer` with both service-side
caches disabled (so every run pays true search cost and the comparison is
between transports, not cache states), runs the jazz ``k=2, q=4`` workload
(3455 maximal k-plexes, ~0.3s of enumeration) both ways, and gates:

* **>= 5x**: median time-to-first-result through a streamed job is at
  least 5x lower than through the synchronous endpoint;
* **bit-completeness**: the streamed record set matches the synchronous
  response exactly.
"""

import statistics
import time

from repro.analysis.reporting import render_table
from repro.server import ServiceClient, start_server
from repro.service import KPlexService, ServiceConfig

from _bench_utils import run_once

GATE_TTFR_SPEEDUP = 5.0
ROUNDS = 5
DATASET = "jazz"
K, Q = 2, 4


def _boot():
    service = KPlexService(
        config=ServiceConfig(
            max_workers=2,
            result_cache_entries=0,
            seed_cache_entries=0,
        )
    )
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.wait_ready()
    client.register(DATASET, dataset=DATASET)
    return server, client


def _sync_first_result_seconds(client):
    started = time.perf_counter()
    response = client.solve(DATASET, k=K, q=Q)
    elapsed = time.perf_counter() - started
    return elapsed, response["kplexes"]


def _stream_first_result_seconds(client):
    started = time.perf_counter()
    record = client.submit_job(DATASET, k=K, q=Q, result_buffer=10_000)
    first = None
    streamed = []
    for item in client.iter_job_results(record["id"]):
        if "kplex" in item:
            if first is None:
                first = time.perf_counter() - started
            streamed.append(item)
    assert first is not None, "job stream produced no results"
    return first, streamed


def test_bench_job_stream_time_to_first_result(benchmark):
    def run():
        server, client = _boot()
        try:
            sync_seconds, streamed = [], None
            sync_results = None
            for _ in range(ROUNDS):
                elapsed, sync_results = _sync_first_result_seconds(client)
                sync_seconds.append(elapsed)
            stream_seconds = []
            for _ in range(ROUNDS):
                first, streamed = _stream_first_result_seconds(client)
                stream_seconds.append(first)
        finally:
            server.drain()

        sync_set = sorted(tuple(sorted(labels)) for labels in sync_results)
        stream_set = sorted(tuple(sorted(r["kplex"])) for r in streamed)
        return {
            "dataset": f"{DATASET} k={K} q={Q}",
            "results": len(stream_set),
            "sync_first_ms": round(statistics.median(sync_seconds) * 1e3, 3),
            "stream_first_ms": round(statistics.median(stream_seconds) * 1e3, 3),
            "ttfr_speedup": round(
                statistics.median(sync_seconds) / statistics.median(stream_seconds), 2
            ),
            "bit_identical": sync_set == stream_set,
        }

    row = run_once(benchmark, run)
    print()
    print(render_table([row], title="Job streaming: time to first result over HTTP"))

    assert row["bit_identical"], "streamed results differ from the synchronous path"
    assert row["ttfr_speedup"] >= GATE_TTFR_SPEEDUP, (
        f"streaming only reached the first result {row['ttfr_speedup']}x sooner "
        f"than sync (gate {GATE_TTFR_SPEEDUP}x)"
    )
