"""Pivot selection (Algorithm 3, lines 7–10 and 15–16).

The paper selects as pivot a vertex of minimum degree inside ``G[P ∪ C]``;
ties are broken towards the vertex with the most non-neighbours in ``P``
(closest to saturation), because saturated vertices in ``P`` force every
future candidate to be adjacent to them and therefore shrink the candidate
set the fastest.  When the chosen pivot already belongs to ``P`` the search
re-picks, with the same rules, a pivot among the non-neighbours of the old
pivot inside ``C`` — that candidate vertex is the one actually branched on.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..graph.bitset import iter_bits
from ..graph.dense import DenseSubgraph


def select_pivot(
    subgraph: DenseSubgraph, p_mask: int, c_mask: int
) -> Tuple[int, bool, int]:
    """Select the pivot from ``P ∪ C`` following Algorithm 3 lines 7–10.

    Returns ``(pivot, pivot_in_p, degree_in_pc)`` where ``degree_in_pc`` is
    the pivot's degree inside ``G[P ∪ C]`` (needed for the early "``P ∪ C`` is
    already a k-plex" test on line 11).  Ties on both criteria are broken by
    the smallest local index so the search is deterministic.
    """
    adjacency = subgraph.adjacency
    pc_mask = p_mask | c_mask
    p_size = p_mask.bit_count()

    best_vertex = -1
    best_degree = None
    best_non_neighbors = -1
    best_in_p = False
    for vertex in iter_bits(pc_mask):
        degree = (adjacency[vertex] & pc_mask).bit_count()
        non_neighbors = p_size - (adjacency[vertex] & p_mask).bit_count()
        in_p = (p_mask >> vertex) & 1 == 1
        if best_degree is None or degree < best_degree:
            better = True
        elif degree == best_degree:
            if non_neighbors > best_non_neighbors:
                better = True
            elif non_neighbors == best_non_neighbors:
                # Prefer a pivot inside P (line 9 of Algorithm 3).
                better = in_p and not best_in_p
            else:
                better = False
        else:
            better = False
        if better:
            best_vertex = vertex
            best_degree = degree
            best_non_neighbors = non_neighbors
            best_in_p = in_p
    return best_vertex, best_in_p, best_degree if best_degree is not None else 0


def repick_pivot_from_candidates(
    subgraph: DenseSubgraph, p_mask: int, c_mask: int, old_pivot: int
) -> Optional[int]:
    """Re-pick the pivot among ``\\bar N_C(old_pivot)`` (Algorithm 3 line 16).

    The candidates considered are the non-neighbours of ``old_pivot`` inside
    ``C``; the same minimum-degree / closest-to-saturation rules apply.
    Returns ``None`` when no such candidate exists (which cannot happen on
    the paths Algorithm 3 takes, but is handled defensively).
    """
    adjacency = subgraph.adjacency
    pool = c_mask & ~adjacency[old_pivot] & ~(1 << old_pivot)
    if pool == 0:
        return None
    pc_mask = p_mask | c_mask
    p_size = p_mask.bit_count()
    best_vertex = None
    best_key = None
    for vertex in iter_bits(pool):
        degree = (adjacency[vertex] & pc_mask).bit_count()
        non_neighbors = p_size - (adjacency[vertex] & p_mask).bit_count()
        key = (degree, -non_neighbors, vertex)
        if best_key is None or key < best_key:
            best_key = key
            best_vertex = vertex
    return best_vertex
