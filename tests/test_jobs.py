"""Tests for the async job subsystem (repro.jobs): records, log, manager."""

import threading
import time

import pytest

from repro.api import EnumerationRequest
from repro.errors import (
    JobNotFoundError,
    JobQueueFullError,
    JobResultsTruncatedError,
    JobStateError,
    ParameterError,
    ServiceClosedError,
)
from repro.graph import Graph, generators
from repro.jobs import (
    JOB_CANCELLED,
    JOB_EXPIRED,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    JOB_SUCCEEDED,
    READ_END,
    READ_ITEM,
    READ_TIMEOUT,
    Job,
    JobManager,
    JobManagerConfig,
    ResultLog,
)
from repro.service import KPlexService, ServiceConfig

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]


def make_manager(**config_kwargs) -> JobManager:
    service = KPlexService(config=ServiceConfig(max_workers=2))
    service.catalog.register("toy", EDGES)
    service.catalog.register("busy", generators.gnm_random(60, 400, seed=5))
    return JobManager(service, JobManagerConfig(**config_kwargs))


def toy_request() -> EnumerationRequest:
    return EnumerationRequest(graph=Graph.from_edges(EDGES), k=2, q=3)


# --------------------------------------------------------------------------- #
# ResultLog
# --------------------------------------------------------------------------- #
def test_result_log_drops_oldest_without_readers():
    log = ResultLog(limit=4)
    for i in range(10):
        assert log.append(i)
    assert log.buffered == 4 and log.dropped == 6
    first, entries, closed = log.snapshot()
    assert first == 6 and entries == [6, 7, 8, 9] and not closed


def test_result_log_reader_sees_everything_in_order():
    log = ResultLog(limit=None)
    for i in range(5):
        log.append(i)
    log.close()
    reader = log.attach(0)
    seen = []
    while True:
        kind, index, item = log.read(reader)
        if kind == READ_END:
            break
        seen.append((index, item))
    assert seen == [(i, i) for i in range(5)]


def test_result_log_read_timeout_reports_heartbeat_opportunity():
    log = ResultLog(limit=4)
    reader = log.attach(0)
    kind, index, item = log.read(reader, timeout=0.01)
    assert (kind, index, item) == (READ_TIMEOUT, None, None)
    log.append("x")
    assert log.read(reader, timeout=0.5) == (READ_ITEM, 0, "x")


def test_result_log_backpressure_blocks_producer_for_lagging_reader():
    log = ResultLog(limit=3)
    reader = log.attach(0)
    produced = []

    def producer():
        for i in range(10):
            log.append(i, poll_seconds=0.005)
            produced.append(i)

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.05)
    # The buffer is full and the reader still needs entry 0: the producer
    # must be paused with nothing dropped.
    assert log.buffered == 3 and log.dropped == 0
    assert len(produced) == 3
    seen = []
    while len(seen) < 10:
        kind, index, item = log.read(reader, timeout=1.0)
        assert kind == READ_ITEM
        seen.append(item)
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert seen == list(range(10)) and log.dropped == 0


def test_result_log_detach_unblocks_producer():
    log = ResultLog(limit=2)
    reader = log.attach(0)
    done = threading.Event()

    def producer():
        for i in range(6):
            log.append(i, poll_seconds=0.005)
        done.set()

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.03)
    assert not done.is_set()  # blocked on the lagging reader
    log.detach(reader)
    assert done.wait(timeout=5)
    thread.join(timeout=5)
    assert log.dropped == 4  # ring-dropped once nobody needed the entries


def test_result_log_truncated_cursor_raises():
    log = ResultLog(limit=2)
    for i in range(5):
        log.append(i)
    reader = log.attach(0)
    with pytest.raises(JobResultsTruncatedError):
        log.read(reader, timeout=0.1)


def test_result_log_append_honours_abort_and_close():
    log = ResultLog(limit=2)
    assert not log.append("x", should_abort=lambda: True)
    log.close()
    assert not log.append("y")


# --------------------------------------------------------------------------- #
# Job state machine
# --------------------------------------------------------------------------- #
def test_job_lifecycle_success_path():
    job = Job("j1", toy_request(), {"k": 2, "q": 3})
    assert job.state == JOB_PENDING and not job.terminal
    assert job.try_start()
    assert job.state == JOB_RUNNING and job.started_at is not None
    job.note_result()
    job.finish(JOB_SUCCEEDED, termination="completed", elapsed_seconds=0.1)
    assert job.terminal and job.finished_at is not None
    record = job.describe()
    assert record["state"] == JOB_SUCCEEDED
    assert record["progress"]["results"] == 1
    assert record["progress"]["first_result_seconds"] is not None
    final = job.final_record()
    assert final["done"] is True and final["count"] == 1


def test_job_invalid_transition_raises():
    job = Job("j1", toy_request(), {})
    with pytest.raises(JobStateError):
        job.finish(JOB_SUCCEEDED)


def test_job_cancel_before_start_wins():
    job = Job("j1", toy_request(), {})
    assert job.cancel()
    assert job.state == JOB_CANCELLED
    assert not job.try_start()  # the runner observes the loss and skips it
    assert not job.cancel()  # terminal: nothing left to cancel


def test_job_cancel_while_running_defers_to_runner():
    job = Job("j1", toy_request(), {})
    assert job.try_start()
    assert job.cancel()
    assert job.state == JOB_RUNNING  # the runner finalises the state
    assert job.cancel_token.cancelled
    job.finish(JOB_CANCELLED, termination="cancelled")
    assert job.state == JOB_CANCELLED


def test_job_expire_clears_results():
    job = Job("j1", toy_request(), {}, result_buffer=16)
    job.try_start()
    job.results.append({"index": 0})
    job.finish(JOB_SUCCEEDED, termination="completed")
    assert job.expire()
    assert job.state == JOB_EXPIRED and job.results.buffered == 0
    assert not job.expire()  # already expired


# --------------------------------------------------------------------------- #
# JobManager
# --------------------------------------------------------------------------- #
def test_manager_submit_wait_and_results_roundtrip():
    manager = make_manager()
    try:
        job = manager.submit("toy", k=2, q=3)
        assert job.state in (JOB_PENDING, JOB_RUNNING, JOB_SUCCEEDED)
        done = manager.wait(job.id, timeout=10)
        assert done.state == JOB_SUCCEEDED and done.termination == "completed"
        entries = [entry for _index, entry in done.iter_results()]
        assert [sorted(e["kplex"]) for e in entries] == [[0, 1, 2, 3]]
        assert entries[0]["size"] == 4
        assert done.statistics is not None and done.statistics["outputs"] == 1
        assert manager.get(job.id) is job
    finally:
        manager.close()


def test_manager_accepts_prebuilt_request_but_not_both():
    manager = make_manager()
    try:
        job = manager.submit(toy_request())
        assert manager.wait(job.id, timeout=10).state == JOB_SUCCEEDED
        with pytest.raises(ParameterError):
            manager.submit(toy_request(), k=2)
    finally:
        manager.close()


def test_manager_queue_budget_rejects_beyond_capacity():
    manager = make_manager(max_concurrent=1, max_queue_depth=1)
    try:
        jobs = [manager.submit("busy", k=2, q=4) for _ in range(2)]
        with pytest.raises(JobQueueFullError):
            manager.submit("busy", k=2, q=4)
        assert manager.metrics()["rejected"] == 1
        for job in jobs:
            manager.cancel(job.id)
            manager.wait(job.id, timeout=10)
    finally:
        manager.close()


def test_manager_cancel_running_job_stops_solver_progress():
    manager = make_manager(max_concurrent=1)
    try:
        job = manager.submit("busy", k=2, q=4)
        deadline = time.monotonic() + 5
        while job.result_count == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        assert job.result_count > 0, "job never produced a result"
        assert manager.cancel(job.id)
        done = manager.wait(job.id, timeout=10)
        assert done.state == JOB_CANCELLED and done.termination == "cancelled"
        frozen = done.result_count
        time.sleep(0.1)
        assert done.result_count == frozen  # solver work actually stopped
        final = done.final_record()
        assert final["state"] == JOB_CANCELLED and final["done"] is True
    finally:
        manager.close()


def test_manager_failed_job_captures_error():
    manager = make_manager()
    try:
        # q=2 violates the q >= 2k - 1 bound, failing inside the runner.
        job = manager.submit("toy", k=2, q=2)
        done = manager.wait(job.id, timeout=10)
        assert done.state == JOB_FAILED
        assert "ParameterError" in done.error
        assert manager.metrics()["failed"] == 1
    finally:
        manager.close()


def test_manager_unknown_job_raises():
    manager = make_manager()
    try:
        with pytest.raises(JobNotFoundError):
            manager.get("nope")
        with pytest.raises(JobNotFoundError):
            manager.cancel("nope")
    finally:
        manager.close()


def test_manager_list_filters_by_state_and_validates():
    manager = make_manager()
    try:
        job = manager.submit("toy", k=2, q=3)
        manager.wait(job.id, timeout=10)
        assert [j.id for j in manager.jobs(states=[JOB_SUCCEEDED])] == [job.id]
        assert manager.jobs(states=[JOB_FAILED]) == []
        with pytest.raises(ParameterError):
            manager.jobs(states=["bogus"])
    finally:
        manager.close()


def test_manager_ttl_expires_terminal_jobs():
    clock = [0.0]
    service = KPlexService(config=ServiceConfig(max_workers=2))
    service.catalog.register("toy", EDGES)
    manager = JobManager(
        service,
        JobManagerConfig(ttl_seconds=10.0),
        clock=lambda: clock[0],
    )
    try:
        job = manager.submit("toy", k=2, q=3)
        manager.wait(job.id, timeout=10)
        assert job.state == JOB_SUCCEEDED
        clock[0] += 5.0
        assert manager.gc() == 0 and job.state == JOB_SUCCEEDED
        clock[0] += 6.0
        assert manager.gc() == 1
        assert job.state == JOB_EXPIRED and job.results.buffered == 0
        # The record itself is still pollable after expiry.
        assert manager.get(job.id).describe()["state"] == JOB_EXPIRED
    finally:
        manager.close()


def test_manager_retention_cap_evicts_oldest_terminal_jobs():
    manager = make_manager(max_concurrent=2, max_queue_depth=2, max_jobs=4)
    try:
        ids = []
        for _ in range(6):
            job = manager.submit("toy", k=2, q=3)
            manager.wait(job.id, timeout=10)
            ids.append(job.id)
        assert len(manager.jobs()) <= 4
        assert manager.metrics()["evicted"] >= 2
        with pytest.raises(JobNotFoundError):
            manager.get(ids[0])  # the oldest record was evicted
        manager.get(ids[-1])  # the newest survives
    finally:
        manager.close()


def test_manager_metrics_shape_and_ttfr_percentiles():
    manager = make_manager()
    try:
        for _ in range(3):
            job = manager.submit("toy", k=2, q=3)
            manager.wait(job.id, timeout=10)
        metrics = manager.metrics()
        assert metrics["submitted"] == 3 and metrics["succeeded"] == 3
        assert metrics["by_state"][JOB_SUCCEEDED] == 3
        assert metrics["queue_depth"] == 0 and metrics["running"] == 0
        assert metrics["ttfr_samples"] == 3
        assert metrics["time_to_first_result_p50_seconds"] > 0
        assert (
            metrics["time_to_first_result_p95_seconds"]
            >= metrics["time_to_first_result_p50_seconds"]
        )
    finally:
        manager.close()


def test_manager_close_wait_lets_jobs_finish():
    manager = make_manager(max_concurrent=1)
    job = manager.submit("busy", k=2, q=4)
    manager.close(policy="wait")
    assert job.state == JOB_SUCCEEDED
    with pytest.raises(ServiceClosedError):
        manager.submit("toy", k=2, q=3)


def test_manager_close_cancel_stops_jobs():
    manager = make_manager(max_concurrent=1, max_queue_depth=4)
    jobs = [manager.submit("busy", k=2, q=4) for _ in range(3)]
    manager.close(policy="cancel")
    assert all(job.terminal for job in jobs)
    assert any(job.state == JOB_CANCELLED for job in jobs)
    with pytest.raises(ParameterError):
        manager.close(policy="bogus")


def test_manager_close_flag_is_guarded_by_pool_lock():
    """Regression: ``close()`` used to set ``_closed`` without a lock.

    ``_ensure_pool`` checks the flag under ``_pool_lock`` before creating
    a worker pool; the write must take the same lock so the closed-check
    and pool creation can never interleave with shutdown.  Closing from
    many threads while submitters race must end with every submission
    either completed or rejected, and no pool left behind.
    """
    import threading

    manager = make_manager(max_concurrent=2, max_queue_depth=8)
    outcomes = []
    outcomes_lock = threading.Lock()
    start = threading.Barrier(4)

    def submitter():
        start.wait()
        try:
            job = manager.submit("toy", k=2, q=3)
            with outcomes_lock:
                outcomes.append(("submitted", job))
        except ServiceClosedError:
            with outcomes_lock:
                outcomes.append(("rejected", None))

    def closer():
        start.wait()
        manager.close(policy="wait")

    threads = [threading.Thread(target=submitter) for _ in range(3)]
    threads.append(threading.Thread(target=closer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert manager.closed
    assert manager._pool is None
    assert len(outcomes) == 3
    for kind, job in outcomes:
        if kind == "submitted":
            manager.wait(job.id, timeout=30)
            assert job.terminal


def test_manager_results_identical_to_sync_service_run():
    manager = make_manager()
    try:
        job = manager.submit("busy", k=2, q=4, result_buffer=10_000)
        done = manager.wait(job.id, timeout=30)
        assert done.state == JOB_SUCCEEDED
        streamed = sorted(
            tuple(sorted(entry["kplex"])) for _i, entry in done.iter_results()
        )
        response = manager.service.solve("busy", k=2, q=4)
        direct = sorted(tuple(sorted(p.labels)) for p in response.kplexes)
        assert streamed == direct
    finally:
        manager.close()


def test_manager_config_validation():
    with pytest.raises(ParameterError):
        JobManagerConfig(max_concurrent=0)
    with pytest.raises(ParameterError):
        JobManagerConfig(max_queue_depth=-1)
    with pytest.raises(ParameterError):
        JobManagerConfig(result_buffer=0)
    with pytest.raises(ParameterError):
        JobManagerConfig(ttl_seconds=-1)
    with pytest.raises(ParameterError):
        JobManagerConfig(max_jobs=1, max_concurrent=2, max_queue_depth=2)
