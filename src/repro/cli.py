"""Command-line interface.

``kplex-enum`` exposes the main capabilities of the library without writing
any Python; every mining command is routed through the
:class:`repro.api.KPlexEngine` facade:

* ``kplex-enum enumerate GRAPH -k 2 -q 10`` — enumerate maximal k-plexes of
  an edge-list / DIMACS / METIS file and print (or save) the results;
* ``kplex-enum query GRAPH V... -k 2 -q 10`` — community search anchored at
  the given query vertices;
* ``kplex-enum solvers`` — list the registered solver backends;
* ``kplex-enum datasets`` — list the bundled surrogate datasets (Table 2);
* ``kplex-enum experiment table3`` — run one of the paper's experiments and
  print the reproduced table or figure series;
* ``kplex-enum serve WORKLOAD.jsonl`` — replay a JSONL request workload
  through the caching :class:`repro.service.KPlexService` (graph catalog,
  worker pool, cross-request result cache) and emit JSONL responses plus a
  metrics snapshot;
* ``kplex-enum serve-http`` — run the HTTP/JSON front-end
  (:mod:`repro.server`): ``POST /v1/solve``, the async ``/v1/jobs``
  lifecycle, graph registration, metrics (JSON or Prometheus), warm-state
  snapshots and graceful SIGTERM drain;
* ``kplex-enum serve-cluster`` — run N supervised ``serve-http`` replicas
  behind a consistent-hash router (:mod:`repro.cluster`): sharded solves
  with ring-order failover, fanned-out graph registration, merged cluster
  metrics, and cross-replica cache warming;
* ``kplex-enum jobs submit|status|list|cancel|stream`` — drive the async
  job API of a running server from the shell (``stream`` prints the
  chunked NDJSON result stream line by line as the enumeration runs).

Batch and HTTP modes share one warm-state snapshot format
(:mod:`repro.server.persistence`): a snapshot written by either can warm
the other via ``--snapshot`` / ``--warm-start``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Optional, Sequence

from .analysis.export import write_results
from .analysis.reporting import render_series, render_table
from .api import EnumerationRequest, KPlexEngine, solver_names, solver_table
from .core.config import NAMED_VARIANTS
from .datasets import all_datasets, load_dataset
from .errors import GraphError, ReproError
from .experiments import figures as figure_drivers
from .experiments import tables as table_drivers
from .graph.io import load_graph

_EXPERIMENTS = {
    "table2": lambda scale: render_table(table_drivers.table2_datasets(scale), title="Table 2"),
    "table3": lambda scale: render_table(table_drivers.table3_sequential(scale), title="Table 3"),
    "table4": lambda scale: render_table(table_drivers.table4_parallel(scale), title="Table 4"),
    "table5": lambda scale: render_table(
        table_drivers.table5_upper_bound_ablation(scale), title="Table 5"
    ),
    "table6": lambda scale: render_table(
        table_drivers.table6_pruning_ablation(scale), title="Table 6"
    ),
    "table7": lambda scale: render_table(table_drivers.table7_memory(scale), title="Table 7"),
    "figure7": lambda scale: "\n\n".join(
        render_series(series, x_label="q", title=f"Figure 7 — {name}")
        for name, series in figure_drivers.figure7_vary_q(scale).items()
    ),
    "figure8": lambda scale: render_series(
        figure_drivers.figure8_speedup(scale), x_label="workers", title="Figure 8"
    ),
    "figure9": lambda scale: "\n\n".join(
        render_series(series, x_label="q", title=f"Figure 9 — {name}")
        for name, series in figure_drivers.figure9_basic_vs_ours(scale).items()
    ),
    "figure13": lambda scale: render_series(
        figure_drivers.figure13_timeout(scale), x_label="timeout", title="Figure 13"
    ),
}


def _add_mining_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that dispatches an EnumerationRequest."""
    parser.add_argument("-k", type=int, required=True, help="k-plex parameter")
    parser.add_argument("-q", type=int, required=True, help="minimum k-plex size")
    parser.add_argument(
        "--solver",
        default="ours",
        choices=sorted(solver_names()),
        help="solver backend from the registry (default: ours)",
    )
    parser.add_argument(
        "--variant",
        default=None,
        choices=sorted(NAMED_VARIANTS),
        help="algorithm configuration variant for configurable solvers",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the run after this wall-clock budget",
    )
    parser.add_argument(
        "--max-results",
        type=int,
        default=None,
        metavar="N",
        help="stop after N results",
    )
    parser.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"]
    )
    _add_csr_backend_argument(parser)


def _add_csr_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--csr-backend",
        default="auto",
        choices=["auto", "array", "numpy"],
        help=(
            "CSR graph-kernel backend: vectorised numpy, the pure-Python "
            "array fallback, or auto (numpy when importable; default)"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kplex-enum",
        description="Enumerate large maximal k-plexes (EDBT 2025 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="enumerate maximal k-plexes of a graph file or bundled dataset"
    )
    enumerate_parser.add_argument("graph", help="path to a graph file, or dataset:<name>")
    _add_mining_arguments(enumerate_parser)
    enumerate_parser.add_argument("--json", action="store_true", help="print results as JSON")
    enumerate_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of k-plexes to print (0 = all)"
    )
    enumerate_parser.add_argument("--stats", action="store_true", help="print search statistics")
    enumerate_parser.add_argument(
        "--output",
        default=None,
        help="write the results to a file (.txt, .csv or .jsonl chosen by extension)",
    )

    query_parser = subparsers.add_parser(
        "query", help="enumerate maximal k-plexes containing the given query vertices"
    )
    query_parser.add_argument("graph", help="path to a graph file, or dataset:<name>")
    query_parser.add_argument("vertices", nargs="+", help="query vertex labels")
    _add_mining_arguments(query_parser)

    subparsers.add_parser("solvers", help="list the registered solver backends")
    subparsers.add_parser("datasets", help="list the bundled surrogate datasets")

    experiment_parser = subparsers.add_parser(
        "experiment", help="reproduce one of the paper's tables or figures"
    )
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment_parser.add_argument(
        "--scale", default="quick", choices=["quick", "full"], help="workload scale"
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="replay a JSONL workload through the caching enumeration service",
        description=(
            "Each input line is one request: "
            '{"graph": NAME, "k": K, "q": Q[, "solver": S, "variant": V, '
            '"timeout": SEC, "max_results": N, "query": [labels...]]}. '
            "Graphs are resolved against the service catalog: use --register "
            "to name files or datasets up front; 'dataset:<name>' specs are "
            "auto-registered on first use. Responses are emitted as JSONL in "
            "request order, followed by a service-metrics snapshot."
        ),
    )
    serve_parser.add_argument(
        "workload", help="JSONL request file ('-' reads standard input)"
    )
    serve_parser.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="register a catalog graph (SPEC: file path or dataset:<name>); repeatable",
    )
    serve_parser.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"],
        help="file format for --register file specs",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="service worker threads (default: 4)"
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=32,
        help="admitted requests allowed to wait beyond the workers (default: 32)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-request wall-clock budget",
    )
    serve_parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache entry budget (0 disables the cache)",
    )
    serve_parser.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024,
        help="result-cache byte budget (default: 64 MiB)",
    )
    serve_parser.add_argument(
        "--core-budget", type=int, default=None, metavar="LEVELS",
        help="per-graph cap on retained prepared core(level) subgraphs",
    )
    _add_csr_backend_argument(serve_parser)
    serve_parser.add_argument(
        "--no-results", action="store_true",
        help="omit the k-plex vertex lists from the response lines",
    )
    serve_parser.add_argument(
        "--output", default=None, help="write response lines to a file instead of stdout"
    )
    serve_parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="also write the final metrics snapshot to FILE as JSON",
    )
    serve_parser.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help="write a warm-state snapshot to FILE after the workload",
    )
    serve_parser.add_argument(
        "--snapshot-max-specs", type=int, default=256, metavar="N",
        help="hot request specs kept in the snapshot, best-N by hit count "
             "with age decay (0 keeps all; default: 256)",
    )
    serve_parser.add_argument(
        "--warm-start", action="store_true",
        help="replay the --snapshot file (if present) before the workload",
    )

    http_parser = subparsers.add_parser(
        "serve-http",
        help="run the HTTP/JSON enumeration server",
        description=(
            "Serve POST /v1/solve, POST/GET /v1/graphs, GET /v1/metrics "
            "(add ?format=prometheus) and GET /healthz over a caching "
            "KPlexService until SIGTERM/SIGINT, then drain gracefully. "
            "--snapshot enables warm-state persistence (periodic with "
            "--snapshot-interval, always at drain and via POST /v1/snapshot); "
            "--warm-start replays the snapshot on boot so the restarted "
            "server does not begin cold."
        ),
    )
    http_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    http_parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port; 0 picks an ephemeral port (default: 8080)",
    )
    http_parser.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="register a catalog graph at boot (SPEC: file path or dataset:<name>)",
    )
    http_parser.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"],
        help="file format for --register file specs",
    )
    http_parser.add_argument(
        "--workers", type=int, default=4, help="service worker threads (default: 4)"
    )
    http_parser.add_argument(
        "--queue-depth", type=int, default=32,
        help="admitted requests allowed to wait beyond the workers (default: 32)",
    )
    http_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-request wall-clock budget",
    )
    http_parser.add_argument(
        "--request-deadline", type=float, default=None, metavar="SECONDS",
        help="server-side hard deadline per request (answers 504 beyond it)",
    )
    http_parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache entry budget (0 disables the cache)",
    )
    http_parser.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024,
        help="result-cache byte budget (default: 64 MiB)",
    )
    http_parser.add_argument(
        "--core-budget", type=int, default=None, metavar="LEVELS",
        help="per-graph cap on retained prepared core(level) subgraphs",
    )
    _add_csr_backend_argument(http_parser)
    http_parser.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help="warm-state snapshot file (written at drain and on POST /v1/snapshot)",
    )
    http_parser.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SECONDS",
        help="also write the snapshot periodically every SECONDS",
    )
    http_parser.add_argument(
        "--snapshot-max-specs", type=int, default=256, metavar="N",
        help="hot request specs kept per snapshot, best-N by hit count "
             "with age decay (0 keeps all; default: 256)",
    )
    http_parser.add_argument(
        "--replica-id", default=None, metavar="ID",
        help="stamp every response with X-KPlex-Replica: ID (set by "
             "serve-cluster so clients can see which replica answered)",
    )
    http_parser.add_argument(
        "--warm-start", action="store_true",
        help="replay the --snapshot file (if present) before accepting requests",
    )
    http_parser.add_argument(
        "--access-log", action="store_true",
        help="print one access-log line per request to stderr",
    )
    http_parser.add_argument(
        "--access-log-format", default="plain", choices=["plain", "json"],
        help="access-log line shape: classic plain text or one JSON object "
             "per request (default: plain)",
    )
    http_parser.add_argument(
        "--slow-request-threshold", type=float, default=None, metavar="SECONDS",
        help="emit a slow_request WARNING event carrying the request's full "
             "span tree when it runs longer than SECONDS",
    )
    http_parser.add_argument(
        "--trace-capacity", type=int, default=256, metavar="N",
        help="completed request traces kept for GET /v1/trace (default: 256)",
    )
    http_parser.add_argument(
        "--job-workers", type=int, default=2,
        help="worker threads for async /v1/jobs (default: 2, separate from --workers)",
    )
    http_parser.add_argument(
        "--job-queue", type=int, default=16,
        help="async jobs allowed to queue beyond the running ones (default: 16)",
    )
    http_parser.add_argument(
        "--job-buffer", type=int, default=4096,
        help="per-job result-buffer bound; slow stream consumers pause the "
             "producer, unconsumed jobs drop oldest-first (default: 4096)",
    )
    http_parser.add_argument(
        "--job-ttl", type=float, default=300.0,
        help="seconds a finished job's results stay fetchable (default: 300)",
    )
    http_parser.add_argument(
        "--drain-jobs", default="wait", choices=["wait", "cancel"],
        help="on SIGTERM, let live jobs finish ('wait', default) or stop "
             "them cooperatively ('cancel')",
    )
    http_parser.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive backend failures that open the circuit breaker "
             "(0 disables the breaker; default: 5)",
    )
    http_parser.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="SECONDS",
        help="seconds the open breaker sheds load before probing again "
             "(default: 5)",
    )
    http_parser.add_argument(
        "--fault", default=None, metavar="SPEC",
        help="arm the fault-injection harness (testing only), e.g. "
             "'worker_kill:1' or 'seed_delay:0.1,snapshot_torn:1'; "
             "equivalent to setting REPRO_FAULT",
    )

    cluster_parser = subparsers.add_parser(
        "serve-cluster",
        help="run a sharded multi-replica cluster behind one router",
        description=(
            "Spawn N supervised serve-http replicas on ephemeral loopback "
            "ports and front them with a consistent-hash router: solves are "
            "routed to the replica owning the request's graph (failing over "
            "in ring order), graph registration fans out to every replica, "
            "GET /v1/metrics merges every replica's counters and histograms, "
            "and a dead replica is restarted with its graph catalog replayed. "
            "SIGTERM drains the router, then every replica, and exits 0."
        ),
    )
    cluster_parser.add_argument(
        "--host", default="127.0.0.1", help="router bind address (default: 127.0.0.1)"
    )
    cluster_parser.add_argument(
        "--port", type=int, default=8080,
        help="router TCP port; 0 picks an ephemeral port (default: 8080)",
    )
    cluster_parser.add_argument(
        "--replicas", type=int, default=2, metavar="N",
        help="serve-http replica subprocesses to run (default: 2)",
    )
    cluster_parser.add_argument(
        "--virtual-nodes", type=int, default=64, metavar="N",
        help="virtual nodes per replica on the hash ring (default: 64)",
    )
    cluster_parser.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="register a catalog graph on every replica at boot "
             "(SPEC: file path or dataset:<name>); repeatable",
    )
    cluster_parser.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"],
        help="file format for --register file specs",
    )
    cluster_parser.add_argument(
        "--workers", type=int, default=4,
        help="service worker threads per replica (default: 4)",
    )
    cluster_parser.add_argument(
        "--queue-depth", type=int, default=32,
        help="per-replica admitted requests allowed to wait beyond the "
             "workers (default: 32)",
    )
    cluster_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-request wall-clock budget on each replica",
    )
    cluster_parser.add_argument(
        "--request-deadline", type=float, default=None, metavar="SECONDS",
        help="per-replica hard deadline per request (answers 504 beyond it)",
    )
    cluster_parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="per-replica result-cache entry budget (0 disables the cache)",
    )
    cluster_parser.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024,
        help="per-replica result-cache byte budget (default: 64 MiB)",
    )
    _add_csr_backend_argument(cluster_parser)
    cluster_parser.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="per-replica warm-state snapshots (DIR/<replica>.json, written "
             "at drain, replayed on restart so a respawned replica boots warm)",
    )
    cluster_parser.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SECONDS",
        help="also write replica snapshots periodically every SECONDS",
    )
    cluster_parser.add_argument(
        "--snapshot-max-specs", type=int, default=256, metavar="N",
        help="hot request specs kept per replica snapshot, best-N by hit "
             "count with age decay (0 keeps all; default: 256)",
    )
    cluster_parser.add_argument(
        "--no-peer-warm", action="store_true",
        help="disable cross-replica cache warming (by default a cache miss "
             "served by one replica is pre-executed on its ring backup)",
    )
    cluster_parser.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="total supervised restarts allowed per replica "
             "(default: unbounded)",
    )
    cluster_parser.add_argument(
        "--boot-timeout", type=float, default=30.0, metavar="SECONDS",
        help="seconds to wait for each replica's boot line and readiness "
             "(default: 30)",
    )
    cluster_parser.add_argument(
        "--proxy-timeout", type=float, default=60.0, metavar="SECONDS",
        help="router-to-replica socket timeout per proxied call (default: 60)",
    )
    cluster_parser.add_argument(
        "--access-log", action="store_true",
        help="print one router access-log line per request to stderr",
    )

    jobs_parser = subparsers.add_parser(
        "jobs",
        help="drive the async job API of a running kplex-enum serve-http server",
    )
    jobs_sub = jobs_parser.add_subparsers(dest="jobs_command", required=True)

    def _add_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url", default="http://127.0.0.1:8080",
            help="server base URL (default: http://127.0.0.1:8080)",
        )
        sub.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="retry overloaded (429/503) responses and dropped "
                 "connections up to N times with backoff, honouring the "
                 "server's Retry-After; streams resume from the last "
                 "received index (default: 0 = fail fast)",
        )

    submit_parser = jobs_sub.add_parser(
        "submit", help="POST /v1/jobs — submit an async enumeration"
    )
    _add_url(submit_parser)
    submit_parser.add_argument("graph", help="catalog graph name on the server")
    submit_parser.add_argument("-k", type=int, required=True, help="k-plex parameter")
    submit_parser.add_argument("-q", type=int, required=True, help="minimum k-plex size")
    submit_parser.add_argument("--solver", default=None, help="solver backend name")
    submit_parser.add_argument("--variant", default=None, help="algorithm variant")
    submit_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="solver wall-clock budget (enforced server-side)",
    )
    submit_parser.add_argument(
        "--max-results", type=int, default=None, metavar="N", help="stop after N results"
    )
    submit_parser.add_argument(
        "--result-buffer", type=int, default=None, metavar="N",
        help="override the server's per-job result-buffer bound",
    )
    submit_parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="override the server's retention of this job's results",
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and print the final record",
    )

    status_parser = jobs_sub.add_parser(
        "status", help="GET /v1/jobs/<id> — print one job record as JSON"
    )
    _add_url(status_parser)
    status_parser.add_argument("job_id", help="job id returned by submit")

    list_parser = jobs_sub.add_parser(
        "list", help="GET /v1/jobs — list job records"
    )
    _add_url(list_parser)
    list_parser.add_argument(
        "--state", action="append", default=[],
        choices=["pending", "running", "succeeded", "failed", "cancelled", "expired"],
        help="only list jobs in this state; repeatable",
    )
    list_parser.add_argument(
        "--json", action="store_true", help="print full records as JSON"
    )

    cancel_parser = jobs_sub.add_parser(
        "cancel", help="DELETE /v1/jobs/<id> — cancel a job cooperatively"
    )
    _add_url(cancel_parser)
    cancel_parser.add_argument("job_id", help="job id returned by submit")

    stream_parser = jobs_sub.add_parser(
        "stream",
        help="GET /v1/jobs/<id>/results?stream=1 — print NDJSON results live",
    )
    _add_url(stream_parser)
    stream_parser.add_argument("job_id", help="job id returned by submit")
    stream_parser.add_argument(
        "--start", type=int, default=0, help="first result index to read (default: 0)"
    )
    stream_parser.add_argument(
        "--heartbeats", action="store_true",
        help="also print the server's keep-alive heartbeat lines",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="fetch request traces from a running kplex-enum serve-http server",
        description=(
            "Without a request id, list the traces the server still holds "
            "(GET /v1/trace). With one, pretty-print that request's span "
            "tree (GET /v1/trace/<id>) — pass the X-Request-Id you sent, "
            "or the one the server echoed back."
        ),
    )
    trace_parser.add_argument(
        "request_id", nargs="?", default=None,
        help="request id to fetch; omit to list recent traces",
    )
    trace_parser.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="server base URL (default: http://127.0.0.1:8080)",
    )
    trace_parser.add_argument(
        "--min-ms", type=float, default=None, metavar="MS",
        help="when listing, only traces at least MS milliseconds long",
    )
    trace_parser.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="when listing, show at most N traces (default: 20)",
    )
    trace_parser.add_argument(
        "--json", action="store_true",
        help="print the raw JSON payload instead of the rendered tree",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the project's static-analysis checks",
        description=(
            "Run the repository's own AST checks (lock discipline, "
            "epoch-keyed cache keys, resource cleanup, solver determinism, "
            "exception hygiene) over the given paths. Exit 0 when clean "
            "modulo the committed baseline, 1 on new findings, 2 on usage "
            "errors."
        ),
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)
    return parser


def _load_input_graph(spec: str, fmt: str):
    if spec.startswith("dataset:"):
        return load_dataset(spec.split(":", 1)[1])
    return load_graph(spec, fmt=fmt)


def _request_from_args(args: argparse.Namespace, graph, **extra) -> EnumerationRequest:
    """Single construction point: all parameter validation happens here."""
    return EnumerationRequest(
        graph=graph,
        k=args.k,
        q=args.q,
        solver=args.solver,
        variant=args.variant,
        timeout_seconds=args.timeout,
        max_results=getattr(args, "max_results", None),
        **extra,
    )


def _apply_csr_backend(args: argparse.Namespace) -> None:
    """Install the requested CSR backend as the process default."""
    from .graph.csr import set_default_csr_backend

    set_default_csr_backend(getattr(args, "csr_backend", "auto"))


def _command_enumerate(args: argparse.Namespace) -> int:
    _apply_csr_backend(args)
    graph = _load_input_graph(args.graph, args.format)
    engine = KPlexEngine()
    response = engine.solve(_request_from_args(args, graph))
    if args.json:
        print(json.dumps(response.as_dict(), indent=2, default=str))
    else:
        print(
            f"{response.count} maximal {args.k}-plexes with at least {args.q} vertices "
            f"(solver: {response.solver}, {response.termination})"
        )
        limit = args.limit if args.limit > 0 else response.count
        for plex in response.kplexes[:limit]:
            print(f"  size={plex.size}: {list(plex.labels)}")
        if response.count > limit:
            print(f"  ... ({response.count - limit} more, use --limit 0 to print all)")
    if args.stats:
        stats = response.statistics
        print(
            f"time: elapsed={response.elapsed_seconds:.4f}s "
            f"preprocess={stats.preprocess_seconds:.4f}s "
            f"search={stats.search_seconds:.4f}s"
        )
        prepared = graph._prepared
        backend = (
            prepared.cache_info()["csr_backend"] if prepared is not None else None
        )
        if backend is None:
            from .graph.csr import default_csr_backend

            backend = default_csr_backend()
        print(f"csr backend: {backend}")
        print(stats)
    if args.output:
        fmt = write_results(response.kplexes, args.output)
        print(f"wrote {response.count} k-plexes to {args.output} ({fmt})")
    return 0


def _parse_query_labels(graph, labels):
    parsed = []
    for label in labels:
        try:
            parsed.append(graph.index_of(label))
        except GraphError:
            # CLI args arrive as strings; retry numeric labels as ints.
            try:
                parsed.append(graph.index_of(int(label)))
            except (ValueError, GraphError):
                raise GraphError(
                    f"unknown vertex label {label!r}"
                ) from None
    return parsed


def _command_query(args: argparse.Namespace) -> int:
    _apply_csr_backend(args)
    graph = _load_input_graph(args.graph, args.format)
    query = tuple(_parse_query_labels(graph, args.vertices))
    engine = KPlexEngine()
    response = engine.solve(_request_from_args(args, graph, query_vertices=query))
    print(
        f"{response.count} maximal {args.k}-plexes with at least {args.q} vertices "
        f"containing {args.vertices}"
    )
    for plex in response.kplexes:
        print(f"  size={plex.size}: {list(plex.labels)}")
    return 0


def _command_solvers(_args: argparse.Namespace) -> int:
    print(render_table(solver_table(), title="Registered solvers (repro.api)"))
    return 0


def _command_datasets(_args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "category": spec.category,
            "paper_n": spec.paper_n,
            "paper_m": spec.paper_m,
            "description": spec.description,
        }
        for spec in all_datasets()
    ]
    print(render_table(rows, title="Bundled surrogate datasets (see DESIGN.md §5)"))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    print(_EXPERIMENTS[args.name](args.scale))
    return 0


def _iter_workload_lines(path: str):
    if path == "-":
        yield from enumerate(sys.stdin, start=1)
        return
    with open(path, "r", encoding="utf-8") as handle:
        yield from enumerate(handle, start=1)


def _serve_request(service, spec: dict, fmt: str):
    """Build one EnumerationRequest from a workload JSON object."""
    from .errors import CatalogError

    if not isinstance(spec, dict):
        raise ReproError(f"workload lines must be JSON objects, got {type(spec).__name__}")
    unknown = set(spec) - {
        "graph", "k", "q", "solver", "variant", "timeout", "max_results", "query"
    }
    if unknown:
        raise ReproError(f"unknown workload keys {sorted(unknown)}")
    for required in ("graph", "k", "q"):
        if required not in spec:
            raise ReproError(f"workload line is missing the {required!r} key")
    name = spec["graph"]
    try:
        graph = service.catalog.get(name)
    except CatalogError:
        # dataset:<x> specs are self-describing; register lazily so simple
        # workloads need no --register flags at all.
        if isinstance(name, str) and name.startswith("dataset:"):
            service.catalog.register(name, name, fmt=fmt)
            graph = service.catalog.get(name)
        else:
            raise
    kwargs = {}
    if spec.get("solver") is not None:
        kwargs["solver"] = spec["solver"]
    if spec.get("variant") is not None:
        kwargs["variant"] = spec["variant"]
    if spec.get("timeout") is not None:
        kwargs["timeout_seconds"] = spec["timeout"]
    if spec.get("max_results") is not None:
        kwargs["max_results"] = spec["max_results"]
    if spec.get("query") is not None:
        kwargs["query_vertices"] = tuple(
            _parse_query_labels(graph, spec["query"])
        )
    return EnumerationRequest(graph=graph, k=spec["k"], q=spec["q"], **kwargs)


def _service_from_args(args: argparse.Namespace):
    """Build the KPlexService shared by the serve and serve-http commands."""
    from .service import KPlexService, ServiceConfig

    backend = getattr(args, "csr_backend", "auto")
    threshold = getattr(args, "breaker_threshold", 5)
    config = ServiceConfig(
        max_workers=args.workers,
        max_queue_depth=args.queue_depth,
        default_timeout_seconds=args.timeout,
        result_cache_entries=args.cache_entries,
        result_cache_bytes=args.cache_bytes,
        prepared_core_budget=args.core_budget,
        csr_backend=None if backend == "auto" else backend,
        breaker_failure_threshold=threshold if threshold > 0 else None,
        breaker_cooldown_seconds=getattr(args, "breaker_cooldown", 5.0),
    )
    service = KPlexService(config=config)
    for registration in args.register:
        name, separator, spec = registration.partition("=")
        if not separator or not name or not spec:
            service.close()
            raise ReproError(f"--register expects NAME=SPEC, got {registration!r}")
        service.catalog.register(name, spec, fmt=args.format)
    return service


def _maybe_warm_start(service, args: argparse.Namespace) -> None:
    """Replay the snapshot file when --warm-start asked for it and it exists."""
    import os

    if not getattr(args, "warm_start", False):
        return
    if not args.snapshot:
        raise ReproError("--warm-start requires --snapshot FILE")
    if not os.path.exists(args.snapshot):
        print(
            f"warm start: no snapshot at {args.snapshot} yet, starting cold",
            file=sys.stderr,
        )
        return
    from .server import warm_start

    # A torn snapshot (crash mid-write) must not crash-loop the boot: it is
    # quarantined as <file>.corrupt and the server starts cold.
    report = warm_start(service, args.snapshot, quarantine_corrupt=True)
    print(report.summary(), file=sys.stderr)
    for error in report.errors:
        print(f"warm start: {error}", file=sys.stderr)


def _command_serve(args: argparse.Namespace) -> int:
    with _service_from_args(args) as service:
        _maybe_warm_start(service, args)

        requests = []
        for line_number, raw in _iter_workload_lines(args.workload):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                spec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"workload line {line_number}: invalid JSON ({exc})")
            requests.append((line_number, spec))

        out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
        try:
            responses = service.solve_many(
                [_serve_request(service, spec, args.format) for _line, spec in requests]
            )
            for (line_number, spec), response in zip(requests, responses):
                payload = {"id": line_number, "graph": spec["graph"]}
                payload.update(response.as_dict(include_results=not args.no_results))
                out.write(json.dumps(payload, default=str) + "\n")
        finally:
            if out is not sys.stdout:
                out.close()

        if args.snapshot:
            from .server import save_snapshot

            snapshot = save_snapshot(
                service, args.snapshot,
                max_requests=args.snapshot_max_specs or None,
            )
            print(
                f"snapshot: {len(snapshot['hot_requests'])} hot requests over "
                f"{len(snapshot['graphs'])} graphs -> {args.snapshot}",
                file=sys.stderr,
            )
        metrics = service.metrics()
    summary = (
        f"served {len(requests)} requests: "
        f"{metrics['cache_hits']} hits, {metrics['cache_misses']} misses, "
        f"{metrics['coalesced']} coalesced, hit rate {metrics['hit_rate']:.2f}"
    )
    print(summary, file=sys.stderr)
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    return 0


def _command_serve_http(args: argparse.Namespace) -> int:
    from .server import serve_http

    if args.fault:
        from .resilience import fault_injector

        fault_injector().configure(args.fault)
        print(f"fault injection armed: {args.fault}", file=sys.stderr)
    service = _service_from_args(args)
    try:
        _maybe_warm_start(service, args)
    except ReproError:
        service.close()
        raise

    def ready(server) -> None:
        # The URL line is the machine-readable boot signal (supervisors and
        # the CI smoke test parse it to learn the ephemeral port).
        from .graph.csr import resolve_csr_backend

        print(f"serving on {server.url}", flush=True)
        print(
            f"graphs={len(service.catalog)} workers={args.workers} "
            f"csr-backend={resolve_csr_backend(service.config.csr_backend)} "
            f"snapshot={args.snapshot or '-'}",
            file=sys.stderr,
        )

    # Operational WARNING events (breaker trips, pool recoveries, snapshot
    # quarantines, slow requests) always reach stderr as JSON lines; the
    # per-request access log below stays opt-in via --access-log.
    from .obs import configure_event_logging

    configure_event_logging(stream=sys.stderr, level=logging.WARNING)
    logger = (lambda line: print(line, file=sys.stderr)) if args.access_log else None
    from .jobs import JobManagerConfig

    serve_http(
        service,
        host=args.host,
        port=args.port,
        snapshot_path=args.snapshot,
        snapshot_interval=args.snapshot_interval,
        request_deadline=args.request_deadline,
        logger=logger,
        ready=ready,
        job_config=JobManagerConfig(
            max_concurrent=args.job_workers,
            max_queue_depth=args.job_queue,
            result_buffer=args.job_buffer,
            ttl_seconds=args.job_ttl,
        ),
        drain_jobs=args.drain_jobs,
        trace_capacity=args.trace_capacity,
        access_log_format=args.access_log_format,
        slow_request_threshold=args.slow_request_threshold,
        replica_id=args.replica_id,
        snapshot_max_specs=args.snapshot_max_specs or None,
    )
    metrics = service.metrics()
    print(
        f"drained cleanly: {metrics['completed']} requests completed, "
        f"hit rate {metrics['hit_rate']:.2f}",
        file=sys.stderr,
    )
    return 0


def _command_serve_cluster(args: argparse.Namespace) -> int:
    import os

    from .cluster import replica_argv, serve_cluster
    from .obs import configure_event_logging

    configure_event_logging(stream=sys.stderr, level=logging.WARNING)

    base_args = []
    for spec in args.register:
        base_args += ["--register", spec]
    if args.format != "auto":
        base_args += ["--format", args.format]
    base_args += [
        "--workers", str(args.workers),
        "--queue-depth", str(args.queue_depth),
        "--cache-entries", str(args.cache_entries),
        "--cache-bytes", str(args.cache_bytes),
        "--csr-backend", args.csr_backend,
        "--snapshot-max-specs", str(args.snapshot_max_specs),
    ]
    if args.timeout is not None:
        base_args += ["--timeout", str(args.timeout)]
    if args.request_deadline is not None:
        base_args += ["--request-deadline", str(args.request_deadline)]
    if args.snapshot_dir:
        os.makedirs(args.snapshot_dir, exist_ok=True)

    def argv_factory(replica_id: str):
        extra = list(base_args)
        if args.snapshot_dir:
            extra += [
                "--snapshot", os.path.join(args.snapshot_dir, f"{replica_id}.json"),
                "--warm-start",
            ]
            if args.snapshot_interval is not None:
                extra += ["--snapshot-interval", str(args.snapshot_interval)]
        return replica_argv(replica_id, extra)

    logger = (lambda line: print(line, file=sys.stderr)) if args.access_log else None

    def ready(router) -> None:
        # Same machine-readable boot contract as serve-http: the URL line
        # on stdout is what supervisors and the CI smoke test parse.
        print(f"serving on {router.url}", flush=True)
        print(
            f"replicas={args.replicas} vnodes={args.virtual_nodes} "
            f"peer-warm={'off' if args.no_peer_warm else 'on'} "
            f"snapshot-dir={args.snapshot_dir or '-'}",
            file=sys.stderr,
        )
        for entry in router.replica_set.describe():
            print(
                f"replica {entry['id']}: {entry['url']} pid={entry['pid']}",
                file=sys.stderr,
            )

    router = serve_cluster(
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        argv_factory=argv_factory,
        vnodes=args.virtual_nodes,
        peer_warm=not args.no_peer_warm,
        proxy_timeout=args.proxy_timeout,
        boot_timeout=args.boot_timeout,
        max_restarts=args.max_restarts,
        logger=logger,
        ready=ready,
    )
    print(
        f"cluster drained cleanly: {router.replica_set.restarts_total} "
        f"replica restarts over the run",
        file=sys.stderr,
    )
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    from .resilience import RetryPolicy
    from .server import ServiceClient

    retry = RetryPolicy(max_attempts=args.retries + 1) if args.retries > 0 else None
    client = ServiceClient(args.url, retry=retry)
    if args.jobs_command == "submit":
        record = client.submit_job(
            args.graph,
            k=args.k,
            q=args.q,
            solver=args.solver,
            variant=args.variant,
            timeout=args.timeout,
            max_results=args.max_results,
            result_buffer=args.result_buffer,
            ttl=args.ttl,
        )
        if args.wait:
            record = client.wait_job(record["id"])
        print(json.dumps(record, indent=2, default=str))
    elif args.jobs_command == "status":
        print(json.dumps(client.job(args.job_id), indent=2, default=str))
    elif args.jobs_command == "list":
        records = client.jobs(states=args.state or None)
        if args.json:
            print(json.dumps(records, indent=2, default=str))
        else:
            rows = [
                {
                    "id": record["id"],
                    "state": record["state"],
                    "k": record["spec"].get("k"),
                    "q": record["spec"].get("q"),
                    "results": record["progress"]["results"],
                    "elapsed": record.get("elapsed_seconds"),
                }
                for record in records
            ]
            print(render_table(rows, title=f"Jobs on {args.url}"))
    elif args.jobs_command == "cancel":
        print(json.dumps(client.cancel_job(args.job_id), indent=2, default=str))
    else:  # stream
        for record in client.iter_job_results(
            args.job_id, start=args.start, include_heartbeats=args.heartbeats
        ):
            print(json.dumps(record, default=str), flush=True)
    return 0


def _render_span_tree(nodes, depth: int = 0) -> None:
    for node in nodes:
        duration = node.get("duration_ms")
        timing = f"{duration:.3f}ms" if duration is not None else "open"
        attrs = node.get("attributes") or {}
        detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        status = node.get("status", "ok")
        line = f"{'  ' * depth}{node['name']}  {timing}"
        if status != "ok":
            line += f"  [{status}]"
        if detail:
            line += f"  {detail}"
        print(line)
        _render_span_tree(node.get("children") or [], depth + 1)


def _command_trace(args: argparse.Namespace) -> int:
    from .server import ServiceClient

    client = ServiceClient(args.url)
    if args.request_id is None:
        payload = client.traces(min_ms=args.min_ms, limit=args.limit)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True, default=str))
            return 0
        rows = payload.get("traces") or []
        if not rows:
            print("no traces recorded")
            return 0
        for row in rows:
            duration = row.get("duration_ms")
            timing = f"{duration:10.3f}ms" if duration is not None else "         -  "
            print(
                f"{row['request_id']}  {timing}  "
                f"spans={row.get('spans', 0)} root={row.get('root') or '-'}"
            )
        return 0
    payload = client.trace(args.request_id)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    header = f"trace {payload['request_id']}"
    if payload.get("duration_ms") is not None:
        header += f"  {payload['duration_ms']}ms"
    if payload.get("dropped_spans"):
        header += f"  (+{payload['dropped_spans']} spans dropped)"
    print(header)
    _render_span_tree(payload.get("tree") or [])
    return 0


def _command_lint(args) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "enumerate": _command_enumerate,
    "query": _command_query,
    "solvers": _command_solvers,
    "datasets": _command_datasets,
    "experiment": _command_experiment,
    "serve": _command_serve,
    "serve-http": _command_serve_http,
    "serve-cluster": _command_serve_cluster,
    "jobs": _command_jobs,
    "trace": _command_trace,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``kplex-enum`` console script."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
