"""Upper bounds on the size of a k-plex extending the current partial solution.

Three bounds from the paper are implemented, all expressed over the dense
bitset representation of a seed subgraph:

* :func:`degree_bound` — Theorem 5.3: ``min_{u ∈ P} d_{G_i}(u) + k``.
* :func:`support_bound` — Theorem 5.5 / Algorithm 4: ``|P| + sup_P(v_p) + |K|``
  where ``K`` is the greedy packing of the pivot's candidate neighbours
  against the remaining non-neighbour budgets (support numbers) of ``P``.
* :func:`seed_task_bound` — Theorem 5.7: the specialised bound for an initial
  sub-task ``P_S = {v_i} ∪ S``, used by pruning rule R1.

An additional :func:`fp_style_bound` models the upper bound of the FP
baseline: the same packing argument but driven by a sort of the candidate
set, which is what makes it asymptotically more expensive per branch node.
Finally :func:`pairwise_bound` implements Lemma 5.12, the bound underlying
the vertex-pair pruning rules; it is exposed for testing and for the analysis
utilities.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..graph.bitset import iter_bits
from ..graph.dense import DenseSubgraph


def degree_bound(degrees_in_subgraph: Sequence[int], members: Sequence[int], k: int) -> int:
    """Theorem 5.3: ``min_{u ∈ members} d_{G_i}(u) + k``.

    ``degrees_in_subgraph`` holds the degree of every local vertex inside the
    (pruned) seed subgraph; ``members`` are the local indices of ``P``.
    """
    if not members:
        return len(degrees_in_subgraph) + k
    return min(degrees_in_subgraph[u] for u in members) + k


def _support_numbers(subgraph: DenseSubgraph, p_mask: int, k: int) -> Dict[int, int]:
    """Return ``sup_P(u) = k - \\bar d_P(u)`` for every ``u ∈ P``."""
    p_size = p_mask.bit_count()
    supports: Dict[int, int] = {}
    for u in iter_bits(p_mask):
        non_neighbors = p_size - (subgraph.adjacency[u] & p_mask).bit_count()
        supports[u] = k - non_neighbors
    return supports


def support_bound(
    subgraph: DenseSubgraph,
    p_mask: int,
    c_mask: int,
    pivot: int,
    k: int,
) -> int:
    """Theorem 5.5 / Algorithm 4: upper bound for a k-plex containing ``P ∪ {pivot}``.

    The pivot is a candidate vertex (``pivot ∈ C``).  The bound adds to
    ``|P|`` the number of the pivot's non-neighbours that may still join
    (``sup_P(pivot)``) and the size of the greedy packing ``K`` of the pivot's
    candidate neighbours against the support numbers of ``P``.
    """
    adjacency = subgraph.adjacency
    p_size = p_mask.bit_count()
    supports = _support_numbers(subgraph, p_mask, k)
    pivot_non_neighbors = p_size - (adjacency[pivot] & p_mask).bit_count()
    upper = p_size + (k - pivot_non_neighbors)
    for w in iter_bits(c_mask & adjacency[pivot] & ~(1 << pivot)):
        blockers = p_mask & ~adjacency[w]
        if blockers == 0:
            upper += 1
            continue
        minimum_vertex = -1
        minimum_support = None
        for u in iter_bits(blockers):
            support = supports[u]
            if minimum_support is None or support < minimum_support:
                minimum_support = support
                minimum_vertex = u
        if minimum_support is not None and minimum_support > 0:
            supports[minimum_vertex] = minimum_support - 1
            upper += 1
    return upper


def fp_style_bound(
    subgraph: DenseSubgraph,
    p_mask: int,
    c_mask: int,
    pivot: int,
    k: int,
) -> int:
    """Sorting-based upper bound modelled after FP's Lemma 5.

    The packing argument is identical to :func:`support_bound`, but candidate
    neighbours of the pivot are first *sorted* by how many non-neighbours
    they have in ``P`` (fewest first) before the greedy pass.  The resulting
    value is still a valid upper bound (the correctness argument of Theorem
    5.5 does not depend on the processing order); the sort is what makes the
    per-branch cost higher, which is exactly the trade-off the ``Ours\\ub+fp``
    ablation of Table 5 measures.
    """
    adjacency = subgraph.adjacency
    p_size = p_mask.bit_count()
    supports = _support_numbers(subgraph, p_mask, k)
    pivot_non_neighbors = p_size - (adjacency[pivot] & p_mask).bit_count()
    upper = p_size + (k - pivot_non_neighbors)
    neighbours = list(iter_bits(c_mask & adjacency[pivot] & ~(1 << pivot)))
    neighbours.sort(key=lambda w: p_size - (adjacency[w] & p_mask).bit_count())
    for w in neighbours:
        blockers = p_mask & ~adjacency[w]
        if blockers == 0:
            upper += 1
            continue
        minimum_vertex = min(iter_bits(blockers), key=lambda u: supports[u])
        if supports[minimum_vertex] > 0:
            supports[minimum_vertex] -= 1
            upper += 1
    return upper


def seed_task_bound(
    subgraph: DenseSubgraph,
    seed_local: int,
    p_mask: int,
    c_mask: int,
    degrees_in_subgraph: Sequence[int],
    k: int,
) -> int:
    """Theorem 5.7: upper bound for an initial sub-task ``P_S = {v_i} ∪ S``.

    The seed plays the role of the pivot with ``sup_{P_S}(v_i)`` forced to
    zero (no non-neighbour of the seed remains in the candidate set), so the
    bound reduces to ``|P_S| + |K|``; it is combined with the Theorem 5.3
    degree bound over the members of ``P_S``.
    """
    adjacency = subgraph.adjacency
    p_size = p_mask.bit_count()
    supports = _support_numbers(subgraph, p_mask, k)
    packing = 0
    for w in iter_bits(c_mask & adjacency[seed_local]):
        blockers = p_mask & ~adjacency[w]
        if blockers == 0:
            packing += 1
            continue
        minimum_vertex = min(iter_bits(blockers), key=lambda u: supports[u])
        if supports[minimum_vertex] > 0:
            supports[minimum_vertex] -= 1
            packing += 1
    theorem_57 = p_size + packing
    theorem_53 = degree_bound(degrees_in_subgraph, list(iter_bits(p_mask)), k)
    return min(theorem_57, theorem_53)


def pairwise_bound(subgraph: DenseSubgraph, p_mask: int, c_mask: int, k: int) -> int:
    """Lemma 5.12: ``min_{u,v ∈ P} |P| + sup_P(u) + sup_P(v) + |N_C(u) ∩ N_C(v)|``.

    Exposed primarily for validation: the vertex-pair pruning thresholds of
    Theorems 5.13–5.15 are instantiations of this bound, and the property
    tests check that it never under-estimates the true maximum.
    """
    adjacency = subgraph.adjacency
    p_size = p_mask.bit_count()
    members: List[int] = list(iter_bits(p_mask))
    if len(members) < 2:
        return p_size + c_mask.bit_count()
    supports = _support_numbers(subgraph, p_mask, k)
    best = None
    for index, u in enumerate(members):
        for v in members[index + 1 :]:
            common = (adjacency[u] & adjacency[v] & c_mask).bit_count()
            value = p_size + supports[u] + supports[v] + common
            if best is None or value < best:
                best = value
    return best if best is not None else p_size
