"""Text and JSON reporters for lint results.

The JSON document shape is stable (tooling consumes it)::

    {
      "version": 1,
      "files_analyzed": <int>,
      "checks_run": [<check id>, ...],
      "findings": [<Finding.to_dict()>, ...],   # see repro.lint.finding
      "summary": {
        "new": <int>, "suppressed": <int>, "baselined": <int>,
        "by_check": {<check id>: <new-finding count>, ...}
      },
      "syntax_errors": [<"file:line: msg">, ...]
    }
"""

from __future__ import annotations

import json
from typing import IO

from .analyzer import LintResult

__all__ = ["REPORT_VERSION", "render_json", "render_text", "summary_line"]

REPORT_VERSION = 1


def summary_line(result: LintResult) -> str:
    """One-line totals, with per-check counts for the new findings."""
    new = result.new_findings
    parts = [
        f"{result.files_analyzed} files",
        f"{len(result.checks_run)} checks",
        f"{len(new)} new finding{'s' if len(new) != 1 else ''}",
    ]
    if result.baselined_findings:
        parts.append(f"{len(result.baselined_findings)} baselined")
    if result.suppressed_findings:
        parts.append(f"{len(result.suppressed_findings)} suppressed")
    line = ", ".join(parts)
    by_check = result.counts_by_check()
    if by_check:
        detail = ", ".join(f"{name}={count}" for name, count in sorted(by_check.items()))
        line += f" ({detail})"
    return line


def render_text(result: LintResult, stream: IO[str], show_quiet: bool = False) -> None:
    """Human-readable report: one finding per line plus the summary line."""
    for error in result.syntax_errors:
        stream.write(f"{error} [syntax-error]\n")
    for finding in result.findings:
        if finding.active or show_quiet:
            stream.write(finding.render() + "\n")
    stream.write(summary_line(result) + "\n")


def render_json(result: LintResult, stream: IO[str]) -> None:
    """Machine-readable report (schema documented in the module docstring)."""
    document = {
        "version": REPORT_VERSION,
        "files_analyzed": result.files_analyzed,
        "checks_run": list(result.checks_run),
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "new": len(result.new_findings),
            "suppressed": len(result.suppressed_findings),
            "baselined": len(result.baselined_findings),
            "by_check": result.counts_by_check(),
        },
        "syntax_errors": list(result.syntax_errors),
    }
    json.dump(document, stream, indent=2)
    stream.write("\n")
