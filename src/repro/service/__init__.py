"""Serving layer: graph catalog, cross-request caches and the query service.

This subsystem layers the ROADMAP's production-service shape on top of
:class:`~repro.api.engine.KPlexEngine`:

* :class:`GraphCatalog` — graphs as named resources with pre-warming,
  memory accounting and an invalidate/unregister lifecycle;
* :class:`ResultCache` / :class:`SeedContextCache` — byte-budgeted LRU
  tiers reusing completed responses and per-seed subgraphs across requests
  (keys embed the graph epoch, so invalidation can never serve stale data);
* :class:`KPlexService` — the concurrent front-end: bounded worker pool,
  admission control, request coalescing and a :class:`ServiceMetrics`
  snapshot.

Quick start
-----------
>>> from repro.service import KPlexService
>>> service = KPlexService()
>>> _ = service.catalog.register("toy", [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
>>> service.solve("toy", k=2, q=3).count
1
>>> service.metrics()["cache_misses"]
1
"""

from ..errors import (
    CatalogError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from .cache import ByteBudgetLRU, ResultCache, SeedContextCache, result_cache_key
from .catalog import CatalogEntry, GraphCatalog
from .service import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_MISS,
    KPlexService,
    ServiceConfig,
    ServiceMetrics,
    render_prometheus,
)
from .sizing import (
    estimate_graph_bytes,
    estimate_prepared_bytes,
    estimate_response_bytes,
    estimate_seed_context_bytes,
)

__all__ = [
    "KPlexService",
    "ServiceConfig",
    "ServiceMetrics",
    "GraphCatalog",
    "CatalogEntry",
    "ResultCache",
    "SeedContextCache",
    "ByteBudgetLRU",
    "result_cache_key",
    "ServiceError",
    "CatalogError",
    "ServiceOverloadError",
    "ServiceClosedError",
    "render_prometheus",
    "OUTCOME_HIT",
    "OUTCOME_MISS",
    "OUTCOME_COALESCED",
    "estimate_graph_bytes",
    "estimate_prepared_bytes",
    "estimate_response_bytes",
    "estimate_seed_context_bytes",
]
