"""Unit tests for the integer-bitset helpers."""

import pytest

from repro.graph import bitset


def test_bit_and_contains():
    mask = bitset.bit(3)
    assert mask == 0b1000
    assert bitset.contains(mask, 3)
    assert not bitset.contains(mask, 2)


def test_mask_from_indices_and_back():
    indices = [0, 2, 5, 63, 130]
    mask = bitset.mask_from_indices(indices)
    assert bitset.bits_to_list(mask) == indices
    assert bitset.popcount(mask) == len(indices)


def test_mask_from_indices_duplicates_collapse():
    assert bitset.mask_from_indices([1, 1, 1]) == 0b10


def test_iter_bits_order():
    mask = 0b101101
    assert list(bitset.iter_bits(mask)) == [0, 2, 3, 5]


def test_iter_bits_empty():
    assert list(bitset.iter_bits(0)) == []


def test_lowest_bit_index():
    assert bitset.lowest_bit_index(0b101000) == 3
    with pytest.raises(ValueError):
        bitset.lowest_bit_index(0)


def test_remove_clears_only_target():
    mask = bitset.mask_from_indices([1, 4, 9])
    assert bitset.bits_to_list(bitset.remove(mask, 4)) == [1, 9]
    assert bitset.remove(mask, 7) == mask


def test_is_subset():
    assert bitset.is_subset(0b0101, 0b1101)
    assert not bitset.is_subset(0b0101, 0b1001)
    assert bitset.is_subset(0, 0)


def test_subsets_of_size_at_most_counts():
    mask = bitset.mask_from_indices([0, 1, 2, 3])
    subsets = list(bitset.subsets_of_size_at_most(mask, 2))
    # 1 empty + 4 singles + 6 pairs
    assert len(subsets) == 11
    assert subsets[0] == 0
    assert len(set(subsets)) == len(subsets)
    assert all(bitset.popcount(s) <= 2 for s in subsets)


def test_subsets_of_size_at_most_zero_limit():
    mask = bitset.mask_from_indices([2, 7])
    assert list(bitset.subsets_of_size_at_most(mask, 0)) == [0]


def test_subsets_are_subsets_of_mask():
    mask = bitset.mask_from_indices([1, 3, 4])
    for subset in bitset.subsets_of_size_at_most(mask, 3):
        assert bitset.is_subset(subset, mask)
