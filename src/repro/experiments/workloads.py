"""Workload definitions for the experiment reproductions.

The paper's evaluation sweeps ``k ∈ {2, 3, 4}`` and ``q ∈ {12, 20, 30}`` on
small/medium SNAP graphs and larger ``q`` on the LAW web graphs.  The
surrogate datasets of :mod:`repro.datasets` are two to four orders of
magnitude smaller (pure-Python substitution, see DESIGN.md §5), so the size
thresholds are scaled down proportionally: the *roles* of the settings are
preserved (a permissive ``q`` that yields many k-plexes, a mid ``q``, and a
strict ``q`` that yields few), which is what drives the relative behaviour of
the algorithms.

Two scales are provided: ``"quick"`` keeps every bench in the seconds range
and is the default for ``pytest benchmarks/``; ``"full"`` uses more datasets
and more parameter points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.request import EnumerationRequest
from ..datasets import get_dataset, load_dataset
from ..graph import Graph

SCALE_QUICK = "quick"
SCALE_FULL = "full"


@dataclass(frozen=True)
class Workload:
    """One experiment cell: a dataset with one ``(k, q)`` parameter pair."""

    dataset: str
    k: int
    q: int
    paper_q: int

    def load(self) -> Graph:
        """Build the surrogate graph of the workload's dataset."""
        return load_dataset(self.dataset)

    def to_request(
        self,
        graph: Optional[Graph] = None,
        solver: str = "ours",
        **overrides: object,
    ) -> EnumerationRequest:
        """Build an :class:`EnumerationRequest` for this workload.

        ``graph`` avoids re-building the surrogate when the caller already
        loaded it; extra keyword arguments pass through to the request
        (``variant``, ``timeout_seconds``, ``options``, ...).
        """
        return EnumerationRequest(
            graph=graph if graph is not None else self.load(),
            k=self.k,
            q=self.q,
            solver=solver,
            **overrides,
        )

    def describe(self) -> Dict[str, object]:
        """Row fragment describing the workload (includes the paper's q)."""
        spec = get_dataset(self.dataset)
        return {
            "dataset": self.dataset,
            "category": spec.category,
            "k": self.k,
            "q": self.q,
            "paper_q": self.paper_q,
        }


# Mapping from the paper's q values to the scaled q used on the surrogates.
# 12 -> 6, 20 -> 8, 30 -> 10 for the social surrogates; the web-crawl
# surrogates (dense caveman communities) support larger thresholds.
_SOCIAL_Q = {12: 6, 20: 8, 30: 10}
_WEB_Q = {40: 10, 50: 12, 250: 12, 400: 12, 500: 14, 800: 14, 900: 16, 1000: 16, 2000: 18}

# Datasets used by the sequential comparison (Table 3 / Figure 7).
_SEQUENTIAL_QUICK = ["jazz", "wiki-vote", "as-caida", "soc-epinions"]
_SEQUENTIAL_FULL = _SEQUENTIAL_QUICK + [
    "lastfm",
    "soc-slashdot",
    "email-euall",
    "com-dblp",
    "amazon0505",
    "soc-pokec",
    "as-skitter",
]

# Datasets used by the parallel experiments (Table 4 / Figures 8 and 13).
_PARALLEL_QUICK = ["enwiki-2021", "arabic-2005"]
_PARALLEL_FULL = ["enwiki-2021", "arabic-2005", "uk-2005", "it-2004", "webbase-2001"]

# Datasets used by the ablation studies (Tables 5 and 6, Figure 9).
_ABLATION_QUICK = ["wiki-vote", "soc-epinions"]
_ABLATION_FULL = ["wiki-vote", "soc-epinions", "email-euall", "soc-pokec"]


def _social_workloads(datasets: Sequence[str], pairs: Sequence[Tuple[int, int]]) -> List[Workload]:
    workloads = []
    for dataset in datasets:
        for k, paper_q in pairs:
            workloads.append(
                Workload(dataset=dataset, k=k, q=_SOCIAL_Q[paper_q], paper_q=paper_q)
            )
    return workloads


def sequential_workloads(scale: str = SCALE_QUICK) -> List[Workload]:
    """Workloads of Table 3: small/medium datasets, k ∈ {2, 3}, three q levels."""
    if scale == SCALE_FULL:
        datasets = _SEQUENTIAL_FULL
        pairs = [(2, 12), (2, 20), (3, 20), (3, 30), (4, 30)]
    else:
        datasets = _SEQUENTIAL_QUICK
        pairs = [(2, 12), (2, 20), (3, 20)]
    return _social_workloads(datasets, pairs)


# Per-dataset (k, scaled q sweep) used by the q-sensitivity figures.  The
# sweeps start where the result sets stop exploding in the Python surrogates
# (the paper's sweeps likewise start at q = 12 / q = 20).
_VARY_Q_SWEEPS: Dict[str, Tuple[int, List[int]]] = {
    "wiki-vote": (3, [7, 8, 9, 10]),
    "soc-epinions": (2, [6, 7, 8, 9]),
    "email-euall": (3, [7, 8, 9, 10]),
    "soc-pokec": (3, [9, 10, 11, 12]),
}


def vary_q_workloads(scale: str = SCALE_QUICK) -> Dict[str, List[Workload]]:
    """Workloads of Figures 7 / 14: per dataset, a sweep of q at fixed k."""
    datasets = _ABLATION_QUICK if scale != SCALE_FULL else _ABLATION_FULL
    sweeps: Dict[str, List[Workload]] = {}
    for dataset in datasets:
        k, qs = _VARY_Q_SWEEPS[dataset]
        sweeps[dataset] = [
            Workload(dataset=dataset, k=k, q=q, paper_q=12 + 2 * (q - qs[0])) for q in qs
        ]
    return sweeps


def parallel_workloads(scale: str = SCALE_QUICK) -> List[Workload]:
    """Workloads of Table 4: large surrogates, k ∈ {2, 3}."""
    datasets = _PARALLEL_QUICK if scale != SCALE_FULL else _PARALLEL_FULL
    workloads = []
    for dataset in datasets:
        paper_q_k2 = {"enwiki-2021": 40, "arabic-2005": 900, "uk-2005": 250,
                      "it-2004": 1000, "webbase-2001": 400}[dataset]
        paper_q_k3 = {"enwiki-2021": 50, "arabic-2005": 1000, "uk-2005": 500,
                      "it-2004": 2000, "webbase-2001": 800}[dataset]
        workloads.append(
            Workload(dataset=dataset, k=2, q=_WEB_Q[paper_q_k2], paper_q=paper_q_k2)
        )
        workloads.append(
            Workload(dataset=dataset, k=3, q=_WEB_Q[paper_q_k3], paper_q=paper_q_k3)
        )
    return workloads


def ablation_workloads(scale: str = SCALE_QUICK) -> List[Workload]:
    """Workloads of Tables 5 and 6: representative datasets, two q levels each."""
    datasets = _ABLATION_QUICK if scale != SCALE_FULL else _ABLATION_FULL
    pairs = [(2, 12), (3, 20)] if scale != SCALE_FULL else [(2, 12), (2, 20), (3, 20), (3, 30)]
    return _social_workloads(datasets, pairs)


def memory_workloads(scale: str = SCALE_QUICK) -> List[Workload]:
    """Workloads of Table 7 (appendix B.2): one strict-q setting per dataset."""
    datasets = _ABLATION_QUICK if scale != SCALE_FULL else _ABLATION_FULL
    return _social_workloads(datasets, [(3, 20)])


# Repeated-query traffic for the serving layer: a small set of (dataset, k, q)
# cells, each hit many times per replay.  The mix interleaves the cells
# (A B C A B C ...) so the cache must hold several keys at once — a round-robin
# replay, not a burst per key.
_SERVICE_QUICK = [("jazz", 2, 8), ("wiki-vote", 2, 10), ("wiki-vote", 3, 12)]
_SERVICE_FULL = _SERVICE_QUICK + [("soc-epinions", 2, 8), ("as-caida", 2, 6)]


def service_replay_workloads(
    scale: str = SCALE_QUICK, repeats: int = 10
) -> List[Workload]:
    """Workloads of the serving-layer benchmarks: repeated-query traffic.

    Returns ``repeats`` interleaved rounds over the scale's ``(dataset, k,
    q)`` cells — the request stream a :class:`repro.service.KPlexService`
    sees from clients that ask the same questions over and over.  The first
    round misses every cache; the remaining ``repeats - 1`` rounds are pure
    reuse, which is what the cache benchmarks gate on.
    """
    cells = _SERVICE_FULL if scale == SCALE_FULL else _SERVICE_QUICK
    workloads = [
        Workload(dataset=dataset, k=k, q=q, paper_q=q) for dataset, k, q in cells
    ]
    return [workload for _ in range(repeats) for workload in workloads]


def speedup_worker_counts(scale: str = SCALE_QUICK) -> List[int]:
    """Thread counts of Figure 8."""
    return [1, 2, 4, 8, 16]


def timeout_values(scale: str = SCALE_QUICK) -> List[float]:
    """Timeout sweep of Figure 13, expressed in branch-call cost units."""
    if scale == SCALE_FULL:
        return [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0]
    return [1.0, 8.0, 64.0, 512.0, 4096.0]
