"""Unit tests for the k-plex model: definitions, checkers and result records."""

import pytest

from repro.core.kplex import (
    KPlex,
    can_extend,
    deduplicate,
    is_kplex,
    is_maximal_kplex,
    kplex_diameter_ok,
    non_neighbor_count,
    saturated_vertices,
    support_number,
    validate_parameters,
    verify_kplex,
)
from repro.errors import ParameterError
from repro.graph import Graph, generators


def test_clique_is_kplex_for_all_k():
    graph = Graph.complete(5)
    for k in (1, 2, 3):
        assert is_kplex(graph, range(5), k)


def test_definition_counts_self_as_non_neighbor(diamond):
    # The diamond (K4 minus an edge) is a 2-plex but not a clique.
    assert is_kplex(diamond, [0, 1, 2, 3], 2)
    assert not is_kplex(diamond, [0, 1, 2, 3], 1)


def test_empty_and_singleton_sets_are_kplexes(triangle):
    assert is_kplex(triangle, [], 1)
    assert is_kplex(triangle, [0], 1)


def test_two_disjoint_cliques_form_disconnected_kplex():
    # Two disjoint (k-1)-cliques form a k-plex of size 2k-2 (paper, Section 3).
    k = 3
    graph = generators.disjoint_union([Graph.complete(k - 1), Graph.complete(k - 1)])
    assert is_kplex(graph, range(2 * k - 2), k)


def test_hereditary_property_random_graphs():
    graph = generators.erdos_renyi(12, 0.5, seed=3)
    for k in (1, 2, 3):
        members = [v for v in range(12) if v % 2 == 0]
        if is_kplex(graph, members, k):
            assert is_kplex(graph, members[:-1], k)
            assert is_kplex(graph, members[:3], k)


def test_can_extend_matches_full_check():
    graph = generators.erdos_renyi(10, 0.5, seed=5)
    members = frozenset({0, 1, 2})
    for k in (1, 2):
        if not is_kplex(graph, members, k):
            continue
        for candidate in range(3, 10):
            assert can_extend(graph, members, candidate, k) == is_kplex(
                graph, members | {candidate}, k
            )


def test_can_extend_existing_member_is_trivial(triangle):
    assert can_extend(triangle, frozenset({0, 1}), 0, 1)


def test_is_maximal_kplex(diamond):
    assert is_maximal_kplex(diamond, [0, 1, 2, 3], 2)
    assert not is_maximal_kplex(diamond, [0, 1, 2], 2)  # extendable by 3
    assert is_maximal_kplex(diamond, [0, 1, 2], 1)  # the triangle is a maximal clique
    assert not is_maximal_kplex(diamond, [0, 3], 1)  # not even a clique


def test_non_neighbor_count_and_support(diamond):
    members = frozenset({0, 1, 2, 3})
    # Vertex 0 misses vertex 3 and itself.
    assert non_neighbor_count(diamond, 0, members) == 2
    assert support_number(diamond, members, 0, k=2) == 0
    assert support_number(diamond, members, 1, k=2) == 1


def test_saturated_vertices(diamond):
    members = frozenset({0, 1, 2, 3})
    assert saturated_vertices(diamond, members, 2) == frozenset({0, 3})


def test_kplex_diameter_ok(two_triangles_bridge):
    # A 2-plex with >= 3 vertices must be connected with diameter <= 2.
    assert kplex_diameter_ok(two_triangles_bridge, [0, 1, 2], 2)
    # Premise does not apply to small sets.
    assert kplex_diameter_ok(two_triangles_bridge, [0, 5], 3)


def test_validate_parameters():
    validate_parameters(2, 3)
    validate_parameters(1, 1)
    with pytest.raises(ParameterError):
        validate_parameters(0, 3)
    with pytest.raises(ParameterError):
        validate_parameters(2, 0)
    with pytest.raises(ParameterError):
        validate_parameters(3, 4)  # q < 2k - 1
    validate_parameters(3, 4, enforce_diameter_bound=False)


def test_verify_kplex_raises_with_reason(diamond):
    verify_kplex(diamond, [0, 1, 2, 3], 2, q=4)
    with pytest.raises(AssertionError, match="not a 1-plex"):
        verify_kplex(diamond, [0, 1, 2, 3], 1)
    with pytest.raises(AssertionError, match="fewer than q"):
        verify_kplex(diamond, [0, 1, 2, 3], 2, q=5)
    with pytest.raises(AssertionError, match="not maximal"):
        verify_kplex(diamond, [1, 2, 3], 2)


def test_kplex_record_round_trip(diamond):
    plex = KPlex.from_vertices(diamond, [3, 1, 0, 2], k=2)
    assert plex.vertices == (0, 1, 2, 3)
    assert plex.size == 4
    assert len(plex) == 4
    assert 2 in plex
    assert list(iter(plex)) == [0, 1, 2, 3]
    assert plex.as_set() == frozenset({0, 1, 2, 3})


def test_kplex_labels_follow_graph_labels():
    graph = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
    plex = KPlex.from_vertices(graph, [0, 2], k=1)
    assert plex.labels == ("a", "c")


def test_deduplicate_preserves_order(diamond):
    first = KPlex.from_vertices(diamond, [0, 1, 2], k=2)
    second = KPlex.from_vertices(diamond, [2, 1, 0], k=2)
    third = KPlex.from_vertices(diamond, [1, 2, 3], k=2)
    unique = deduplicate([first, second, third])
    assert unique == (first, third)
