"""Request-scoped tracing with hierarchical spans.

A :class:`Trace` is created once per request (HTTP handler, job run, or
library caller) and carries a ``request_id``.  Spans form a tree rooted at
the request span; the active span is propagated through ``contextvars`` so
nested layers (service, engine, enumerator) can attach children without
plumbing a trace object through every signature.

Two boundaries need explicit help:

* **Thread pools** do not inherit the submitting thread's context.  Callers
  capture ``current_span()`` at submit time and re-enter it in the worker
  via :func:`activate`.
* **Process pools** cannot share a context at all.  Workers build plain
  dict ``span_record``\\ s (wall-clock start/end) that ride back alongside
  results; the driver stitches them under its own span with
  :func:`attach_span_record`.

Every helper degrades to a cheap no-op when no trace is active, so library
use without a server pays almost nothing.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional

__all__ = [
    "MAX_SPANS_PER_TRACE",
    "Span",
    "Trace",
    "TraceRecorder",
    "activate",
    "attach_span_record",
    "current_span",
    "current_trace",
    "new_request_id",
    "span",
    "span_record",
    "start_span",
]

#: Hard cap on recorded spans per trace.  Beyond it new spans are counted in
#: ``Trace.dropped_spans`` instead of stored, bounding memory on requests
#: that fan out to thousands of seeds.
MAX_SPANS_PER_TRACE = 512


def new_request_id() -> str:
    """Return a fresh opaque request identifier (hex, URL-safe)."""

    return uuid.uuid4().hex


class Span:
    """One timed operation inside a :class:`Trace`.

    ``start_time``/``end_time`` are wall-clock seconds so spans stitched
    from other processes line up with locally measured ones.  Locally
    started spans additionally anchor on a monotonic clock so durations
    are immune to wall-clock steps.
    """

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "start_time",
        "end_time",
        "status",
        "attributes",
        "_start_mono",
        "recorded",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        span_id: str,
        parent_id: Optional[str] = None,
        start_time: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace = trace
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        if start_time is None:
            # One clock read: wall-clock start is derived from the trace's
            # paired wall/monotonic anchor (hot-path economy).
            mono = time.monotonic()
            self._start_mono: Optional[float] = mono
            self.start_time = trace.created_at + (mono - trace._mono_base)
        else:
            self.start_time = float(start_time)
            self._start_mono = None
        self.end_time: Optional[float] = None
        self.status = "ok"
        # The dict is owned, not copied: every caller passes a fresh one.
        self.attributes: Dict[str, Any] = (
            attributes if attributes is not None else {}
        )
        self.recorded = True

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""

        self.attributes.update(attributes)
        return self

    def finish(
        self, status: str = "ok", end_time: Optional[float] = None
    ) -> "Span":
        """Close the span (idempotent: the first finish wins)."""

        if self.end_time is not None:
            return self
        if end_time is not None:
            self.end_time = float(end_time)
        elif self._start_mono is not None:
            self.end_time = self.start_time + (time.monotonic() - self._start_mono)
        else:
            self.end_time = time.time()
        self.status = status
        return self

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return max(0.0, (self.end_time - self.start_time) * 1000.0)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "start_time": round(self.start_time, 6),
            "status": self.status,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.end_time is not None:
            payload["duration_ms"] = round(self.duration_ms or 0.0, 3)
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NoopSpan:
    """Stand-in yielded by :func:`span` when no trace is active."""

    __slots__ = ()
    trace = None
    name = "noop"
    span_id = ""
    parent_id = None
    start_time = 0.0
    end_time = 0.0
    status = "ok"
    attributes: Dict[str, Any] = {}
    duration_ms = None
    recorded = False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def finish(self, status: str = "ok", end_time: Optional[float] = None) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Trace:
    """A tree of spans sharing one ``request_id``.  Thread-safe.

    Span creation is deliberately lock-free: ``list.append`` and
    ``itertools.count`` are atomic under the GIL, so the hot path never
    contends.  The lock only guards the rare overflow counter and gives
    readers (:meth:`to_dict`, :meth:`tree`) a consistent snapshot point.
    """

    def __init__(
        self,
        request_id: Optional[str] = None,
        max_spans: int = MAX_SPANS_PER_TRACE,
    ) -> None:
        self.request_id = request_id or new_request_id()
        self.max_spans = max(1, int(max_spans))
        self.created_at = time.time()
        self._mono_base = time.monotonic()
        self.dropped_spans = 0
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        start_time: Optional[float] = None,
        **attributes: Any,
    ) -> Span:
        """Create (and register) a new span.

        When the per-trace cap is hit the span is still returned — callers
        can keep timing and parenting off it — but it is not stored and
        ``dropped_spans`` is bumped instead.
        """

        return self._new_span(name, parent, start_time, attributes or None)

    def _new_span(
        self,
        name: str,
        parent: Optional[Span],
        start_time: Optional[float],
        attributes: Optional[Dict[str, Any]],
    ) -> Span:
        parent_id = parent.span_id if parent is not None and parent.recorded else None
        created = Span(
            self,
            name,
            span_id=f"s{next(self._ids)}",
            parent_id=parent_id,
            start_time=start_time,
            attributes=attributes,
        )
        if len(self.spans) < self.max_spans:
            self.spans.append(created)
        else:
            with self._lock:
                self.dropped_spans += 1
            created.recorded = False
        return created

    @property
    def root(self) -> Optional[Span]:
        with self._lock:
            return self.spans[0] if self.spans else None

    @property
    def duration_ms(self) -> Optional[float]:
        root = self.root
        return root.duration_ms if root is not None else None

    def finish(self, status: str = "ok") -> "Trace":
        """Finish any still-open recorded spans (root last)."""

        with self._lock:
            open_spans = [s for s in self.spans if s.end_time is None]
        for item in reversed(open_spans):
            item.finish(status)
        return self

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "created_at": round(self.created_at, 6),
            "spans": spans,
        }
        duration = self.duration_ms
        if duration is not None:
            payload["duration_ms"] = round(duration, 3)
        if self.dropped_spans:
            payload["dropped_spans"] = self.dropped_spans
        return payload

    def tree(self) -> List[Dict[str, Any]]:
        """Spans nested by parent: a list of root dicts with ``children``."""

        with self._lock:
            spans = [s.to_dict() for s in self.spans]
        by_id: Dict[str, Dict[str, Any]] = {}
        for item in spans:
            item["children"] = []
            by_id[item["span_id"]] = item
        roots: List[Dict[str, Any]] = []
        for item in spans:
            parent = by_id.get(item.get("parent_id", ""))
            if parent is not None:
                parent["children"].append(item)
            else:
                roots.append(item)
        return roots

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace({self.request_id!r}, spans={len(self.spans)})"


# --------------------------------------------------------------------------- #
# Context propagation
# --------------------------------------------------------------------------- #
_ACTIVE_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)


def current_span() -> Optional[Span]:
    """The span active in this context, or None outside any trace."""

    return _ACTIVE_SPAN.get()


def current_trace() -> Optional[Trace]:
    """The trace active in this context, or None outside any trace."""

    active = _ACTIVE_SPAN.get()
    return active.trace if active is not None else None


class activate:
    """Force ``target`` to be the active span for the duration of the block.

    This is the thread-boundary primitive: capture ``current_span()`` where
    work is submitted, then ``with activate(captured):`` inside the pool
    worker.  ``activate(None)`` masks any inherited context.

    A hand-rolled context manager (not ``@contextmanager``): this sits on
    the hot serving path, and a plain class with ``__slots__`` costs less
    than half of the generator protocol.
    """

    __slots__ = ("_target", "_token")

    def __init__(self, target: Optional[Span]) -> None:
        self._target = target

    def __enter__(self) -> Optional[Span]:
        self._token = _ACTIVE_SPAN.set(self._target)
        return self._target

    def __exit__(self, *_exc_info: object) -> None:
        _ACTIVE_SPAN.reset(self._token)


class span:
    """Open a child of the active span for the duration of the block.

    No-op (yields the shared inert span) when no trace is active, so hot
    paths can use it unconditionally.  Class-based for the same hot-path
    reason as :class:`activate`.
    """

    __slots__ = ("_name", "_attributes", "_child", "_token")

    def __init__(self, name: str, **attributes: Any) -> None:
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        parent = _ACTIVE_SPAN.get()
        if parent is None:
            self._child = None
            return NOOP_SPAN  # type: ignore[return-value]
        child = parent.trace._new_span(
            self._name, parent, None, self._attributes or None
        )
        self._child = child
        self._token = _ACTIVE_SPAN.set(child)
        return child

    def __exit__(self, exc_type: object, *_exc_info: object) -> None:
        child = self._child
        if child is None:
            return
        child.finish("error" if exc_type is not None else "ok")
        _ACTIVE_SPAN.reset(self._token)


def start_span(name: str, **attributes: Any) -> Optional[Span]:
    """Start a child of the active span *without* activating it.

    Generator-safe: the caller owns the span and must ``finish()`` it.
    Returns None when no trace is active.
    """

    parent = _ACTIVE_SPAN.get()
    if parent is None:
        return None
    return parent.trace._new_span(name, parent, None, attributes or None)


# --------------------------------------------------------------------------- #
# Cross-process stitching
# --------------------------------------------------------------------------- #
def span_record(
    name: str, start: float, end: float, **attributes: Any
) -> Dict[str, Any]:
    """Build a plain-dict span usable from a worker process.

    The record is picklable and carries the worker pid; the driver turns it
    back into a real span with :func:`attach_span_record`.
    """

    record: Dict[str, Any] = {
        "name": name,
        "start": float(start),
        "end": float(end),
        "pid": os.getpid(),
    }
    if attributes:
        record.update(attributes)
    return record


def attach_span_record(
    record: Dict[str, Any], parent: Optional[Span] = None
) -> Optional[Span]:
    """Stitch a worker-produced span record under ``parent``.

    Defaults to the active span; returns None (and does nothing) when there
    is no trace to attach to.
    """

    parent = parent if parent is not None else _ACTIVE_SPAN.get()
    if parent is None or parent.trace is None:
        return None
    attributes = {
        key: value
        for key, value in record.items()
        if key not in ("name", "start", "end")
    }
    stitched = parent.trace.span(
        str(record.get("name", "worker")),
        parent=parent,
        start_time=float(record.get("start", parent.start_time)),
        **attributes,
    )
    stitched.finish(end_time=float(record.get("end", stitched.start_time)))
    return stitched


# --------------------------------------------------------------------------- #
# Completed-trace ring buffer
# --------------------------------------------------------------------------- #
class TraceRecorder:
    """Bounded buffer of traces, addressable by request_id.

    Traces are registered when their request *starts* (the objects keep
    accumulating spans in place), so in-flight work is already visible and
    a client can fetch its own trace the moment it holds the response.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = int(capacity)
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, trace: Trace) -> None:
        with self._lock:
            if trace.request_id in self._traces:
                self._traces.move_to_end(trace.request_id)
            self._traces[trace.request_id] = trace
            while len(self._traces) > self._capacity:
                self._traces.popitem(last=False)

    def get(self, request_id: str) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(request_id)

    def list(
        self, min_ms: Optional[float] = None, limit: Optional[int] = None
    ) -> List[Trace]:
        """Recorded traces, newest first, optionally filtered by duration.

        A ``min_ms`` filter drops still-running traces (no duration yet).
        """

        with self._lock:
            traces = list(self._traces.values())
        traces.reverse()
        if min_ms is not None:
            traces = [
                t for t in traces
                if t.duration_ms is not None and t.duration_ms >= min_ms
            ]
        if limit is not None:
            traces = traces[: max(0, int(limit))]
        return traces

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
