"""Durable warm state for the serving layer (snapshot + warm-start replay).

The in-memory caches of :class:`~repro.service.service.KPlexService` die
with the process; this module makes their *hot set* survive a restart
without ever persisting a result payload:

* :func:`snapshot_service` captures the catalog registrations (with inline
  edges for graphs that cannot be re-materialised from a file or dataset),
  the :class:`~repro.service.cache.ResultCache`'s hottest **request specs**
  and the :class:`~repro.service.cache.SeedContextCache`'s entry specs into
  one versioned JSON document;
* :func:`save_snapshot` writes it atomically (tmp file + ``os.replace``);
* :func:`warm_start` re-registers the graphs and re-executes the persisted
  specs through the normal service path, so a restarted server answers the
  replayed workload from a warm cache.

Staleness is impossible by construction on two levels.  First, replay
*recomputes* — nothing cached is ever injected, so a warmed entry is as
fresh as a client-triggered one.  Second, every spec carries the
``Graph.epoch`` observed at snapshot time and :func:`warm_start` skips any
spec whose epoch no longer matches the live graph: a snapshot taken before
``bump_epoch()`` (or taken after mutations, loaded against a freshly
re-materialised graph) warms nothing for that graph instead of warming
questionable state.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.config import EnumerationConfig
from ..errors import ReproError, SnapshotError
from ..obs import log_event
from ..graph import Graph
from ..graph.prepared import prepare
from ..resilience import fault_injector, resilience_stats
from ..service import KPlexService
from ..service.cache import _INTERNAL_OPTIONS
from ..service.catalog import DATASET_PREFIX

SNAPSHOT_FORMAT = "kplex-service-snapshot"
SNAPSHOT_VERSION = 1

#: Half-life of a cached spec's score under the compaction policy: an entry
#: last touched one half-life ago counts half its hits, two half-lives a
#: quarter, and so on.  Five minutes matches the service's default snapshot
#: cadence — specs that survived a whole snapshot interval untouched are
#: already cooling.
DEFAULT_SPEC_HALF_LIFE_SECONDS = 300.0

#: JSON-safe scalar types accepted for vertex labels and option values.
_JSON_SCALARS = (str, int, float, bool)


# --------------------------------------------------------------------------- #
# Capture
# --------------------------------------------------------------------------- #
def _json_safe(value: object) -> bool:
    if value is None or isinstance(value, _JSON_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        return all(_json_safe(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_safe(item) for key, item in value.items()
        )
    return False


def _graph_spec(name: str, entry) -> Optional[Dict[str, object]]:
    """One catalog registration as a restorable JSON object.

    File and dataset sources are recorded by reference; graphs registered
    from objects or raw edge iterables are inlined as labelled edge lists
    (when their labels are JSON-safe — otherwise the graph cannot be
    restored and the whole entry is dropped from the snapshot).
    """
    graph: Graph = entry.graph
    spec: Dict[str, object] = {
        "name": name,
        "epoch": graph.epoch,
        "prewarm_levels": list(entry.prewarmed_levels),
    }
    source: str = entry.source
    if source.startswith(DATASET_PREFIX):
        spec["dataset"] = source[len(DATASET_PREFIX) :]
        return spec
    if source.startswith("file:"):
        spec["path"] = source[len("file:") :]
        spec["fmt"] = entry.fmt
        return spec
    labels = graph.labels()
    if not all(isinstance(label, (str, int)) for label in labels):
        return None
    spec["vertices"] = labels
    spec["edges"] = [
        [graph.label(u), graph.label(v)] for u, v in graph.edges()
    ]
    return spec


def _config_dict(config: EnumerationConfig) -> Dict[str, object]:
    return dataclasses.asdict(config)


def _request_spec(request, name: str, epoch: int) -> Optional[Dict[str, object]]:
    """One cached request as a replayable JSON object (no graph payload)."""
    spec: Dict[str, object] = {
        "graph": name,
        "epoch": epoch,
        "k": request.k,
        "q": request.q,
        "solver": request.solver,
        "sort_results": request.sort_results,
    }
    if request.variant is not None:
        spec["variant"] = request.variant
    elif request.config is not None:
        spec["config"] = _config_dict(request.config)
    if request.query_vertices is not None:
        labels = [request.graph.label(v) for v in request.query_vertices]
        if not all(isinstance(label, (str, int)) for label in labels):
            return None
        spec["query"] = labels
    if request.max_results is not None:
        spec["max_results"] = request.max_results
    options = {
        key: value
        for key, value in request.options.items()
        if key not in _INTERNAL_OPTIONS
    }
    if options:
        if not _json_safe(options):
            return None
        spec["options"] = options
    return spec


def _spec_score(hits: int, age_seconds: float, half_life_seconds: float) -> float:
    """Compaction score: hit count decayed by time since last access.

    ``(1 + hits)`` so a never-hit entry still competes (it was stored, i.e.
    computed once); the exponential halves the score every half-life, so a
    burst of historical hits cannot pin a spec that traffic has moved past.
    """
    return (1.0 + hits) * (0.5 ** (max(0.0, age_seconds) / half_life_seconds))


def snapshot_service(
    service: KPlexService,
    max_requests: Optional[int] = None,
    half_life_seconds: float = DEFAULT_SPEC_HALF_LIFE_SECONDS,
) -> Dict[str, object]:
    """Capture the service's warm state as one versioned JSON document.

    ``max_requests`` bounds the number of persisted hot request specs via
    the top-N-by-hit-count-with-age-decay policy (see :func:`_spec_score`):
    every live cache entry is scored and only the ``max_requests`` best
    survive, with the cut recorded under the document's
    ``"spec_compaction"`` key so operators can see what a bounded snapshot
    dropped.  Seed-context specs are always included — they are a few dozen
    bytes each.
    """
    catalog = service.catalog
    graphs: List[Dict[str, object]] = []
    restorable: Dict[int, str] = {}
    for name in catalog.names():
        entry = catalog.entry(name)
        spec = _graph_spec(name, entry)
        if spec is None:
            continue
        graphs.append(spec)
        restorable[id(entry.graph)] = name

    now = time.monotonic()
    scored: List[Tuple[float, int, Dict[str, object]]] = []
    seen: Dict[str, int] = {}
    if service.result_cache is not None:
        for request, hits, last_access in service.result_cache.export_requests_scored():
            name = restorable.get(id(request.graph))
            if name is None:
                continue
            spec = _request_spec(request, name, request.graph.epoch)
            if spec is None:
                continue
            score = _spec_score(hits, now - last_access, half_life_seconds)
            marker = json.dumps(spec, sort_keys=True, default=str)
            index = seen.get(marker)
            if index is not None:
                # Duplicate spec (e.g. alias solver names): keep one entry
                # with the combined best score.
                previous = scored[index]
                scored[index] = (max(previous[0], score), previous[1], previous[2])
                continue
            seen[marker] = len(scored)
            scored.append((score, hits, spec))

    # Stable sort on descending score; the export is MRU-first, so ties keep
    # the most recently used spec ahead.
    ranked = sorted(enumerate(scored), key=lambda item: (-item[1][0], item[0]))
    cut = len(ranked) if max_requests is None else min(max_requests, len(ranked))
    hot_requests = [entry[2] for _index, entry in ranked[:cut]]
    dropped = ranked[cut:]
    compaction: Dict[str, object] = {
        "policy": "top-hits-age-decay",
        "half_life_seconds": half_life_seconds,
        "max_specs": max_requests,
        "candidates": len(ranked),
        "kept": len(hot_requests),
        "dropped": len(dropped),
        # A bounded sample of what the cut removed, for operator forensics.
        "dropped_specs": [
            {
                "graph": entry[2].get("graph"),
                "k": entry[2].get("k"),
                "q": entry[2].get("q"),
                "hits": entry[1],
                "score": round(entry[0], 6),
            }
            for _index, entry in dropped[:32]
        ],
    }

    seed_specs: List[Dict[str, object]] = []
    if service.seed_context_cache is not None:
        for graph, epoch, k, q, config in service.seed_context_cache.export_specs():
            name = restorable.get(id(graph))
            if name is None:
                continue
            seed_specs.append(
                {
                    "graph": name,
                    "epoch": epoch,
                    "k": k,
                    "q": q,
                    "config": _config_dict(config),
                }
            )

    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "created_at": time.time(),
        "graphs": graphs,
        "hot_requests": hot_requests,
        "seed_specs": seed_specs,
        # Not validated by load_snapshot (older readers ignore it), so the
        # format version stays 1.
        "spec_compaction": compaction,
    }


def save_snapshot(
    service: KPlexService,
    path: Union[str, os.PathLike],
    max_requests: Optional[int] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot ``service`` and write it to ``path`` atomically.

    The document is staged in a uniquely named temp file in the target
    directory and published with ``os.replace``: concurrent writers (the
    periodic thread, a drain, ``POST /v1/snapshot``) each stage their own
    file, so the published snapshot is always one writer's complete output.

    ``extra`` keys are merged into the document (the server uses this to
    record its job-table summary at drain time); they may not shadow the
    snapshot's own keys and are ignored by :func:`load_snapshot`, which
    only validates the core fields.
    """
    snapshot = snapshot_service(service, max_requests=max_requests)
    if extra:
        collisions = set(extra) & set(snapshot)
        if collisions:
            raise SnapshotError(
                f"extra snapshot keys shadow core fields: {sorted(collisions)}"
            )
        snapshot.update(extra)
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    if fault_injector().fire("snapshot_torn"):
        # Fault injection: simulate a crash mid-write by publishing a
        # truncated document directly (bypassing the tmp+rename protocol
        # that normally makes this impossible).
        payload = json.dumps(snapshot, indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload[: max(1, len(payload) // 2)])
        return snapshot
    tmp_path = None
    try:
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".tmp."
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except OSError as exc:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        raise SnapshotError(f"cannot write snapshot to {path!r}: {exc}") from exc
    return snapshot


# --------------------------------------------------------------------------- #
# Restore
# --------------------------------------------------------------------------- #
def quarantine_snapshot(path: Union[str, os.PathLike]) -> Optional[str]:
    """Move a corrupt snapshot aside as ``<path>.corrupt`` and return the new path.

    The rename keeps the torn document for post-mortem inspection while
    guaranteeing the next boot (and the next periodic snapshot write) sees
    a clean slate.  An existing quarantine file is never overwritten — a
    numeric suffix is appended instead.  Returns ``None`` when the file
    vanished or cannot be moved (in which case the caller should still
    boot cold; the quarantine is best-effort).
    """
    path = os.fspath(path)
    target = path + ".corrupt"
    suffix = 0
    while os.path.exists(target):
        suffix += 1
        target = f"{path}.corrupt.{suffix}"
    try:
        os.replace(path, target)
    except OSError:
        return None
    resilience_stats().increment("snapshots_quarantined")
    log_event(
        "snapshot_quarantined",
        level=logging.WARNING,
        snapshot_path=path,
        quarantine_path=target,
    )
    return target


def load_snapshot(path: Union[str, os.PathLike]) -> Dict[str, object]:
    """Read and validate a snapshot document written by :func:`save_snapshot`."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(snapshot, dict) or snapshot.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} document")
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has version {version!r}; this build reads "
            f"version {SNAPSHOT_VERSION}"
        )
    for key in ("graphs", "hot_requests", "seed_specs"):
        if not isinstance(snapshot.get(key), list):
            raise SnapshotError(f"snapshot {path!r} is missing the {key!r} list")
    return snapshot


@dataclass
class WarmStartReport:
    """Outcome of one :func:`warm_start` run (all counters, no payloads)."""

    graphs_registered: int = 0
    graphs_matched: int = 0
    graphs_stale: int = 0
    replayed: int = 0
    skipped_stale: int = 0
    failed: int = 0
    errors: List[str] = field(default_factory=list)
    #: Path the corrupt snapshot was moved to, when a torn/invalid document
    #: was quarantined instead of aborting the boot.
    quarantined: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary (logged by the CLI after boot)."""
        return dataclasses.asdict(self)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.quarantined is not None:
            return (
                f"warm start: corrupt snapshot quarantined to "
                f"{self.quarantined!r}; booting cold"
            )
        return (
            f"warm start: {self.replayed} specs replayed over "
            f"{self.graphs_registered + self.graphs_matched} graphs "
            f"({self.graphs_stale} stale graphs, {self.skipped_stale} stale "
            f"specs, {self.failed} failures)"
        )


def _restore_graph(service: KPlexService, spec: Dict[str, object]) -> Tuple[bool, bool]:
    """Ensure the spec's graph is registered; return (available, registered_now)."""
    name = spec["name"]
    if name in service.catalog:
        return True, False
    if "dataset" in spec:
        source: object = f"{DATASET_PREFIX}{spec['dataset']}"
    elif "path" in spec:
        source = spec["path"]
    else:
        edges = [tuple(edge) for edge in spec.get("edges", [])]
        graph = Graph.from_edges(edges, vertices=spec.get("vertices"))
        source = graph
    service.catalog.register(name, source, fmt=spec.get("fmt", "auto"))
    return True, True


def _replay_request(service: KPlexService, spec: Dict[str, object]):
    kwargs: Dict[str, object] = {
        "solver": spec.get("solver", "ours"),
        "sort_results": spec.get("sort_results", True),
    }
    if spec.get("variant") is not None:
        kwargs["variant"] = spec["variant"]
    elif spec.get("config") is not None:
        kwargs["config"] = EnumerationConfig(**spec["config"])
    if spec.get("max_results") is not None:
        kwargs["max_results"] = spec["max_results"]
    if spec.get("options"):
        kwargs["options"] = dict(spec["options"])
    if spec.get("query") is not None:
        graph = service.catalog.get(spec["graph"])
        kwargs["query_vertices"] = tuple(
            graph.index_of(label) for label in spec["query"]
        )
    request = service.request(spec["graph"], spec["k"], spec["q"], **kwargs)
    return service.solve(request)


def _replay_seed_spec(service: KPlexService, spec: Dict[str, object]):
    # Seed contexts are config-dependent only; replaying the plain
    # enumeration with that config rebuilds them (and is a cheap result-cache
    # hit when a hot request already covered the cell).
    return service.solve(
        spec["graph"],
        spec["k"],
        spec["q"],
        config=EnumerationConfig(**spec["config"]),
    )


def warm_start(
    service: KPlexService,
    snapshot: Union[str, os.PathLike, Dict[str, object]],
    register_missing: bool = True,
    quarantine_corrupt: bool = False,
) -> WarmStartReport:
    """Replay a snapshot's hot specs through ``service``'s normal path.

    Graphs named by the snapshot are re-registered when absent (from their
    dataset / file source or the inlined edges) unless ``register_missing``
    is false.  A spec is replayed only when its recorded epoch equals the
    live graph's current epoch; anything else is counted as stale and
    skipped — see the module docstring for why this can never warm state
    from before a mutation.  Individual replay failures are collected in
    the report instead of aborting the boot.

    With ``quarantine_corrupt`` a torn or invalid snapshot *file* (crash
    mid-write, truncation, version drift) no longer raises: the document
    is moved aside via :func:`quarantine_snapshot` and an empty report
    with :attr:`WarmStartReport.quarantined` set is returned, so the
    server boots cold instead of crash-looping on the same bad file.  A
    *missing* file still raises — that is a configuration error, not
    corruption.
    """
    if not isinstance(snapshot, dict):
        snapshot_path = os.fspath(snapshot)
        try:
            snapshot = load_snapshot(snapshot_path)
        except SnapshotError as exc:
            if not quarantine_corrupt or not os.path.exists(snapshot_path):
                raise
            report = WarmStartReport()
            report.quarantined = quarantine_snapshot(snapshot_path)
            report.errors.append(f"snapshot {snapshot_path!r}: {exc}")
            return report
    report = WarmStartReport()
    fresh: Dict[str, int] = {}
    for spec in snapshot["graphs"]:
        name = spec["name"]
        try:
            if name in service.catalog:
                available, registered = True, False
            elif register_missing:
                available, registered = _restore_graph(service, spec)
            else:
                available, registered = False, False
        except ReproError as exc:
            report.errors.append(f"graph {name!r}: {exc}")
            report.failed += 1
            continue
        if not available:
            report.graphs_stale += 1
            continue
        current_epoch = service.catalog.get(name).epoch
        if registered:
            report.graphs_registered += 1
        else:
            report.graphs_matched += 1
        if current_epoch != spec.get("epoch"):
            # The graph changed since the snapshot (or the snapshot itself
            # post-dates mutations a re-materialised graph knows nothing
            # about): none of its specs may warm state.
            report.graphs_stale += 1
            continue
        fresh[name] = current_epoch
        for level in spec.get("prewarm_levels", ()):
            try:
                prepare(service.catalog.get(name)).prepared_core(int(level))
            except ReproError:  # pragma: no cover - defensive
                pass

    for kind, specs in (("request", snapshot["hot_requests"]), ("seed", snapshot["seed_specs"])):
        for spec in specs:
            name = spec.get("graph")
            if name not in fresh or spec.get("epoch") != fresh[name]:
                report.skipped_stale += 1
                continue
            try:
                if kind == "request":
                    _replay_request(service, spec)
                else:
                    _replay_seed_spec(service, spec)
                report.replayed += 1
            except ReproError as exc:
                report.failed += 1
                report.errors.append(f"{kind} spec {name!r} k={spec.get('k')}: {exc}")
    return report
