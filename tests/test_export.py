"""Tests for exporting and re-importing enumeration results."""

import pytest

from repro.analysis import read_result_sets, write_results
from repro.core import enumerate_maximal_kplexes
from repro.errors import FormatError
from repro.graph import Graph, generators


@pytest.fixture
def results():
    graph = generators.ring_of_cliques(2, 6)
    return graph, enumerate_maximal_kplexes(graph, 2, 5)


def test_text_round_trip(tmp_path, results):
    _, plexes = results
    path = tmp_path / "plexes.txt"
    assert write_results(plexes, path) == "text"
    loaded = read_result_sets(path)
    assert len(loaded) == len(plexes)
    expected = {tuple(str(v) for v in plex.vertices) for plex in plexes}
    assert set(loaded) == expected


def test_csv_round_trip(tmp_path, results):
    _, plexes = results
    path = tmp_path / "plexes.csv"
    assert write_results(plexes, path) == "csv"
    loaded = read_result_sets(path)
    assert len(loaded) == len(plexes)


def test_jsonl_round_trip_preserves_vertex_ids(tmp_path, results):
    _, plexes = results
    path = tmp_path / "plexes.jsonl"
    assert write_results(plexes, path) == "jsonl"
    loaded = read_result_sets(path)
    assert {tuple(members) for members in loaded} == {plex.vertices for plex in plexes}


def test_write_with_internal_ids(tmp_path):
    graph = Graph.from_edges([("x", "y"), ("y", "z"), ("x", "z")])
    plexes = enumerate_maximal_kplexes(graph, 1, 3)
    path = tmp_path / "ids.txt"
    write_results(plexes, path, use_labels=False)
    loaded = read_result_sets(path)
    assert loaded == [("0", "1", "2")]


def test_explicit_format_overrides_extension(tmp_path, results):
    _, plexes = results
    path = tmp_path / "data.dat"
    assert write_results(plexes, path, fmt="csv") == "csv"
    assert read_result_sets(path, fmt="csv")


def test_unknown_format_rejected(tmp_path, results):
    _, plexes = results
    with pytest.raises(FormatError):
        write_results(plexes, tmp_path / "x.txt", fmt="parquet")


def test_malformed_csv_rejected(tmp_path):
    path = tmp_path / "broken.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(FormatError):
        read_result_sets(path)


def test_malformed_jsonl_rejected(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text("{not json}\n")
    with pytest.raises(FormatError):
        read_result_sets(path)


def test_empty_results_files(tmp_path):
    for name in ("empty.txt", "empty.csv", "empty.jsonl"):
        path = tmp_path / name
        write_results([], path)
        assert read_result_sets(path) == []
