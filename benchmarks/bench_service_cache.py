"""Serving layer — repeated-workload replay through the KPlexService.

The ROADMAP's service scenario is many clients asking the same questions
over the same graphs.  PR 2's prepared-graph index already removed the
repeated *preprocessing*; the serving layer's cross-request ResultCache
removes the repeated *search*: an interleaved round-robin replay
(A B C A B C ...) pays each distinct (graph, k, q) cell once and serves
every further round from the cache.

This bench replays the repeated-query workload twice — through a bare
:class:`KPlexEngine` (prepared index warm, so this is the strongest
cache-less baseline) and through a :class:`KPlexService` — and gates the
headline: at least a 5x total-time win.  A second scenario replays through
a service with a deliberately tiny byte budget and asserts the eviction
machinery keeps the cache within it.
"""

import time

from repro.analysis.reporting import render_table
from repro.api import KPlexEngine
from repro.datasets import load_dataset
from repro.experiments.workloads import service_replay_workloads
from repro.service import KPlexService, ServiceConfig

from _bench_utils import run_once

REPEATS = 12


def _load_graphs(workloads):
    graphs = {}
    for workload in workloads:
        if workload.dataset not in graphs:
            graphs[workload.dataset] = load_dataset(workload.dataset)
    return graphs


def _bare_replay_seconds(workloads, graphs) -> float:
    engine = KPlexEngine()
    for name, graph in graphs.items():
        engine.prepare(graph)  # same warm starting line as the service
    started = time.perf_counter()
    for workload in workloads:
        engine.solve(workload.to_request(graph=graphs[workload.dataset]))
    return time.perf_counter() - started


def _service_replay_seconds(workloads, graphs, config=None):
    service = KPlexService(config=config or ServiceConfig(max_workers=2))
    for name, graph in graphs.items():
        service.catalog.register(name, graph)
    started = time.perf_counter()
    for workload in workloads:
        service.solve(workload.dataset, k=workload.k, q=workload.q)
    elapsed = time.perf_counter() - started
    metrics = service.metrics()
    service.close()
    return elapsed, metrics


def test_bench_service_cache_repeated_workload(benchmark, scale):
    workloads = service_replay_workloads(scale, repeats=REPEATS)

    def run():
        graphs = _load_graphs(workloads)
        bare_seconds = _bare_replay_seconds(workloads, graphs)
        service_seconds, metrics = _service_replay_seconds(workloads, graphs)
        return {
            "requests": len(workloads),
            "bare_engine_seconds": round(bare_seconds, 4),
            "service_seconds": round(service_seconds, 4),
            "speedup": round(bare_seconds / service_seconds, 2)
            if service_seconds
            else 0.0,
            "hit_rate": round(metrics["hit_rate"], 3),
            "p95_ms": round(metrics["latency_p95_seconds"] * 1e3, 3),
        }

    row = run_once(benchmark, run)
    print()
    print(render_table([row], title="Service cache — repeated-workload replay"))
    # The replay repeats every cell REPEATS times; all but the first round
    # are pure cache hits, so anything close to the bare engine means the
    # cache path is broken.  5x leaves a wide margin on shared runners.
    assert row["speedup"] >= 5.0, row
    assert row["hit_rate"] >= 0.8, row


def test_bench_service_cache_respects_byte_budget(scale):
    workloads = service_replay_workloads(scale, repeats=3)
    graphs = _load_graphs(workloads)
    budget = 48 * 1024  # deliberately too small for every distinct answer
    config = ServiceConfig(
        max_workers=2,
        result_cache_entries=None,
        result_cache_bytes=budget,
    )
    _elapsed, metrics = _service_replay_seconds(workloads, graphs, config=config)
    cache_stats = metrics["result_cache"]
    assert cache_stats["current_bytes"] <= budget, cache_stats
    # The budget must actually have been exercised: something was stored and
    # something was pushed out (or rejected as oversized).
    assert cache_stats["stores"] > 0, cache_stats
    assert cache_stats["evictions"] + cache_stats["rejected_oversized"] > 0, cache_stats
