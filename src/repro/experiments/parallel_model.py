"""Cost measurement and calibration for the parallel experiments.

The parallel comparisons of the paper (Table 4, Figures 8 and 13) depend on
how each algorithm's work decomposes into schedulable tasks:

* **FP** parallelises whole seed task groups only and constructs every seed
  subgraph serially before mining starts, so its schedulable unit is one seed
  and its makespan carries a serial construction component.
* **ListPlex** parallelises the sub-tasks of the seed/S decomposition but has
  no straggler elimination.
* **Ours** additionally splits sub-tasks that exceed the timeout ``τ_time``.

:func:`measure_parallel_workload` runs the real sequential algorithm once,
records the per-task costs (branch-and-bound calls) and the time spent on
subgraph construction, and returns everything the deterministic scheduler
needs to predict the parallel makespan.  Wall-clock estimates are obtained by
converting scheduled cost units back to seconds with the measured
seconds-per-branch-call ratio of the same run, so every algorithm is
calibrated against its own implementation cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.fp import FPLike, fp_config
from ..baselines.listplex import listplex_config
from ..core.branch import BranchSearcher
from ..core.config import EnumerationConfig
from ..core.seeds import iter_seed_contexts, iter_subtasks
from ..core.stats import SearchStatistics
from ..graph import Graph
from ..graph.core_decomposition import shrink_to_core
from ..parallel.scheduler import StageScheduler
from .runner import ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS


@dataclass
class ParallelWorkloadMeasurement:
    """Everything needed to schedule one algorithm's work on simulated cores."""

    algorithm: str
    num_kplexes: int
    sequential_seconds: float
    construction_seconds: float
    task_groups: List[List[float]] = field(default_factory=list)
    construction_parallelises: bool = True

    @property
    def total_cost(self) -> float:
        """Total scheduled work in cost units (branch-and-bound calls)."""
        return float(sum(sum(group) for group in self.task_groups))

    @property
    def seconds_per_cost_unit(self) -> float:
        """Calibration factor from cost units to wall-clock seconds."""
        total = self.total_cost
        search_seconds = max(self.sequential_seconds - self.construction_seconds, 0.0)
        if total <= 0:
            return 0.0
        return search_seconds / total

    def makespan_seconds(
        self,
        num_workers: int,
        timeout_cost: Optional[float] = None,
        split_overhead: float = 0.0,
    ) -> float:
        """Predict the parallel wall-clock time on ``num_workers`` workers."""
        scheduler = StageScheduler(num_workers, timeout=timeout_cost, split_overhead=split_overhead)
        report = scheduler.run(self.task_groups)
        search_seconds = report.makespan * self.seconds_per_cost_unit
        if self.construction_parallelises:
            construction = self.construction_seconds / max(num_workers, 1)
        else:
            construction = self.construction_seconds
        return construction + search_seconds


def _measure_decomposed(
    graph: Graph, k: int, q: int, config: EnumerationConfig, algorithm: str
) -> ParallelWorkloadMeasurement:
    """Measure per-sub-task costs for algorithms using the seed/S decomposition."""
    started = time.perf_counter()
    core_graph, _ = shrink_to_core(graph, q - k)
    stats = SearchStatistics()
    task_groups: List[List[float]] = []
    construction_seconds = 0.0
    outputs = 0
    if core_graph.num_vertices >= q:
        construction_start = time.perf_counter()
        contexts = [
            context
            for _seed, context in iter_seed_contexts(core_graph, k, q, config, stats)
            if context is not None
        ]
        construction_seconds = time.perf_counter() - construction_start
        for context in contexts:
            group: List[float] = []
            searcher = BranchSearcher(
                context, k, q, config, stats, on_result=lambda mask: None
            )
            for task in iter_subtasks(context, k, q, config, stats):
                before = stats.branch_calls
                searcher.run_subtask(task)
                group.append(float(stats.branch_calls - before))
            if group:
                task_groups.append(group)
        outputs = stats.outputs
    return ParallelWorkloadMeasurement(
        algorithm=algorithm,
        num_kplexes=outputs,
        sequential_seconds=time.perf_counter() - started,
        construction_seconds=construction_seconds,
        task_groups=task_groups,
        construction_parallelises=True,
    )


def _measure_fp(graph: Graph, k: int, q: int) -> ParallelWorkloadMeasurement:
    """Measure per-seed costs for the FP baseline (one task per seed)."""
    started = time.perf_counter()
    runner = FPLike(graph, k, q)
    result = runner.run()
    elapsed = time.perf_counter() - started
    per_seed = runner.statistics.per_seed_branch_calls
    task_groups = [[float(calls)] for calls in per_seed.values() if calls > 0]
    # FP's released parallel implementation constructs all seed subgraphs
    # serially before mining; model that serial phase as a fixed 20% share of
    # the sequential run, the fraction the paper attributes to subgraph
    # construction when explaining FP's poor parallel scaling.
    construction = 0.2 * elapsed
    return ParallelWorkloadMeasurement(
        algorithm=ALGORITHM_FP,
        num_kplexes=result.count,
        sequential_seconds=elapsed,
        construction_seconds=construction,
        task_groups=task_groups,
        construction_parallelises=False,
    )


def measure_parallel_workload(
    algorithm: str, graph: Graph, k: int, q: int
) -> ParallelWorkloadMeasurement:
    """Measure the schedulable cost structure of ``algorithm`` on one workload."""
    if algorithm == ALGORITHM_FP:
        return _measure_fp(graph, k, q)
    if algorithm == ALGORITHM_LISTPLEX:
        return _measure_decomposed(graph, k, q, listplex_config(), ALGORITHM_LISTPLEX)
    if algorithm == ALGORITHM_OURS:
        return _measure_decomposed(graph, k, q, EnumerationConfig.ours(), ALGORITHM_OURS)
    raise ValueError(f"unsupported parallel algorithm {algorithm!r}")


def best_timeout(
    measurement: ParallelWorkloadMeasurement,
    num_workers: int,
    candidate_timeouts: Sequence[float],
    split_overhead: float = 0.5,
) -> Dict[str, float]:
    """Sweep the timeout values and return the best one with its makespan."""
    best_value: Optional[float] = None
    best_seconds = float("inf")
    for timeout in candidate_timeouts:
        seconds = measurement.makespan_seconds(
            num_workers, timeout_cost=timeout, split_overhead=split_overhead
        )
        if seconds < best_seconds:
            best_seconds = seconds
            best_value = timeout
    return {"timeout": best_value if best_value is not None else 0.0, "seconds": best_seconds}
