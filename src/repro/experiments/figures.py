"""Reproduction drivers for the paper's figures.

Figures are reproduced as data series (``x value -> y value`` per curve);
the benchmark harness prints them with
:func:`repro.analysis.reporting.render_series`, giving the same data points a
plotting script would consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .parallel_model import measure_parallel_workload
from .runner import (
    ALGORITHM_BASIC,
    ALGORITHM_FP,
    ALGORITHM_LISTPLEX,
    ALGORITHM_OURS,
    run_algorithm,
)
from .workloads import (
    SCALE_QUICK,
    Workload,
    parallel_workloads,
    speedup_worker_counts,
    timeout_values,
    vary_q_workloads,
)

Series = Dict[str, Dict[object, float]]


# --------------------------------------------------------------------------- #
# Figures 7 and 14: running time as q varies (FP / ListPlex / Ours)
# --------------------------------------------------------------------------- #
def figure7_vary_q(
    scale: str = SCALE_QUICK,
    sweeps: Optional[Dict[str, List[Workload]]] = None,
    algorithms: Sequence[str] = (ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS),
) -> Dict[str, Series]:
    """Figure 7 (Figure 14 with ``scale="full"``): per-dataset time-vs-q curves."""
    sweeps = sweeps if sweeps is not None else vary_q_workloads(scale)
    figures: Dict[str, Series] = {}
    for dataset, workloads in sweeps.items():
        series: Series = {algorithm: {} for algorithm in algorithms}
        graph = workloads[0].load() if workloads else None
        for workload in workloads:
            for algorithm in algorithms:
                record = run_algorithm(algorithm, graph, dataset, workload.k, workload.q)
                series[algorithm][workload.q] = round(record.seconds, 4)
        figures[f"{dataset} (k={workloads[0].k})" if workloads else dataset] = series
    return figures


# --------------------------------------------------------------------------- #
# Figure 8: speedup of the parallel algorithm
# --------------------------------------------------------------------------- #
def figure8_speedup(
    scale: str = SCALE_QUICK,
    worker_counts: Optional[Sequence[int]] = None,
    workloads: Optional[Sequence[Workload]] = None,
    timeout_cost: float = 16.0,
) -> Series:
    """Figure 8: speedup ratio of Ours with 2/4/8/16 workers per large dataset."""
    worker_counts = list(worker_counts or speedup_worker_counts(scale))
    series: Series = {}
    for workload in workloads if workloads is not None else parallel_workloads(scale):
        measurement = measure_parallel_workload(ALGORITHM_OURS, workload.load(), workload.k, workload.q)
        baseline = measurement.makespan_seconds(1, timeout_cost=timeout_cost, split_overhead=0.5)
        curve: Dict[object, float] = {}
        for workers in worker_counts:
            seconds = measurement.makespan_seconds(
                workers, timeout_cost=timeout_cost, split_overhead=0.5
            )
            curve[workers] = round(baseline / seconds, 3) if seconds > 0 else float(workers)
        series[f"{workload.dataset} (k={workload.k}, q={workload.q})"] = curve
    return series


# --------------------------------------------------------------------------- #
# Figure 9 and 15: Basic vs Ours as q varies
# --------------------------------------------------------------------------- #
def figure9_basic_vs_ours(
    scale: str = SCALE_QUICK,
    sweeps: Optional[Dict[str, List[Workload]]] = None,
) -> Dict[str, Series]:
    """Figure 9 (Figure 15 with ``scale="full"``): Basic vs Ours time-vs-q curves."""
    return figure7_vary_q(
        scale, sweeps=sweeps, algorithms=(ALGORITHM_BASIC, ALGORITHM_OURS)
    )


# --------------------------------------------------------------------------- #
# Figure 13: sensitivity to the straggler timeout
# --------------------------------------------------------------------------- #
def figure13_timeout(
    scale: str = SCALE_QUICK,
    num_workers: int = 16,
    timeouts: Optional[Sequence[float]] = None,
    workloads: Optional[Sequence[Workload]] = None,
    split_overhead: float = 0.5,
) -> Series:
    """Figure 13: predicted parallel runtime of Ours as ``τ_time`` varies.

    Small timeouts pay the task-materialisation overhead on every split;
    very large timeouts degrade load balancing because straggler sub-tasks
    are never broken up — the same U-shape the paper reports.
    """
    timeouts = list(timeouts or timeout_values(scale))
    series: Series = {}
    for workload in workloads if workloads is not None else parallel_workloads(scale):
        measurement = measure_parallel_workload(ALGORITHM_OURS, workload.load(), workload.k, workload.q)
        curve: Dict[object, float] = {}
        for timeout in timeouts:
            curve[timeout] = round(
                measurement.makespan_seconds(
                    num_workers, timeout_cost=timeout, split_overhead=split_overhead
                ),
                5,
            )
        # "No timeout" corresponds to the ListPlex behaviour the paper
        # contrasts against (τ = ∞).
        curve["inf"] = round(measurement.makespan_seconds(num_workers, timeout_cost=None), 5)
        series[f"{workload.dataset} (k={workload.k}, q={workload.q})"] = curve
    return series
