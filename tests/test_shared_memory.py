"""Shared-memory prepared-graph transfer: fidelity and lifecycle.

The executor's zero-copy worker transfer publishes a prepared graph's flat
arrays in one shared-memory segment.  These tests assert attach fidelity
(bit-identical graph, decomposition, position and CSR views), the
unlink-exactly-once ownership contract on every exit path — normal
shutdown, raising workers, and a crashing pool constructor — and that the
process-pool results stay bit-identical to the sequential enumeration.
"""

import pickle

import pytest

from repro.core import enumerate_maximal_kplexes
from repro.errors import SharedMemoryError
from repro.graph import Graph, invalidate, prepare
from repro.graph.generators import erdos_renyi, relaxed_caveman
from repro.graph.shared import (
    SharedGraphDescriptor,
    attach_prepared,
    live_owned_segments,
    shared_memory_available,
)
from repro.parallel import executor as executor_module
from repro.parallel.executor import (
    ParallelConfig,
    _enumerate_parallel,
    parallel_enumerate_maximal_kplexes,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="platform has no shared memory"
)


def _prepared(seed=11):
    graph = relaxed_caveman(5, 5, 0.3, seed=seed)
    invalidate(graph)
    prepared = prepare(graph)
    prepared.csr
    prepared.decomposition
    prepared.position
    return graph, prepared


# --------------------------------------------------------------------------- #
# Attach fidelity
# --------------------------------------------------------------------------- #
def test_share_attach_roundtrip_is_bit_identical():
    graph, prepared = _prepared()
    with prepared.share() as shared:
        descriptor = shared.descriptor()
        assert descriptor.num_vertices == graph.num_vertices
        attached = attach_prepared(descriptor)
        assert attached.graph == graph
        assert attached.graph is not graph
        assert attached.decomposition.order == prepared.decomposition.order
        assert (
            attached.decomposition.core_numbers
            == prepared.decomposition.core_numbers
        )
        assert attached.decomposition.degeneracy == prepared.decomposition.degeneracy
        assert attached.position == prepared.position
        csr = attached.csr
        assert csr.degrees() == prepared.csr.degrees()
        for v in range(graph.num_vertices):
            assert csr.neighbors_list(v) == prepared.csr.neighbors_list(v)
        # Attached adjacency is Python ints (np.int64 masks overflow at 64
        # vertices in the bitset arithmetic downstream).
        assert all(
            type(u) is int for u in sorted(attached.graph.neighbors(0))
        )


def test_descriptor_is_small_and_picklable():
    _graph, prepared = _prepared()
    with prepared.share() as shared:
        descriptor = shared.descriptor()
        payload = pickle.dumps(descriptor)
        # The whole point: per-worker transfer is a fixed-size handle, not
        # an O(n + m) graph pickle.
        assert len(payload) < 512
        restored = pickle.loads(payload)
        assert restored == descriptor
        assert isinstance(restored, SharedGraphDescriptor)


# --------------------------------------------------------------------------- #
# Ownership: unlink exactly once, on every path
# --------------------------------------------------------------------------- #
def test_unlink_is_idempotent_and_removes_the_segment():
    _graph, prepared = _prepared()
    shared = prepared.share()
    name = shared.descriptor().name
    assert name in live_owned_segments()
    assert shared.unlink() is True
    assert shared.unlink() is False  # second call is a no-op, not an error
    assert name not in live_owned_segments()
    with pytest.raises(SharedMemoryError):
        attach_prepared(shared.descriptor())


def test_context_manager_unlinks_on_exception():
    _graph, prepared = _prepared()
    with pytest.raises(RuntimeError):
        with prepared.share() as shared:
            name = shared.descriptor().name
            raise RuntimeError("boom")
    assert name not in live_owned_segments()


def test_pool_crash_degrades_to_serial_and_unlinks_segment(monkeypatch):
    # A pool that cannot even be constructed no longer kills the run: the
    # supervisor degrades to in-process serial enumeration (recorded in the
    # run statistics) — and the segment is still unlinked exactly once.
    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            raise RuntimeError("pool constructor crashed")

    graph, _prepared_index = _prepared(seed=13)
    expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 4)}
    monkeypatch.setattr(executor_module, "ProcessPoolExecutor", ExplodingPool)
    result = _enumerate_parallel(
        graph,
        2,
        4,
        ParallelConfig(num_workers=2, use_processes=True, shared_memory=True),
    )
    assert {p.as_set() for p in result.kplexes} == expected
    assert result.statistics.serial_fallbacks == 1
    assert live_owned_segments() == []


def test_raising_worker_still_unlinks_segment(monkeypatch):
    # An unexpected driver-side failure (not a worker death, not a task
    # exception) still propagates — and still unlinks the segment.
    class RaisingSubmitPool:
        def __init__(self, *args, **kwargs):
            pass

        def submit(self, *_args, **_kwargs):
            raise RuntimeError("worker died")

        def shutdown(self, *args, **kwargs):
            pass

    graph, _prepared_index = _prepared(seed=17)
    monkeypatch.setattr(executor_module, "ProcessPoolExecutor", RaisingSubmitPool)
    with pytest.raises(RuntimeError, match="worker died"):
        _enumerate_parallel(
            graph,
            2,
            4,
            ParallelConfig(num_workers=2, use_processes=True, shared_memory=True),
        )
    assert live_owned_segments() == []


# --------------------------------------------------------------------------- #
# End-to-end through the process pool
# --------------------------------------------------------------------------- #
def test_process_pool_shared_memory_matches_sequential():
    graph = relaxed_caveman(5, 5, 0.3, seed=21)
    invalidate(graph)
    expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 4)}
    result = parallel_enumerate_maximal_kplexes(
        graph,
        2,
        4,
        ParallelConfig(num_workers=2, use_processes=True, shared_memory=True),
    )
    assert {p.as_set() for p in result.kplexes} == expected
    assert live_owned_segments() == []


def test_process_pool_pickled_fallback_matches_shared():
    graph = erdos_renyi(40, 0.3, seed=22)
    invalidate(graph)
    shared = parallel_enumerate_maximal_kplexes(
        graph,
        2,
        5,
        ParallelConfig(num_workers=2, use_processes=True, shared_memory=True),
    )
    pickled = parallel_enumerate_maximal_kplexes(
        graph,
        2,
        5,
        ParallelConfig(num_workers=2, use_processes=True, shared_memory=False),
    )
    assert {p.as_set() for p in shared.kplexes} == {
        p.as_set() for p in pickled.kplexes
    }
    assert live_owned_segments() == []


def test_share_works_for_both_csr_backends():
    from repro.graph.csr import available_csr_backends

    for backend in available_csr_backends():
        graph = erdos_renyi(30, 0.25, seed=3)
        invalidate(graph)
        prepared = prepare(graph, csr_backend=backend)
        prepared.position
        with prepared.share() as shared:
            assert shared.descriptor().csr_backend == backend
            attached = attach_prepared(shared.descriptor())
            assert attached.csr.neighbors_list(5) == prepared.csr.neighbors_list(5)
            assert attached.position == prepared.position
