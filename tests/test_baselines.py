"""Unit tests for the baseline algorithms."""

import pytest

from repro.baselines import (
    MAX_BRUTE_FORCE_VERTICES,
    BronKerboschKPlex,
    FPLike,
    ListPlexLike,
    bron_kerbosch_maximal_kplexes,
    brute_force_maximal_kplexes,
    brute_force_vertex_sets,
    find_maximum_kplex,
    fp_config,
    fp_maximal_kplexes,
    listplex_config,
    listplex_maximal_kplexes,
    maximum_kplex_size,
    maximum_kplex_with_witness,
)
from repro.core import is_kplex, is_maximal_kplex
from repro.errors import ParameterError
from repro.graph import Graph, generators

from _helpers import vertex_sets


# --------------------------------------------------------------------------- #
# Brute force oracle
# --------------------------------------------------------------------------- #
def test_brute_force_diamond(diamond):
    results = brute_force_maximal_kplexes(diamond, 2, 3)
    assert vertex_sets(results) == {frozenset({0, 1, 2, 3})}


def test_brute_force_respects_q(diamond):
    assert brute_force_maximal_kplexes(diamond, 1, 4) == []
    assert vertex_sets(brute_force_maximal_kplexes(diamond, 1, 3)) == {
        frozenset({0, 1, 2}),
        frozenset({1, 2, 3}),
    }


def test_brute_force_size_guard():
    graph = Graph.empty(MAX_BRUTE_FORCE_VERTICES + 1)
    with pytest.raises(ParameterError):
        brute_force_maximal_kplexes(graph, 1, 1)
    with pytest.raises(ParameterError):
        brute_force_maximal_kplexes(Graph.empty(3), 0, 1)


def test_brute_force_outputs_are_maximal():
    graph = generators.erdos_renyi(9, 0.5, seed=71)
    for members in brute_force_vertex_sets(graph, 2, 3):
        assert is_kplex(graph, members, 2)
        assert is_maximal_kplex(graph, members, 2)


# --------------------------------------------------------------------------- #
# Bron-Kerbosch (Algorithm 1)
# --------------------------------------------------------------------------- #
def test_bron_kerbosch_matches_brute_force():
    graph = generators.erdos_renyi(11, 0.45, seed=72)
    for k in (1, 2, 3):
        q = max(2 * k - 1, 2)
        assert vertex_sets(bron_kerbosch_maximal_kplexes(graph, k, q)) == brute_force_vertex_sets(
            graph, k, q
        )


def test_bron_kerbosch_accepts_small_q():
    # Unlike the decomposed algorithm, q may be below 2k - 1 here.
    graph = generators.path_graph(4)
    results = bron_kerbosch_maximal_kplexes(graph, 2, 2)
    assert all(is_maximal_kplex(graph, plex.vertices, 2) for plex in results)
    assert results  # the path has maximal 2-plexes of size >= 2


def test_bron_kerbosch_without_core_pruning_matches():
    graph = generators.erdos_renyi(12, 0.4, seed=73)
    with_core = BronKerboschKPlex(graph, 2, 4, use_core_pruning=True).run()
    without_core = BronKerboschKPlex(graph, 2, 4, use_core_pruning=False).run()
    assert vertex_sets(with_core) == vertex_sets(without_core)


def test_bron_kerbosch_statistics_populated():
    solver = BronKerboschKPlex(generators.relaxed_caveman(2, 5, 0.2, seed=1), 2, 4)
    results = solver.run()
    assert solver.statistics.outputs == len(results)
    assert solver.statistics.branch_calls > 0


# --------------------------------------------------------------------------- #
# ListPlex-like and FP-like baselines
# --------------------------------------------------------------------------- #
def test_listplex_config_disables_bounds():
    config = listplex_config()
    assert not config.use_upper_bound
    assert not config.use_pair_pruning
    assert not config.use_seed_upper_bound
    assert config.branching == "faplexen"


def test_fp_config_uses_sorting_bound():
    config = fp_config()
    assert config.use_upper_bound
    assert config.upper_bound_method == "fp"
    assert not config.use_pair_pruning


def test_listplex_and_fp_match_brute_force():
    graph = generators.erdos_renyi(12, 0.5, seed=74)
    k, q = 2, 3
    expected = brute_force_vertex_sets(graph, k, q)
    assert vertex_sets(listplex_maximal_kplexes(graph, k, q)) == expected
    assert vertex_sets(fp_maximal_kplexes(graph, k, q)) == expected


def test_fp_like_single_task_per_seed():
    graph = generators.relaxed_caveman(3, 6, 0.25, seed=75)
    runner = FPLike(graph, 2, 5)
    runner.run()
    # FP creates exactly one sub-task per surviving seed (no S decomposition).
    assert runner.statistics.subtasks == runner.statistics.seeds


def test_listplex_like_exposes_statistics():
    runner = ListPlexLike(generators.relaxed_caveman(3, 6, 0.25, seed=76), 2, 5)
    result = runner.run()
    assert runner.statistics.branch_calls > 0
    assert result.count == len(result.kplexes)


# --------------------------------------------------------------------------- #
# Maximum k-plex extension
# --------------------------------------------------------------------------- #
def test_maximum_kplex_on_known_graphs():
    assert maximum_kplex_size(Graph.complete(6), 1) == 6
    assert maximum_kplex_size(generators.complete_multipartite([2, 2, 2]), 2) >= 4
    diamond = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    assert maximum_kplex_size(diamond, 2) == 4


def test_maximum_kplex_matches_brute_force():
    graph = generators.erdos_renyi(12, 0.45, seed=77)
    for k in (2, 3):
        sizes = [len(p) for p in brute_force_vertex_sets(graph, k, 2 * k - 1)]
        expected = max(sizes) if sizes else 0
        assert maximum_kplex_size(graph, k) == expected


def test_maximum_kplex_none_when_graph_too_sparse():
    graph = generators.path_graph(6)
    assert find_maximum_kplex(graph, 3) is None
    size, witness = maximum_kplex_with_witness(graph, 3)
    assert size == 0 and witness is None


def test_maximum_kplex_witness_is_valid():
    graph = generators.relaxed_caveman(3, 7, 0.2, seed=78)
    size, witness = maximum_kplex_with_witness(graph, 2)
    assert witness is not None
    assert witness.size == size
    assert is_kplex(graph, witness.vertices, 2)
