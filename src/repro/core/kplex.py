"""The k-plex model: definitions, checkers and the result record.

A vertex set ``P`` is a *k-plex* of ``G`` when every member is adjacent to all
but at most ``k`` vertices of ``P`` (counting itself as one of the missed
vertices), i.e. ``d_P(v) >= |P| - k`` for every ``v ∈ P`` (Definition 3.1).
A k-plex is *maximal* when no proper superset is a k-plex; by the hereditary
property (Theorem 3.2) it suffices to check single-vertex extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from ..errors import ParameterError
from ..graph import Graph
from ..graph.properties import is_connected_subset, subset_diameter


@dataclass(frozen=True)
class KPlex:
    """A k-plex result.

    Attributes
    ----------
    vertices:
        The member vertex ids (internal ids of the graph that was mined),
        stored sorted for deterministic comparisons.
    labels:
        The caller-facing labels of the members, aligned with ``vertices``.
    k:
        The relaxation parameter the set was mined with.
    """

    vertices: Tuple[int, ...]
    labels: Tuple[Hashable, ...] = field(default=())
    k: int = 1

    @classmethod
    def from_vertices(cls, graph: Graph, vertices: Iterable[int], k: int) -> "KPlex":
        """Build a :class:`KPlex` from internal vertex ids of ``graph``."""
        ordered = tuple(sorted(vertices))
        return cls(vertices=ordered, labels=tuple(graph.label(v) for v in ordered), k=k)

    @property
    def size(self) -> int:
        """Number of member vertices."""
        return len(self.vertices)

    def as_set(self) -> FrozenSet[int]:
        """Return the members as a frozen set of internal vertex ids."""
        return frozenset(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self.vertices

    def __iter__(self):
        return iter(self.vertices)


def validate_parameters(k: int, q: int, enforce_diameter_bound: bool = True) -> None:
    """Validate the mining parameters ``k`` and ``q``.

    The enumeration algorithm relies on Theorem 3.3 (diameter of a k-plex with
    at least ``2k - 1`` vertices is at most two), so the size threshold must
    satisfy ``q >= 2k - 1`` (Definition 3.4).  Checkers that do not rely on
    the seed decomposition may pass ``enforce_diameter_bound=False``.
    """
    if k < 1:
        raise ParameterError(f"k must be a positive integer, got {k}")
    if q < 1:
        raise ParameterError(f"q must be a positive integer, got {q}")
    if enforce_diameter_bound and q < 2 * k - 1:
        raise ParameterError(
            f"q must be at least 2k - 1 = {2 * k - 1} (Definition 3.4) to guarantee "
            f"connected results, got q={q}"
        )


def validate_query_vertices(graph: Graph, query_vertices: Iterable[int], q: int) -> Tuple[int, ...]:
    """Validate a set of query vertices for anchored (community-search) enumeration.

    Returns the deduplicated, sorted query tuple.  Raises
    :class:`~repro.errors.ParameterError` when the query is empty, refers to
    vertices outside ``graph``, or is already larger than the size threshold
    ``q`` (in which case no maximal k-plex of size ``>= q`` can contain it as
    a *proper* anchor — plain enumeration should be used instead).
    """
    query = tuple(sorted(set(query_vertices)))
    if not query:
        raise ParameterError("at least one query vertex is required")
    for vertex in query:
        if vertex not in graph:
            raise ParameterError(f"query vertex {vertex} is not in the graph")
    if len(query) > q:
        raise ParameterError("the query is already larger than q; use plain enumeration")
    return query


def non_neighbor_count(graph: Graph, vertex: int, members: FrozenSet[int]) -> int:
    """Return ``\\bar d_P(vertex)``: non-neighbours of ``vertex`` inside ``members``.

    The vertex counts itself as a non-neighbour when it is a member, matching
    the convention of Definition 3.1.
    """
    adjacent = graph.neighbors(vertex)
    return sum(1 for member in members if member != vertex and member not in adjacent) + (
        1 if vertex in members else 0
    )


def is_kplex(graph: Graph, vertices: Iterable[int], k: int) -> bool:
    """Return ``True`` when ``vertices`` induces a k-plex of ``graph``."""
    members = frozenset(vertices)
    if not members:
        return True
    threshold = len(members) - k
    for vertex in members:
        degree_inside = sum(1 for w in graph.neighbors(vertex) if w in members)
        if degree_inside < threshold:
            return False
    return True


def can_extend(graph: Graph, members: FrozenSet[int], candidate: int, k: int) -> bool:
    """Return ``True`` when ``members ∪ {candidate}`` is a k-plex.

    ``members`` is assumed to already be a k-plex; the incremental check costs
    ``O(|members|)`` instead of re-validating the whole set.
    """
    if candidate in members:
        return True
    size_after = len(members) + 1
    adjacent = graph.neighbors(candidate)
    inside = sum(1 for member in members if member in adjacent)
    if inside < size_after - k:
        return False
    for member in members:
        if member in adjacent:
            continue
        degree_inside = sum(1 for w in graph.neighbors(member) if w in members)
        if degree_inside + 0 < size_after - k:
            return False
    return True


def is_maximal_kplex(graph: Graph, vertices: Iterable[int], k: int) -> bool:
    """Return ``True`` when ``vertices`` is a k-plex that no single vertex extends."""
    members = frozenset(vertices)
    if not is_kplex(graph, members, k):
        return False
    for candidate in graph.vertices():
        if candidate in members:
            continue
        if can_extend(graph, members, candidate, k):
            return False
    return True


def saturated_vertices(graph: Graph, members: FrozenSet[int], k: int) -> FrozenSet[int]:
    """Return the saturated members: those with exactly ``k`` non-neighbours inside.

    A saturated vertex cannot tolerate another non-neighbour, so every vertex
    added to the k-plex must be adjacent to all of them.  This is the property
    the paper's pivot selection maximises.
    """
    return frozenset(
        vertex for vertex in members if non_neighbor_count(graph, vertex, members) == k
    )


def support_number(graph: Graph, members: FrozenSet[int], vertex: int, k: int) -> int:
    """Return ``sup_P(vertex) = k - \\bar d_P(vertex)`` (Section 5 of the paper)."""
    return k - non_neighbor_count(graph, vertex, members)


def kplex_diameter_ok(graph: Graph, vertices: Iterable[int], k: int) -> bool:
    """Check the Theorem 3.3 property for a k-plex with at least ``2k - 1`` vertices.

    Returns ``True`` when the induced subgraph is connected with diameter at
    most two, or when the premise (``|P| >= 2k - 1``) does not apply.
    """
    members = frozenset(vertices)
    if len(members) < 2 * k - 1:
        return True
    if not is_connected_subset(graph, members):
        return False
    return subset_diameter(graph, members) <= 2


def verify_kplex(
    graph: Graph,
    vertices: Iterable[int],
    k: int,
    q: Optional[int] = None,
    require_maximal: bool = True,
) -> None:
    """Raise :class:`AssertionError` with a precise message when a result is invalid.

    This is the strict checker used by the test-suite and by
    :mod:`repro.analysis.verification` when cross-checking algorithm outputs.
    """
    members = frozenset(vertices)
    if not is_kplex(graph, members, k):
        raise AssertionError(f"{sorted(members)} is not a {k}-plex")
    if q is not None and len(members) < q:
        raise AssertionError(f"{sorted(members)} has fewer than q={q} vertices")
    if require_maximal and not is_maximal_kplex(graph, members, k):
        raise AssertionError(f"{sorted(members)} is not maximal")


def deduplicate(results: Sequence[KPlex]) -> Tuple[KPlex, ...]:
    """Return ``results`` with duplicate vertex sets removed (order preserved)."""
    seen = set()
    unique = []
    for plex in results:
        key = plex.vertices
        if key not in seen:
            seen.add(key)
            unique.append(plex)
    return tuple(unique)
