"""Unit tests for the dense bitset subgraph representation."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph, generators
from repro.graph.dense import DenseSubgraph, external_adjacency_mask


@pytest.fixture
def parent() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 0), (4, 5)])


def test_dense_subgraph_adjacency_matches_parent(parent):
    dense = DenseSubgraph(parent, [0, 1, 2, 3])
    for u in range(4):
        for v in range(4):
            if u == v:
                continue
            assert dense.has_edge(u, v) == parent.has_edge(dense.parent_of(u), dense.parent_of(v))


def test_degree_and_degree_in(parent):
    dense = DenseSubgraph(parent, [0, 1, 2, 3])
    local_zero = dense.local_of(0)
    assert dense.degree(local_zero) == 3  # 1, 2, 3 inside, vertex 4 excluded
    mask_12 = dense.mask_of_parents([1, 2])
    assert dense.degree_in(local_zero, mask_12) == 2


def test_non_neighbors_in_counts_self(parent):
    dense = DenseSubgraph(parent, [0, 1, 2, 3])
    local_one = dense.local_of(1)
    all_mask = dense.full_mask
    # Vertex 1 misses the edge to 3 and counts itself.
    assert dense.non_neighbors_in(local_one, all_mask) == 2


def test_mask_round_trip(parent):
    dense = DenseSubgraph(parent, [0, 2, 4])
    mask = dense.mask_of_parents([0, 4])
    assert sorted(dense.parents_of_mask(mask)) == [0, 4]


def test_common_neighbors_count(parent):
    dense = DenseSubgraph(parent, [0, 1, 2, 3])
    u = dense.local_of(1)
    v = dense.local_of(3)
    assert dense.common_neighbors_count(u, v) == 2  # vertices 0 and 2
    within = dense.mask_of_parents([0])
    assert dense.common_neighbors_count(u, v, within=within) == 1


def test_restrict(parent):
    dense = DenseSubgraph(parent, [0, 1, 2, 3])
    keep = dense.mask_of_parents([0, 1, 2])
    restricted = dense.restrict(keep)
    assert restricted.size == 3
    assert restricted.parent is parent
    assert sorted(restricted.vertices) == [0, 1, 2]


def test_to_graph_round_trip(parent):
    dense = DenseSubgraph(parent, [0, 1, 2, 3])
    graph, mapping = dense.to_graph()
    expected, _ = parent.induced_subgraph([0, 1, 2, 3])
    assert graph.num_edges == expected.num_edges
    assert mapping == [0, 1, 2, 3]


def test_duplicate_vertices_rejected(parent):
    with pytest.raises(GraphError):
        DenseSubgraph(parent, [0, 0, 1])


def test_local_of_unknown_vertex_raises(parent):
    dense = DenseSubgraph(parent, [0, 1])
    with pytest.raises(GraphError):
        dense.local_of(3)


def test_external_adjacency_mask(parent):
    dense = DenseSubgraph(parent, [0, 1, 2])
    mask = external_adjacency_mask(dense, 4)  # vertex 4 is adjacent to 0 only
    assert dense.parents_of_mask(mask) == [0]
    assert external_adjacency_mask(dense, 5) == 0


def test_repr_mentions_size(parent):
    dense = DenseSubgraph(parent, [0, 1, 2])
    assert "size=3" in repr(dense)


def test_dense_subgraph_on_random_graph_degrees_match():
    graph = generators.erdos_renyi(30, 0.3, seed=11)
    vertices = list(range(0, 30, 2))
    dense = DenseSubgraph(graph, vertices)
    induced, mapping = graph.induced_subgraph(vertices)
    for local, parent_vertex in enumerate(dense.vertices):
        induced_local = mapping.index(parent_vertex)
        assert dense.degree(local) == induced.degree(induced_local)
