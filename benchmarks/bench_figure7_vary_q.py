"""Figures 7 / 14 — sequential running time of FP, ListPlex and Ours as q varies.

The paper's observation: Ours is the fastest for every q, and the gap widens
as q shrinks (more sub-tasks, so the pruning techniques matter more).  With
``REPRO_BENCH_SCALE=full`` the sweep covers the additional datasets of the
appendix Figure 14.
"""

from repro.analysis.reporting import render_series
from repro.experiments import figure7_vary_q

from _bench_utils import run_once


def test_figure7_vary_q(benchmark, scale):
    figures = run_once(benchmark, figure7_vary_q, scale)
    assert figures
    print()
    for name, series in figures.items():
        # Every algorithm was run on every q of the sweep.
        lengths = {algorithm: len(points) for algorithm, points in series.items()}
        assert len(set(lengths.values())) == 1
        # Shape: summed over the sweep, Ours is not slower than the baselines.
        totals = {algorithm: sum(points.values()) for algorithm, points in series.items()}
        assert totals["Ours"] <= totals["ListPlex"] * 1.05
        assert totals["Ours"] <= totals["FP"] * 1.05
        print(render_series(series, x_label="q", title=f"Figure 7 — {name} (seconds)"))
        print()
