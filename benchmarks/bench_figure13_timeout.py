"""Figure 13 — effect of the straggler timeout τ_time on the parallel runtime.

The paper sweeps τ from 1e-3 ms to 1e2 ms and finds a shallow optimum: very
small values pay task-materialisation overhead, very large values (and the
no-timeout limit, i.e. ListPlex-style scheduling) suffer from stragglers.
"""

from repro.analysis.reporting import render_series
from repro.experiments import figure13_timeout

from _bench_utils import run_once


def test_figure13_timeout(benchmark, scale):
    series = run_once(benchmark, figure13_timeout, scale)
    assert series
    for name, curve in series.items():
        finite = {tau: value for tau, value in curve.items() if tau != "inf"}
        best = min(finite.values())
        # The best finite timeout is never worse than disabling the timeout.
        assert best <= curve["inf"] * 1.001, name
    print()
    print(render_series(series, x_label="timeout (cost units)", title="Figure 13 — timeout sweep"))
