"""Unit tests for k-core decomposition and degeneracy ordering."""

from repro.graph import Graph, generators
from repro.graph.core_decomposition import (
    core_decomposition,
    degeneracy,
    degeneracy_ordering,
    k_core_subgraph,
    k_core_vertices,
    shrink_to_core,
    validate_degeneracy_ordering,
)


def test_degeneracy_of_basic_graphs():
    assert degeneracy(Graph.complete(5)) == 4
    assert degeneracy(generators.cycle_graph(6)) == 2
    assert degeneracy(generators.star_graph(7)) == 1
    assert degeneracy(generators.path_graph(4)) == 1
    assert degeneracy(Graph.empty(3)) == 0


def test_degeneracy_empty_graph():
    decomposition = core_decomposition(Graph.empty(0))
    assert decomposition.order == []
    assert decomposition.degeneracy == 0


def test_ordering_is_permutation_and_valid():
    graph = generators.erdos_renyi(40, 0.15, seed=3)
    order = degeneracy_ordering(graph)
    assert sorted(order) == list(range(graph.num_vertices))
    assert validate_degeneracy_ordering(graph, order)


def test_validate_rejects_bad_ordering():
    graph = generators.star_graph(5)
    # Putting the hub first maximises its later-neighbour count (5 > D = 1).
    bad_order = [0, 1, 2, 3, 4, 5]
    assert not validate_degeneracy_ordering(graph, bad_order)
    assert not validate_degeneracy_ordering(graph, [0, 1])


def test_core_numbers_monotone_along_shells():
    graph = generators.ring_of_cliques(3, 5)
    decomposition = core_decomposition(graph)
    assert decomposition.degeneracy == 4
    shells = decomposition.shells()
    assert sum(len(members) for members in shells.values()) == graph.num_vertices


def test_position_inverse_of_order():
    graph = generators.erdos_renyi(25, 0.2, seed=9)
    decomposition = core_decomposition(graph)
    position = decomposition.position()
    for index, vertex in enumerate(decomposition.order):
        assert position[vertex] == index


def test_k_core_vertices_minimum_degree():
    graph = generators.barabasi_albert(60, 3, seed=1)
    for k in (1, 2, 3):
        core = k_core_vertices(graph, k)
        sub, _ = graph.induced_subgraph(core)
        if sub.num_vertices:
            assert min(sub.degrees()) >= k


def test_k_core_of_clique_plus_pendant():
    clique = Graph.complete(4)
    edges = list(clique.edges()) + [(0, 4)]
    graph = Graph.from_edges(edges)
    assert k_core_vertices(graph, 3) == {0, 1, 2, 3}
    assert k_core_vertices(graph, 4) == set()
    assert k_core_vertices(graph, 0) == set(range(5))


def test_k_core_subgraph_and_shrink_to_core_agree():
    graph = generators.erdos_renyi(30, 0.2, seed=4)
    first, map_first = k_core_subgraph(graph, 2)
    second, map_second = shrink_to_core(graph, 2)
    assert first == second
    assert map_first == map_second


def test_degeneracy_ordering_later_neighbours_bounded():
    graph = generators.barabasi_albert(80, 4, seed=2)
    decomposition = core_decomposition(graph)
    position = decomposition.position()
    cap = decomposition.degeneracy
    for vertex in graph.vertices():
        later = sum(1 for w in graph.neighbors(vertex) if position[w] > position[vertex])
        assert later <= cap
