"""HTTP serving demo: boot the server, drive it with the client, restart warm.

Run with::

    python examples/http_demo.py

The example walks the whole deployment story end to end, exactly the way a
supervisor (systemd, Kubernetes) and a remote client would:

1. boot ``kplex-enum serve-http`` as a real subprocess on an ephemeral
   port with a warm-state snapshot configured;
2. register a generator graph over the wire and run repeated solves —
   misses first, then cache hits;
3. scrape ``GET /v1/metrics`` (JSON and Prometheus text) and ``/healthz``;
4. stop the server with SIGTERM and assert a clean drain (exit code 0,
   snapshot written);
5. boot a *second* server with ``--warm-start`` and show that the same
   query is answered from the replayed cache at wire latency.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Make the subprocess and the in-process client share one import path, so
# the demo works from a source checkout without installation.
SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.graph import generators  # noqa: E402
from repro.server import ServiceClient  # noqa: E402


def boot_server(snapshot: str, warm_start: bool) -> "tuple[subprocess.Popen, ServiceClient]":
    """Start ``kplex-enum serve-http`` and wait until it accepts requests."""
    command = [
        sys.executable, "-m", "repro.cli", "serve-http",
        "--host", "127.0.0.1", "--port", "0",
        "--workers", "2", "--snapshot", snapshot,
    ]
    if warm_start:
        command.append("--warm-start")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env
    )
    boot_line = process.stdout.readline().strip()  # "serving on http://..."
    url = boot_line.rsplit(" ", 1)[-1]
    client = ServiceClient(url)
    client.wait_ready()
    print(f"booted: {boot_line} (pid {process.pid})")
    return process, client


def stop_server(process: subprocess.Popen) -> None:
    """SIGTERM -> graceful drain -> clean exit."""
    process.send_signal(signal.SIGTERM)
    process.wait(timeout=60)
    assert process.returncode == 0, f"server exited with {process.returncode}"
    print(f"SIGTERM -> drained, exit code {process.returncode}")


def main() -> None:
    snapshot = os.path.join(tempfile.mkdtemp(prefix="kplex-http-demo-"), "warm.json")
    graph = generators.ring_of_cliques(num_cliques=6, clique_size=6)

    # ---- generation 1: cold boot, live traffic, snapshot at drain ---- #
    process, client = boot_server(snapshot, warm_start=False)
    entry = client.register(
        "ring",
        edges=list(graph.edges()),
        vertices=graph.labels(),
        prewarm=[(2, 5)],
    )
    print(f"registered {entry['name']}: {entry['vertices']} vertices, "
          f"{entry['edges']} edges, prewarmed levels {entry['prewarmed_levels']}")

    started = time.perf_counter()
    first = client.solve("ring", k=2, q=5, include_results=False)
    cold_ms = (time.perf_counter() - started) * 1e3
    started = time.perf_counter()
    client.solve("ring", k=2, q=5, include_results=False)
    hit_ms = (time.perf_counter() - started) * 1e3
    print(f"solve: {first['count']} maximal 2-plexes "
          f"(miss {cold_ms:.1f} ms, hit {hit_ms:.1f} ms)")

    health = client.health()
    metrics = client.metrics()
    prometheus = client.metrics(fmt="prometheus")
    print(f"healthz: {health['status']}; hit rate {metrics['hit_rate']:.2f}")
    print("prometheus sample:",
          next(line for line in prometheus.splitlines() if line.startswith("kplex_hit_rate")))

    stop_server(process)
    assert os.path.exists(snapshot), "drain must write the snapshot"
    print(f"snapshot written: {snapshot}")

    # ---- generation 2: warm restart serves the same query from cache ---- #
    process, client = boot_server(snapshot, warm_start=True)
    started = time.perf_counter()
    warm = client.solve("ring", k=2, q=5, include_results=False)
    warm_ms = (time.perf_counter() - started) * 1e3
    warm_metrics = client.metrics()
    assert warm["count"] == first["count"]
    assert warm_metrics["cache_hits"] >= 1, "warm start must produce a cache hit"
    print(f"warm restart: same {warm['count']} results in {warm_ms:.1f} ms, "
          f"hits after one query: {warm_metrics['cache_hits']}")
    stop_server(process)
    print("demo complete: restart was warm, shutdown was clean")


if __name__ == "__main__":
    main()
