"""Stdlib HTTP client for the k-plex serving front-end.

:class:`ServiceClient` speaks the JSON wire contract of
:mod:`repro.server.handlers` over :mod:`urllib` — no dependencies, so any
Python process (or a curl one-liner, see the README's Deployment section)
can drive a remote server.  Structured error bodies are mapped back onto
the library's exception types: a ``429`` raises
:class:`~repro.errors.ServiceOverloadError` exactly as a local
:class:`~repro.service.KPlexService` would, unknown graphs raise
:class:`~repro.errors.CatalogError`, validation problems raise
:class:`~repro.errors.ParameterError`, and anything unmapped raises
:class:`~repro.errors.RemoteServiceError` carrying the HTTP status.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import (
    CatalogError,
    GraphError,
    ParameterError,
    RemoteServiceError,
    ServiceClosedError,
    ServiceOverloadError,
    SnapshotError,
)

#: ``error.type`` labels mapped back onto local exception types.
_ERROR_TYPES = {
    "ServiceOverloadError": ServiceOverloadError,
    "ServiceClosedError": ServiceClosedError,
    "CatalogError": CatalogError,
    "ParameterError": ParameterError,
    "GraphError": GraphError,
    "SnapshotError": SnapshotError,
}


class ServiceClient:
    """Minimal blocking client for one server base URL.

    >>> client = ServiceClient("http://127.0.0.1:8080")   # doctest: +SKIP
    >>> client.register("toy", edges=[(0, 1), (1, 2), (0, 2)])  # doctest: +SKIP
    >>> client.solve("toy", k=2, q=3)["count"]            # doctest: +SKIP
    1
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """``GET /healthz`` — returns the body even while draining (503)."""
        try:
            return self._call("GET", "/healthz")  # type: ignore[return-value]
        except RemoteServiceError as exc:
            if exc.status == 503:
                return {"status": "draining"}
            raise

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll :meth:`health` until the server answers ``ok``."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                if self.health().get("status") == "ok":
                    return
            except (OSError, RemoteServiceError) as exc:
                last_error = exc
            time.sleep(interval)
        raise RemoteServiceError(
            f"server at {self.base_url} not ready after {timeout}s "
            f"(last error: {last_error})"
        )

    def graphs(self) -> List[Dict[str, object]]:
        """``GET /v1/graphs`` — the catalog listing."""
        return self._call("GET", "/v1/graphs")["graphs"]  # type: ignore[index]

    def register(
        self,
        name: str,
        edges: Optional[Sequence[Tuple[object, object]]] = None,
        vertices: Optional[Sequence[object]] = None,
        path: Optional[str] = None,
        dataset: Optional[str] = None,
        prewarm: Optional[Sequence[Tuple[int, int]]] = None,
        replace: bool = False,
        fmt: str = "auto",
    ) -> Dict[str, object]:
        """``POST /v1/graphs`` — register by edges, file path or dataset name."""
        body: Dict[str, object] = {"name": name, "replace": replace, "fmt": fmt}
        if edges is not None:
            body["edges"] = [list(edge) for edge in edges]
            if vertices is not None:
                body["vertices"] = list(vertices)
        if path is not None:
            body["path"] = path
        if dataset is not None:
            body["dataset"] = dataset
        if prewarm is not None:
            body["prewarm"] = [list(pair) for pair in prewarm]
        return self._call("POST", "/v1/graphs", body)  # type: ignore[return-value]

    def solve(
        self,
        graph: str,
        k: int,
        q: int,
        solver: Optional[str] = None,
        variant: Optional[str] = None,
        config: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        max_results: Optional[int] = None,
        query: Optional[Sequence[object]] = None,
        options: Optional[Dict[str, object]] = None,
        include_results: bool = True,
    ) -> Dict[str, object]:
        """``POST /v1/solve`` — one enumeration over a registered graph."""
        body: Dict[str, object] = {
            "graph": graph,
            "k": k,
            "q": q,
            "include_results": include_results,
        }
        for key, value in (
            ("solver", solver),
            ("variant", variant),
            ("config", config),
            ("timeout", timeout),
            ("max_results", max_results),
            ("options", options),
        ):
            if value is not None:
                body[key] = value
        if query is not None:
            body["query"] = list(query)
        return self._call("POST", "/v1/solve", body)  # type: ignore[return-value]

    def metrics(self, fmt: Optional[str] = None) -> Union[Dict[str, object], str]:
        """``GET /v1/metrics`` — JSON dict, or text with ``fmt="prometheus"``."""
        suffix = f"?format={fmt}" if fmt else ""
        return self._call("GET", f"/v1/metrics{suffix}")

    def snapshot(self, path: Optional[str] = None) -> Dict[str, object]:
        """``POST /v1/snapshot`` — force a warm-state snapshot now."""
        body = {"path": path} if path else None
        return self._call("POST", "/v1/snapshot", body)  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _call(
        self,
        method: str,
        route: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Union[Dict[str, object], List[object], str]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{route}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return self._decode(response.read(), response.headers.get_content_type())
        except urllib.error.HTTPError as exc:
            raise self._to_exception(exc) from None
        except urllib.error.URLError as exc:
            raise RemoteServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _decode(raw: bytes, content_type: str) -> Union[Dict[str, object], List[object], str]:
        text = raw.decode("utf-8")
        if content_type == "application/json":
            return json.loads(text)
        return text

    @staticmethod
    def _to_exception(exc: urllib.error.HTTPError) -> Exception:
        status = exc.code
        kind, message = "", f"HTTP {status}: {exc.reason}"
        try:
            error = json.loads(exc.read().decode("utf-8")).get("error", {})
            kind = error.get("type", "")
            message = error.get("message", message)
        except (ValueError, OSError):
            pass
        mapped = _ERROR_TYPES.get(kind)
        if mapped is not None:
            return mapped(message)
        return RemoteServiceError(message, status=status, kind=kind)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        return None
