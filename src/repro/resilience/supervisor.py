"""Supervised pool execution: retry lost work, isolate poison, degrade.

:class:`PoolSupervisor` runs a set of independent tasks through an
executor pool it can *rebuild*.  A worker death marks the whole
``ProcessPoolExecutor`` broken and fails every pending future; naive
callers see :class:`~concurrent.futures.process.BrokenProcessPool` and
lose the entire run.  The supervisor instead:

1. keeps every result that completed before the crash,
2. rebuilds the pool (the shared-memory segment is still live, so a
   process-pool initializer re-attaches the same descriptor),
3. retries only the lost tasks under a :class:`RetryPolicy`,
4. re-runs crash suspects in *singleton* batches, so a deterministically
   crashing task is identified exactly and fails the run with a
   structured :class:`~repro.errors.PoisonTaskError` instead of cycling
   the pool forever,
5. falls back to in-process serial execution when pools cannot be (re)built
   or keep dying without an attributable culprit — degraded, but alive.

Tasks that *raise* (pool intact) are retried up to the policy's budget and
then also surface as :class:`PoisonTaskError`, preserving the original
exception as ``__cause__``.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import BrokenExecutor, Executor, Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import PoisonTaskError
from ..obs import log_event
from .retry import RetryPolicy
from .stats import resilience_stats

logger = logging.getLogger("repro.resilience")

#: A task that has crashed a pool this many times — the last time while
#: running *alone* — is declared poison.
POISON_CRASH_THRESHOLD = 2

DEFAULT_MAX_POOL_FAILURES = 4


@dataclass
class SupervisionReport:
    """What happened while supervising one run."""

    pool_failures: int = 0
    pool_recoveries: int = 0
    task_retries: int = 0
    degraded_serial: bool = False
    crash_suspects: List[Any] = field(default_factory=list)


class PoolSupervisor:
    """Run independent tasks through a rebuildable executor pool.

    Parameters
    ----------
    pool_factory:
        Zero-arg callable building a fresh pool; called again after each
        worker crash.  A factory failure triggers serial degradation.
    submit:
        ``submit(pool, item) -> Future`` dispatching one task.
    serial:
        ``serial(item) -> result`` computing one task in-process; the
        degradation path.  Must not depend on pool worker state.
    retry:
        Backoff/attempt budget for lost and failing tasks.
    stage_size:
        Tasks dispatched per batch in healthy operation (the paper's
        stage construction: ``num_workers`` consecutive seeds).
    max_pool_failures:
        Unattributable pool crashes tolerated before degrading to serial.
    """

    def __init__(
        self,
        pool_factory: Callable[[], Executor],
        submit: Callable[[Executor, Any], Future],
        serial: Callable[[Any], Any],
        *,
        retry: Optional[RetryPolicy] = None,
        stage_size: int = 1,
        max_pool_failures: int = DEFAULT_MAX_POOL_FAILURES,
        sleep: Callable[[float], None] = time.sleep,
        label: str = "pool",
    ) -> None:
        self._pool_factory = pool_factory
        self._submit = submit
        self._serial = serial
        self._retry = retry or RetryPolicy()
        self._stage_size = max(1, stage_size)
        self._max_pool_failures = max_pool_failures
        self._sleep = sleep
        self._label = label
        self._pool: Optional[Executor] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _abandon_pool(self) -> None:
        """Drop a broken pool without waiting on its corpse."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, items: Sequence[Any]) -> Tuple[List[Any], SupervisionReport]:
        """Execute every item; return results (in item order) and a report."""
        report = SupervisionReport()
        stats = resilience_stats()
        results: Dict[int, Any] = {}
        queue: deque = deque(enumerate(items))
        suspects: deque = deque()  # crash suspects, re-run one at a time
        crash_counts: Dict[int, int] = {}
        error_counts: Dict[int, int] = {}
        degraded = False

        try:
            try:
                self._pool = self._pool_factory()
            except Exception as exc:
                logger.warning(
                    "resilience: %s construction failed (%s: %s); "
                    "degrading to in-process serial execution",
                    self._label, type(exc).__name__, exc,
                )
                degraded = True

            while not degraded and (queue or suspects):
                if suspects:
                    batch = [suspects.popleft()]
                else:
                    batch = [queue.popleft() for _ in range(min(self._stage_size, len(queue)))]

                futures: Dict[Future, Tuple[int, Any]] = {}
                crashed = False
                unsubmitted: List[Tuple[int, Any]] = []
                for position, entry in enumerate(batch):
                    try:
                        futures[self._submit(self._pool, entry[1])] = entry
                    except BrokenExecutor:
                        crashed = True
                        unsubmitted = batch[position:]
                        break

                lost: List[Tuple[int, Any]] = []
                failed: List[Tuple[int, Any, BaseException]] = []
                for future, entry in futures.items():
                    try:
                        results[entry[0]] = future.result()
                    except BrokenExecutor:
                        crashed = True
                        lost.append(entry)
                    except Exception as exc:
                        failed.append((entry[0], entry[1], exc))

                # Never-started work goes straight back — no suspicion earned.
                queue.extendleft(reversed(unsubmitted))

                for idx, item, exc in failed:
                    error_counts[idx] = error_counts.get(idx, 0) + 1
                    if not self._retry.should_retry(error_counts[idx]):
                        stats.increment("poison_tasks")
                        raise PoisonTaskError(
                            f"task {item!r} failed {error_counts[idx]} times in "
                            f"{self._label} (last: {type(exc).__name__}: {exc}); "
                            "giving up",
                            item=item,
                            attempts=error_counts[idx],
                            mode="error",
                        ) from exc
                    report.task_retries += 1
                    stats.increment("task_retries")
                    log_event(
                        "task_retried",
                        level=logging.WARNING,
                        pool=self._label,
                        error=type(exc).__name__,
                        attempt=error_counts[idx],
                        max_attempts=self._retry.max_attempts,
                    )
                    logger.warning(
                        "resilience: task %r raised %s (attempt %d/%d); retrying",
                        item, type(exc).__name__,
                        error_counts[idx], self._retry.max_attempts,
                    )
                    queue.appendleft((idx, item))
                if failed and not crashed:
                    self._sleep(self._retry.backoff(max(error_counts[i] for i, _, _ in failed)))

                if crashed:
                    degraded = not self._recover(
                        lost, suspects, crash_counts, report, stats
                    )

            if queue or suspects:
                report.degraded_serial = True
                report.crash_suspects = [item for _, item in suspects]
                stats.increment("serial_fallbacks")
                stats.set_pool_degraded(True)
                log_event(
                    "serial_fallback",
                    level=logging.WARNING,
                    pool=self._label,
                    remaining_tasks=len(queue) + len(suspects),
                    pool_failures=report.pool_failures,
                )
                logger.warning(
                    "resilience: %s degraded to in-process serial execution "
                    "for %d remaining task(s) after %d pool failure(s)",
                    self._label, len(queue) + len(suspects), report.pool_failures,
                )
                for idx, item in list(suspects) + list(queue):
                    results[idx] = self._serial(item)
            else:
                stats.set_pool_degraded(False)
        finally:
            self.shutdown()

        return [results[idx] for idx in sorted(results)], report

    # ------------------------------------------------------------------ #
    # Crash handling
    # ------------------------------------------------------------------ #
    def _recover(
        self,
        lost: List[Tuple[int, Any]],
        suspects: deque,
        crash_counts: Dict[int, int],
        report: SupervisionReport,
        stats,
    ) -> bool:
        """Handle one broken pool; return True if pooled execution continues."""
        report.pool_failures += 1
        stats.increment("pool_failures")
        logger.warning(
            "resilience: %s broken (worker died) with %d task(s) in flight; "
            "failure %d/%d",
            self._label, len(lost), report.pool_failures, self._max_pool_failures,
        )

        for idx, item in lost:
            crash_counts[idx] = crash_counts.get(idx, 0) + 1
            # A task that crashed the pool while running *alone* — after
            # already being implicated once — is deterministically poison.
            if len(lost) == 1 and crash_counts[idx] >= POISON_CRASH_THRESHOLD:
                stats.increment("poison_tasks")
                raise PoisonTaskError(
                    f"task {item!r} crashed its worker process "
                    f"{crash_counts[idx]} times (isolated re-run confirmed); "
                    "refusing to retry further",
                    item=item,
                    attempts=crash_counts[idx],
                    mode="crash",
                )
        # Re-run every implicated task one at a time so the next crash is
        # attributable to exactly one of them.
        suspects.extend(lost)

        self._abandon_pool()
        if report.pool_failures >= self._max_pool_failures:
            logger.warning(
                "resilience: %s failed %d times without an attributable "
                "poison task; giving up on pooled execution",
                self._label, report.pool_failures,
            )
            return False
        self._sleep(self._retry.backoff(report.pool_failures))
        try:
            self._pool = self._pool_factory()
        except Exception as exc:
            logger.warning(
                "resilience: %s rebuild failed (%s: %s); degrading",
                self._label, type(exc).__name__, exc,
            )
            return False
        report.pool_recoveries += 1
        stats.increment("pool_recoveries")
        log_event(
            "pool_recovered",
            level=logging.WARNING,
            pool=self._label,
            pool_failures=report.pool_failures,
            lost_tasks=len(lost),
        )
        logger.warning(
            "resilience: %s rebuilt; retrying %d lost task(s)",
            self._label, len(lost),
        )
        return True
