"""Table 6 — ablation of the pruning rules R1 (Theorem 5.7) and R2 (pair pruning).

The paper reports that both rules reduce running time, with the combination
(``Ours``) up to 7x faster than ``Basic``; the branch-count columns make the
pruning effect visible even where wall-clock differences are small.
"""

from repro.analysis.reporting import render_table
from repro.experiments import table6_pruning_ablation

from _bench_utils import run_once


def test_table6_pruning_ablation(benchmark, scale):
    rows = run_once(benchmark, table6_pruning_ablation, scale)
    assert rows
    # Pruning rules shrink the explored search tree in aggregate (individual
    # rows may tie when the workload is tiny).
    total = {
        name: sum(row[f"{name}_branches"] for row in rows)
        for name in ("Basic", "Basic+R1", "Basic+R2", "Ours")
    }
    assert total["Ours"] <= total["Basic"]
    assert total["Basic+R1"] <= total["Basic"] * 1.02
    assert total["Basic+R2"] <= total["Basic"] * 1.02
    print()
    print(render_table(rows, title="Table 6 — pruning-rule ablation"))
