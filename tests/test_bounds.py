"""Unit tests for the upper bounds (Theorems 5.3, 5.5, 5.7 and Lemma 5.12).

Besides the worked examples of the paper, the bounds are validated against
brute force: for random small seed subgraphs the true maximum k-plex that
extends the current ``P`` inside ``P ∪ C`` is computed exhaustively and every
bound must dominate it.
"""

import itertools
import random

from repro.core.bounds import (
    degree_bound,
    fp_style_bound,
    pairwise_bound,
    seed_task_bound,
    support_bound,
)
from repro.core.kplex import is_kplex
from repro.graph import generators
from repro.graph.bitset import bits_to_list, iter_bits, mask_from_indices
from repro.graph.dense import DenseSubgraph


def _figure3_subgraph():
    graph = generators.paper_figure3_graph()
    order = [graph.index_of(f"v{i}") for i in range(1, 8)]
    dense = DenseSubgraph(graph, order)
    # Local indices now follow v1..v7 = 0..6.
    return graph, dense


def test_example_54_degree_bound():
    """Example 5.4: P = {v1, v3}, k = 2 gives the bound min(3, 2) + 2 = 4."""
    _, dense = _figure3_subgraph()
    degrees = [dense.degree(v) for v in range(dense.size)]
    members = [0, 2]  # v1 and v3
    assert degrees[0] == 3
    assert degrees[2] == 2
    assert degree_bound(degrees, members, k=2) == 4


def test_degree_bound_empty_members():
    _, dense = _figure3_subgraph()
    degrees = [dense.degree(v) for v in range(dense.size)]
    assert degree_bound(degrees, [], k=2) == dense.size + 2


def test_example_56_support_bound():
    """Example 5.6: P = {v1, v3}, C = {v2, v5, v7}, pivot v7 gives bound 3."""
    _, dense = _figure3_subgraph()
    p_mask = mask_from_indices([0, 2])  # v1, v3
    c_mask = mask_from_indices([1, 4, 6])  # v2, v5, v7
    pivot = 6  # v7
    assert support_bound(dense, p_mask, c_mask, pivot, k=2) == 3


def test_fp_style_bound_is_also_a_valid_bound_on_example():
    _, dense = _figure3_subgraph()
    p_mask = mask_from_indices([0, 2])
    c_mask = mask_from_indices([1, 4, 6])
    assert fp_style_bound(dense, p_mask, c_mask, 6, k=2) >= 3


def _maximum_extension_size(dense, p_mask, c_mask, extra, k):
    """Brute-force maximum k-plex containing ``P ∪ extra`` inside ``P ∪ C``."""
    base = set(bits_to_list(p_mask)) | set(extra)
    candidates = [v for v in bits_to_list(c_mask) if v not in extra]
    graph, mapping = dense.to_graph()
    best = 0
    for size in range(len(candidates), -1, -1):
        for chosen in itertools.combinations(candidates, size):
            members = base | set(chosen)
            if is_kplex(graph, members, k):
                best = max(best, len(members))
                break
        if best:
            break
    return best


def test_support_bound_dominates_brute_force_on_random_subgraphs():
    rng = random.Random(7)
    for trial in range(30):
        graph = generators.erdos_renyi(9, rng.choice([0.4, 0.6]), seed=100 + trial)
        dense = DenseSubgraph(graph, list(range(9)))
        k = rng.choice([2, 3])
        p_vertices = [0, 1]
        if not is_kplex(graph, p_vertices, k):
            continue
        p_mask = mask_from_indices(p_vertices)
        c_mask = mask_from_indices(range(2, 9))
        for pivot in iter_bits(c_mask):
            # The bound targets k-plexes containing P ∪ {pivot}.
            if not is_kplex(graph, p_vertices + [pivot], k):
                continue
            truth = _maximum_extension_size(dense, p_mask, c_mask, [pivot], k)
            assert support_bound(dense, p_mask, c_mask, pivot, k) >= truth
            assert fp_style_bound(dense, p_mask, c_mask, pivot, k) >= truth
            degrees = [dense.degree(v) for v in range(dense.size)]
            assert degree_bound(degrees, p_vertices + [pivot], k) >= truth


def test_seed_task_bound_dominates_brute_force():
    rng = random.Random(11)
    checked = 0
    for trial in range(40):
        graph = generators.erdos_renyi(9, 0.5, seed=500 + trial)
        k = 2
        seed_vertex = 0
        neighbors = sorted(graph.neighbors(seed_vertex))
        non_neighbors = [v for v in range(1, 9) if v not in neighbors]
        if not neighbors or not non_neighbors:
            continue
        s_vertex = non_neighbors[0]
        dense = DenseSubgraph(graph, [seed_vertex] + neighbors + non_neighbors)
        p_mask = mask_from_indices([dense.local_of(seed_vertex), dense.local_of(s_vertex)])
        c_mask = mask_from_indices(dense.local_of(v) for v in neighbors)
        degrees = [dense.degree(v) for v in range(dense.size)]
        bound = seed_task_bound(dense, dense.local_of(seed_vertex), p_mask, c_mask, degrees, k)
        truth = _maximum_extension_size(dense, p_mask, c_mask, [], k)
        if truth == 0:
            # P_S itself is not extendable into any valid k-plex; the bound
            # still upper-bounds |P_S|.
            truth = 2 if is_kplex(graph, [seed_vertex, s_vertex], k) else 0
        assert bound >= truth
        checked += 1
    assert checked >= 10


def test_pairwise_bound_dominates_brute_force():
    rng = random.Random(13)
    for trial in range(25):
        graph = generators.erdos_renyi(9, 0.55, seed=900 + trial)
        k = 2
        p_vertices = [0, 1, 2]
        if not is_kplex(graph, p_vertices, k):
            continue
        dense = DenseSubgraph(graph, list(range(9)))
        p_mask = mask_from_indices(p_vertices)
        c_mask = mask_from_indices(range(3, 9))
        truth = _maximum_extension_size(dense, p_mask, c_mask, [], k)
        assert pairwise_bound(dense, p_mask, c_mask, k) >= truth


def test_pairwise_bound_small_p_degenerates_gracefully():
    _, dense = _figure3_subgraph()
    p_mask = mask_from_indices([0])
    c_mask = mask_from_indices([1, 4, 6])
    assert pairwise_bound(dense, p_mask, c_mask, 2) == 1 + 3
