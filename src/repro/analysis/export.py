"""Exporting and re-importing enumeration results.

Downstream pipelines (community labelling, biological enrichment analysis)
rarely consume Python objects directly, so the library can write results to
the three formats k-plex tools commonly exchange:

* **plain text** — one k-plex per line, members separated by spaces (the
  format used by the released ListPlex / kPlexS binaries);
* **CSV** — one row per k-plex with id, size and the member list;
* **JSON lines** — one JSON object per k-plex, keeping the original labels.

The matching readers load files back into plain vertex-set form so exported
results can be diffed and verified (``verify_results``) in a later session.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Hashable, List, Sequence, Tuple, Union

from ..core.kplex import KPlex
from ..errors import FormatError

PathLike = Union[str, Path]

FORMAT_TEXT = "text"
FORMAT_CSV = "csv"
FORMAT_JSONL = "jsonl"
_KNOWN_FORMATS = (FORMAT_TEXT, FORMAT_CSV, FORMAT_JSONL)


def _detect_format(path: PathLike, fmt: str) -> str:
    if fmt != "auto":
        if fmt not in _KNOWN_FORMATS:
            raise FormatError(f"unknown result format {fmt!r}; expected one of {_KNOWN_FORMATS}")
        return fmt
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return FORMAT_CSV
    if suffix in (".jsonl", ".json"):
        return FORMAT_JSONL
    return FORMAT_TEXT


def write_results(
    results: Sequence[KPlex],
    path: PathLike,
    fmt: str = "auto",
    use_labels: bool = True,
) -> str:
    """Write ``results`` to ``path``; returns the format actually used.

    ``results`` may be a sequence of :class:`KPlex` records or anything with
    a ``kplexes`` attribute (the legacy ``EnumerationResult`` and the
    engine's ``EnumerationResponse``).  ``use_labels`` selects between the
    caller-facing labels (default) and the internal vertex ids.
    """
    results = getattr(results, "kplexes", results)
    chosen = _detect_format(path, fmt)
    path = Path(path)
    if chosen == FORMAT_TEXT:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# {len(results)} maximal k-plexes\n")
            for plex in results:
                members = plex.labels if use_labels else plex.vertices
                handle.write(" ".join(str(member) for member in members) + "\n")
    elif chosen == FORMAT_CSV:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "size", "k", "members"])
            for index, plex in enumerate(results):
                members = plex.labels if use_labels else plex.vertices
                writer.writerow(
                    [index, plex.size, plex.k, " ".join(str(member) for member in members)]
                )
    else:
        with open(path, "w", encoding="utf-8") as handle:
            for index, plex in enumerate(results):
                payload = {
                    "id": index,
                    "size": plex.size,
                    "k": plex.k,
                    "vertices": list(plex.vertices),
                    "labels": [str(label) for label in plex.labels],
                }
                handle.write(json.dumps(payload) + "\n")
    return chosen


def read_result_sets(path: PathLike, fmt: str = "auto") -> List[Tuple[Hashable, ...]]:
    """Read exported results back as tuples of member identifiers.

    Text and CSV files yield the identifiers as strings (the formats are not
    typed); JSON-lines files yield the stored internal vertex ids.
    """
    chosen = _detect_format(path, fmt)
    path = Path(path)
    members: List[Tuple[Hashable, ...]] = []
    if chosen == FORMAT_TEXT:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                members.append(tuple(line.split()))
    elif chosen == FORMAT_CSV:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or "members" not in reader.fieldnames:
                raise FormatError(f"{path} is not a k-plex result CSV (missing 'members' column)")
            for row in reader:
                members.append(tuple(row["members"].split()))
    else:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise FormatError(f"{path}:{line_number}: invalid JSON") from exc
                members.append(tuple(payload["vertices"]))
    return members
