"""Cross-request caches with memory budgets (the ROADMAP's reuse items).

Two cache tiers sit behind :class:`~repro.service.service.KPlexService`:

* :class:`ResultCache` — completed :class:`EnumerationResponse` objects,
  keyed by ``(graph identity, graph epoch, solver, k, q, config signature,
  query, result budget)``.  A hit skips the whole search.
* :class:`SeedContextCache` — the per-seed subgraph contexts built by
  Algorithm 2, keyed by ``(graph identity, graph epoch, k, q, config)``.
  A hit skips the seed-subgraph construction (two-hop expansion, Corollary
  5.2 shrinking, pair matrix) even when the full result cannot be reused —
  e.g. after a result-cache eviction or for a different ``max_results``.

Both tiers share one LRU core governed by a configurable **memory budget**:
an entry-count cap and/or a byte cap fed by the estimators in
:mod:`repro.service.sizing`.  Eviction statistics are part of each tier's
``stats()`` so the service metrics can report them.

Keys embed the graph's *epoch* (see :meth:`repro.graph.graph.Graph.epoch`):
any invalidation bumps the epoch, so entries computed from a previous state
of a graph can never be served again — they simply age out of the LRU.
Entries hold strong references to their graph (via the stored response or
explicitly), which pins the ``id(graph)`` component of the key for exactly
as long as the entry lives.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..api.registry import get_solver
from ..api.request import EnumerationRequest
from ..api.response import (
    TERMINATION_COMPLETED,
    TERMINATION_RESULT_LIMIT,
    EnumerationResponse,
)
from ..core.config import EnumerationConfig
from ..core.seeds import SeedContext
from ..graph import Graph
from .sizing import estimate_response_bytes, estimate_seed_context_bytes

#: Request options consumed by the serving layer itself; they must not leak
#: into cache keys (they are per-process objects, not request parameters).
_INTERNAL_OPTIONS = frozenset({"seed_context_cache"})


class ByteBudgetLRU:
    """Thread-safe LRU bounded by an entry count and/or a byte budget.

    Subclasses (or composition) provide the key derivation and the per-value
    byte estimate; this core owns ordering, eviction and statistics.  A
    value whose estimate alone exceeds the byte budget is rejected outright
    (recorded as ``rejected_oversized``) instead of wiping the whole cache.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # Per entry: [value, nbytes, hit_count, last_access (monotonic)].
        # Hit count and access time feed the snapshot compaction policy
        # (top-N by hits with age decay) without changing eviction, which
        # stays pure LRU.
        self._entries: "OrderedDict[Hashable, List[object]]" = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._rejected_oversized = 0

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value or ``None``; hits refresh LRU recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            entry[2] += 1  # type: ignore[operator]
            entry[3] = time.monotonic()
            return entry[0]

    def peek(self, key: Hashable) -> bool:
        """``True`` when ``key`` is cached, without touching stats or recency.

        The HTTP solve handler uses this to report ``X-KPlex-Cache`` before
        submitting: it must observe the cache without perturbing hit counts
        or LRU order, since the real lookup happens inside the service.
        """
        with self._lock:
            return key in self._entries

    def put(self, key: Hashable, value: object, nbytes: int) -> bool:
        """Insert ``value`` under ``key``; returns ``False`` when rejected."""
        if self.max_bytes is not None and nbytes > self.max_bytes:
            with self._lock:
                self._rejected_oversized += 1
            return False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._current_bytes -= previous[1]  # type: ignore[operator]
            self._entries[key] = [value, nbytes, 0, time.monotonic()]
            self._current_bytes += nbytes
            self._stores += 1
            self._evict_locked()
            return key in self._entries

    def _evict_locked(self) -> None:
        while (
            self.max_entries is not None and len(self._entries) > self.max_entries
        ) or (self.max_bytes is not None and self._current_bytes > self.max_bytes):
            if not self._entries:
                return
            _key, entry = self._entries.popitem(last=False)
            self._current_bytes -= entry[1]  # type: ignore[operator]
            self._evictions += 1

    def remove_where(self, predicate: Callable[[Hashable, object], bool]) -> int:
        """Drop every entry matching ``predicate(key, value)``; return the count."""
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if predicate(key, entry[0])
            ]
            for key in doomed:
                entry = self._entries.pop(key)
                self._current_bytes -= entry[1]  # type: ignore[operator]
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    def items_snapshot(self) -> List[Tuple[Hashable, object]]:
        """``(key, value)`` pairs, hottest (most recently used) first.

        A point-in-time copy for exporters — iterating it cannot race with
        concurrent gets/puts, and it does not refresh recency.
        """
        with self._lock:
            return [(key, entry[0]) for key, entry in reversed(self._entries.items())]

    def export_entries(self) -> List[Tuple[Hashable, object, int, float]]:
        """``(key, value, hits, last_access)`` tuples, hottest (MRU) first.

        Like :meth:`items_snapshot` but carrying the per-entry usage stats
        that the snapshot compaction policy scores on.  ``last_access`` is a
        ``time.monotonic()`` stamp, comparable only within this process.
        """
        with self._lock:
            return [
                (key, entry[0], entry[2], entry[3])  # type: ignore[misc]
                for key, entry in reversed(self._entries.items())
            ]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Estimated bytes currently held (sum of entry estimates)."""
        with self._lock:
            return self._current_bytes

    def stats(self) -> Dict[str, object]:
        """Counters and occupancy snapshot for metrics endpoints."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "current_bytes": self._current_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "stores": self._stores,
                "evictions": self._evictions,
                "rejected_oversized": self._rejected_oversized,
            }


# --------------------------------------------------------------------------- #
# Key derivation helpers
# --------------------------------------------------------------------------- #
def _options_signature(request: EnumerationRequest) -> Tuple[Tuple[str, str], ...]:
    """Hashable, order-insensitive digest of the solver-specific options."""
    return tuple(
        sorted(
            (key, repr(value))
            for key, value in request.options.items()
            if key not in _INTERNAL_OPTIONS
        )
    )


def _effective_config(request: EnumerationRequest) -> Optional[EnumerationConfig]:
    # EnumerationConfig is a frozen dataclass, hence hashable and comparable
    # by value.  For the configurable solvers the *effective* default is
    # resolved so that e.g. variant="ours" and no variant key identically;
    # fixed-strategy solvers keep None (they reject overrides anyway).
    config = request.resolved_config()
    if config is None:
        from ..api.solvers import _ConfigurableSolver  # local: import cycle

        solver_cls = get_solver(request.solver)
        if issubclass(solver_cls, _ConfigurableSolver):
            config = solver_cls()._effective_config(request)
    return config


def result_cache_key(request: EnumerationRequest) -> Hashable:
    """The cross-request identity of a request's *completed* answer.

    Everything that can change the result set participates: the graph (by
    identity *and* epoch), the solver (canonical registry name, so aliases
    share entries), ``k``/``q``, the effective configuration, the query
    anchor, the result budget and the sort order.  The timeout deliberately
    does not — only runs that finished within their budget are stored, and a
    completed answer is the same for every timeout.
    """
    graph = request.graph
    return (
        id(graph),
        graph.epoch,
        get_solver(request.solver).name,
        request.k,
        request.q,
        _effective_config(request),
        request.query_vertices,
        request.max_results,
        request.sort_results,
        _options_signature(request),
    )


#: Termination reasons whose result sets are deterministic and reusable.
_CACHEABLE_TERMINATIONS = (TERMINATION_COMPLETED, TERMINATION_RESULT_LIMIT)


class ResultCache:
    """LRU of completed :class:`EnumerationResponse` objects (tier 1).

    Only responses that ran to completion (or hit their explicit
    ``max_results`` budget, which is part of the key) are stored; timed-out
    and cancelled runs are partial and never reused.  Hits return the shared
    response object — treat it as read-only, like every other cache entry in
    this repository.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 256,
        max_bytes: Optional[int] = 64 * 1024 * 1024,
    ) -> None:
        self._lru = ByteBudgetLRU(max_entries=max_entries, max_bytes=max_bytes)

    def lookup(
        self, request: EnumerationRequest, key: Optional[Hashable] = None
    ) -> Optional[EnumerationResponse]:
        """Return the cached response for an equivalent request, if any.

        ``key`` lets callers that already derived :func:`result_cache_key`
        skip re-deriving it.
        """
        value = self._lru.get(result_cache_key(request) if key is None else key)
        return value  # type: ignore[return-value]

    def peek(
        self, request: EnumerationRequest, key: Optional[Hashable] = None
    ) -> bool:
        """``True`` when an equivalent request is cached; no stats/recency."""
        return self._lru.peek(result_cache_key(request) if key is None else key)

    def store(
        self,
        request: EnumerationRequest,
        response: EnumerationResponse,
        key: Optional[Hashable] = None,
    ) -> bool:
        """Store a finished response; returns ``False`` when not cacheable.

        Callers that computed the key *before* running the request should
        pass it here: the key snapshots the graph's epoch at admission time,
        so an ``invalidate()`` racing with the run strands the entry under
        the old epoch instead of publishing a pre-invalidation answer under
        the fresh one.
        """
        if response.termination not in _CACHEABLE_TERMINATIONS:
            return False
        return self._lru.put(
            result_cache_key(request) if key is None else key,
            response,
            estimate_response_bytes(response),
        )

    def invalidate_graph(self, graph: Graph) -> int:
        """Eagerly drop every entry computed from ``graph`` (any epoch)."""
        target = id(graph)
        return self._lru.remove_where(
            lambda key, value: key[0] == target
            and value.request.graph is graph  # type: ignore[union-attr]
        )

    def export_requests(
        self, limit: Optional[int] = None
    ) -> List[EnumerationRequest]:
        """The requests behind the hottest *live* entries, MRU first.

        Only entries stored under their graph's **current** epoch are
        returned — entries stranded under an older epoch are unreachable and
        must not be replayed.  This is the warm-start export: the specs are
        small (no response payloads) and re-executing them through the
        normal service path rebuilds the cache from scratch.
        """
        requests: List[EnumerationRequest] = []
        for key, value in self._lru.items_snapshot():
            response: EnumerationResponse = value  # type: ignore[assignment]
            if key[1] != response.request.graph.epoch:  # type: ignore[index]
                continue
            requests.append(response.request)
            if limit is not None and len(requests) >= limit:
                break
        return requests

    def export_requests_scored(
        self,
    ) -> List[Tuple[EnumerationRequest, int, float]]:
        """``(request, hits, last_access)`` for every live entry, MRU first.

        The compaction-aware variant of :meth:`export_requests`:
        ``snapshot_service`` scores these by hit count with age decay to
        decide which specs survive a bounded snapshot.  The same live-epoch
        filter applies.
        """
        scored: List[Tuple[EnumerationRequest, int, float]] = []
        for key, value, hits, last_access in self._lru.export_entries():
            response: EnumerationResponse = value  # type: ignore[assignment]
            if key[1] != response.request.graph.epoch:  # type: ignore[index]
                continue
            scored.append((response.request, hits, last_access))
        return scored

    def clear(self) -> None:
        """Drop every entry."""
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def current_bytes(self) -> int:
        """Estimated bytes currently held."""
        return self._lru.current_bytes

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters plus occupancy."""
        return self._lru.stats()


class SeedContextCache:
    """LRU of materialised per-seed contexts (tier 2, the ROADMAP item).

    One entry is the complete, ordered list of non-empty
    :class:`~repro.core.seeds.SeedContext` objects of one
    ``(graph, k, q, config)`` run — exactly what Algorithm 2 rebuilds from
    scratch on every request.  :class:`~repro.core.enumerator.KPlexEnumerator`
    fills an entry only when its seed sweep ran to completion and replays it
    on later runs; contexts are read-only during the search (the parallel
    executor already shares them across threads), so concurrent replays are
    safe.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 64,
        max_bytes: Optional[int] = 32 * 1024 * 1024,
    ) -> None:
        self._lru = ByteBudgetLRU(max_entries=max_entries, max_bytes=max_bytes)

    @staticmethod
    def _key(
        graph: Graph,
        k: int,
        q: int,
        config: EnumerationConfig,
        epoch: Optional[int],
    ) -> Hashable:
        return (id(graph), graph.epoch if epoch is None else epoch, k, q, config)

    def get(
        self,
        graph: Graph,
        k: int,
        q: int,
        config: EnumerationConfig,
        epoch: Optional[int] = None,
    ) -> Optional[List[SeedContext]]:
        """Return the cached seed contexts of an equivalent run, if any."""
        entry = self._lru.get(self._key(graph, k, q, config, epoch))
        if entry is None:
            return None
        pinned_graph, contexts = entry  # type: ignore[misc]
        # The stored strong reference pins id(graph); this is a cheap
        # belt-and-braces check against key collisions.
        if pinned_graph is not graph:  # pragma: no cover - defensive
            return None
        return contexts

    def put(
        self,
        graph: Graph,
        k: int,
        q: int,
        config: EnumerationConfig,
        contexts: List[SeedContext],
        epoch: Optional[int] = None,
    ) -> bool:
        """Store the complete seed-context list of a finished sweep.

        Pass the ``epoch`` observed when the sweep *started*: an
        ``invalidate()`` racing with the run then strands the entry under
        the old epoch instead of publishing stale subgraphs under the new
        one.  ``None`` reads the graph's current epoch (single-threaded
        callers).
        """
        nbytes = sum(estimate_seed_context_bytes(context) for context in contexts)
        return self._lru.put(
            self._key(graph, k, q, config, epoch), (graph, contexts), nbytes
        )

    def invalidate_graph(self, graph: Graph) -> int:
        """Eagerly drop every entry built from ``graph`` (any epoch)."""
        target = id(graph)
        return self._lru.remove_where(
            lambda key, value: key[0] == target and value[0] is graph
        )

    def export_specs(
        self, limit: Optional[int] = None
    ) -> List[Tuple[Graph, int, int, int, EnumerationConfig]]:
        """``(graph, epoch, k, q, config)`` of the live entries, MRU first.

        The contexts themselves are deliberately not exported — replaying
        the spec through a normal enumeration rebuilds them; only entries
        under their graph's current epoch qualify (see
        :meth:`ResultCache.export_requests`).
        """
        specs: List[Tuple[Graph, int, int, int, EnumerationConfig]] = []
        for key, value in self._lru.items_snapshot():
            graph = value[0]  # type: ignore[index]
            _graph_id, epoch, k, q, config = key  # type: ignore[misc]
            if epoch != graph.epoch:
                continue
            specs.append((graph, epoch, k, q, config))
            if limit is not None and len(specs) >= limit:
                break
        return specs

    def clear(self) -> None:
        """Drop every entry."""
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def current_bytes(self) -> int:
        """Estimated bytes currently held."""
        return self._lru.current_bytes

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters plus occupancy."""
        return self._lru.stats()
