"""The :class:`KPlexEngine` facade.

One entry point for every way of mining maximal k-plexes in this repository:

* :meth:`KPlexEngine.solve` — run a request to completion (or until its
  timeout / result budget) and return an :class:`EnumerationResponse`;
* :meth:`KPlexEngine.stream` — lazily yield results as the search finds
  them, with cooperative cancellation and progress callbacks;
* :meth:`KPlexEngine.count` — count results without materialising them;
* :meth:`KPlexEngine.solve_batch` — run many requests and return responses
  in request order (optionally on a thread pool).

Solvers are resolved by name through the pluggable registry
(:mod:`repro.api.registry`), so the engine itself is algorithm-agnostic.

Timeouts and cancellation are *cooperative*: they are checked every time
control returns to the engine between results, so the granularity is one
seed task group for the incremental solvers and the whole run for the eager
ones (their capability listing says which is which).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..core.kplex import KPlex, validate_parameters
from ..core.stats import SearchStatistics
from ..errors import ParameterError
from ..graph import Graph
from ..graph.prepared import PreparedGraph
from ..graph.prepared import prepare as _prepare_graph
from ..obs import start_span
from .registry import Solver, SolverRun, get_solver, solver_names, solver_table
from .request import DEFAULT_SOLVER, EnumerationRequest
from .response import (
    TERMINATION_CANCELLED,
    TERMINATION_COMPLETED,
    TERMINATION_RESULT_LIMIT,
    TERMINATION_TIMEOUT,
    EnumerationResponse,
)

# Ensure the built-in solvers are registered whenever the engine is imported.
from . import solvers as _builtin_solvers  # noqa: F401


class CancellationToken:
    """Cooperative cancellation handle for :meth:`KPlexEngine.stream`.

    Thread-safe: one thread may consume the stream while another calls
    :meth:`cancel`.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; the stream stops before its next result."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """``True`` once :meth:`cancel` has been called."""
        return self._event.is_set()


@dataclass(frozen=True)
class ProgressEvent:
    """Passed to ``on_progress`` after each streamed result."""

    count: int
    elapsed_seconds: float
    latest: KPlex


class StreamOutcome:
    """Mutable bookkeeping shared between the streaming loop and its caller.

    Filled in as the stream produced by :meth:`KPlexEngine.stream_run`
    advances: once the iterator is exhausted (or closed), ``termination``
    holds the reason the run ended, ``elapsed_seconds`` the wall-clock time
    since dispatch, and ``run`` the underlying :class:`SolverRun` (for
    statistics and solver metadata).
    """

    def __init__(self) -> None:
        self.termination: str = TERMINATION_COMPLETED
        self.elapsed_seconds: float = 0.0
        self.run: Optional[SolverRun] = None


#: Backwards-compatible private alias (pre-jobs-subsystem name).
_RunOutcome = StreamOutcome


class KPlexEngine:
    """Facade over the solver registry — the library's request/response API.

    >>> from repro import Graph
    >>> from repro.api import EnumerationRequest, KPlexEngine
    >>> graph = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    >>> engine = KPlexEngine()
    >>> response = engine.solve(EnumerationRequest(graph=graph, k=2, q=3))
    >>> [sorted(p.vertices) for p in response]
    [[0, 1, 2, 3]]
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock

    # ------------------------------------------------------------------ #
    # Request construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def request(graph: Graph, k: int, q: int, **kwargs: object) -> EnumerationRequest:
        """Build a validated :class:`EnumerationRequest` (keyword passthrough)."""
        return EnumerationRequest(graph=graph, k=k, q=q, **kwargs)  # type: ignore[arg-type]

    @staticmethod
    def prepare(
        graph: Graph,
        k: Optional[int] = None,
        q: Optional[int] = None,
        csr_backend: Optional[str] = None,
    ) -> PreparedGraph:
        """Pre-warm the prepared-graph index of ``graph`` and return it.

        All solvers share this per-graph cache automatically — repeated
        :meth:`solve` / :meth:`stream` / :meth:`solve_batch` calls on the
        same graph object pay the graph-structure work only once; the index
        lives exactly as long as the graph object does.

        Without parameters this materialises the CSR form (which the
        ``(q-k)``-core shrinking of the first request runs on); the cores
        themselves and their orderings are cached on first use because they
        depend on ``q - k``.  Pass the ``k``/``q`` a service expects to also
        warm that core and its degeneracy ordering, moving the whole
        preprocessing cost of the first matching request out of its latency.

        ``csr_backend`` pins the CSR kernel backend (``"array"``/
        ``"numpy"``/``"auto"``) for this graph's index; ``None`` keeps the
        index's current setting.
        """
        if (k is None) != (q is None):
            raise ParameterError(
                "pass both k and q to warm a core level, or neither"
            )
        prepared = _prepare_graph(graph, csr_backend=csr_backend)
        prepared.csr
        if k is not None and q is not None:
            validate_parameters(k, q, enforce_diameter_bound=False)
            prepared_core, _ = prepared.prepared_core(q - k)
            prepared_core.position
        return prepared

    @staticmethod
    def solvers() -> List[str]:
        """Primary names of every registered solver."""
        return solver_names()

    @staticmethod
    def solver_capabilities() -> List[dict]:
        """Capability rows of every registered solver."""
        return solver_table()

    # ------------------------------------------------------------------ #
    # Core dispatch
    # ------------------------------------------------------------------ #
    def _start(self, request: EnumerationRequest) -> tuple[Solver, SolverRun]:
        solver_cls = get_solver(request.solver)
        if request.query_vertices is not None and not solver_cls.supports_query:
            raise ParameterError(
                f"solver {solver_cls.name!r} does not support query-anchored "
                f"enumeration; use one of "
                f"{[c['solver'] for c in solver_table() if c['supports_query']]}"
            )
        solver = solver_cls()
        return solver, solver.start(request)

    def _stream(
        self,
        request: EnumerationRequest,
        outcome: _RunOutcome,
        cancel: Optional[CancellationToken],
        on_progress: Optional[Callable[[ProgressEvent], None]],
    ) -> Iterator[KPlex]:
        # Start the clock before dispatch so elapsed_seconds (and the
        # timeout budget) cover the solver's preprocessing as well.
        # The span is started (not activated — this is a generator) under
        # whatever span is current when the first result is pulled.
        run_span = start_span("solver_run", solver=request.solver)
        started = self._clock()
        _solver, run = self._start(request)
        outcome.run = run
        deadline = (
            started + request.timeout_seconds
            if request.timeout_seconds is not None
            else None
        )
        results = iter(run.results)
        count = 0
        try:
            while True:
                if cancel is not None and cancel.cancelled:
                    outcome.termination = TERMINATION_CANCELLED
                    break
                if deadline is not None and self._clock() >= deadline:
                    outcome.termination = TERMINATION_TIMEOUT
                    break
                try:
                    plex = next(results)
                except StopIteration:
                    outcome.termination = TERMINATION_COMPLETED
                    break
                count += 1
                yield plex
                if on_progress is not None:
                    on_progress(
                        ProgressEvent(
                            count=count,
                            elapsed_seconds=self._clock() - started,
                            latest=plex,
                        )
                    )
                if request.max_results is not None and count >= request.max_results:
                    outcome.termination = TERMINATION_RESULT_LIMIT
                    break
        finally:
            outcome.elapsed_seconds = self._clock() - started
            if run_span is not None:
                run_span.set(
                    termination=outcome.termination, results=count
                ).finish()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def stream(
        self,
        request: EnumerationRequest,
        cancel: Optional[CancellationToken] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> Iterator[KPlex]:
        """Lazily yield maximal k-plexes as the solver produces them.

        No search work happens before the first item is pulled.  The
        request's ``timeout_seconds`` / ``max_results`` budgets and the
        optional ``cancel`` token all stop the stream early; ``on_progress``
        is invoked after every yielded result.
        """
        return self._stream(request, _RunOutcome(), cancel, on_progress)

    def stream_run(
        self,
        request: EnumerationRequest,
        cancel: Optional[CancellationToken] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> "tuple[Iterator[KPlex], StreamOutcome]":
        """Like :meth:`stream`, but also return the run's outcome record.

        The returned :class:`StreamOutcome` is populated as the iterator
        advances and is final once the iterator stops (or is closed): the
        async job subsystem uses it to distinguish a completed enumeration
        from a timeout, a result-limit stop or a cooperative cancellation
        without materialising the results.
        """
        outcome = StreamOutcome()
        return self._stream(request, outcome, cancel, on_progress), outcome

    def solve(
        self,
        request: EnumerationRequest,
        cancel: Optional[CancellationToken] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> EnumerationResponse:
        """Run a request to completion (or budget) and collect the response."""
        outcome = _RunOutcome()
        kplexes = list(self._stream(request, outcome, cancel, on_progress))
        if request.sort_results:
            kplexes.sort(key=lambda plex: (plex.size, plex.vertices))
        run = outcome.run
        statistics = run.statistics() if run is not None else SearchStatistics()
        return EnumerationResponse(
            kplexes=kplexes,
            statistics=statistics,
            request=request,
            solver=get_solver(request.solver).name,
            termination=outcome.termination,
            elapsed_seconds=outcome.elapsed_seconds,
            solver_metadata=dict(run.metadata) if run is not None else {},
        )

    def count(
        self,
        request: EnumerationRequest,
        cancel: Optional[CancellationToken] = None,
    ) -> int:
        """Count results without keeping them in memory."""
        return sum(1 for _ in self._stream(request, _RunOutcome(), cancel, None))

    def solve_batch(
        self,
        requests: Sequence[EnumerationRequest],
        max_workers: Optional[int] = None,
    ) -> List[EnumerationResponse]:
        """Solve many requests; responses align index-for-index with requests.

        With ``max_workers`` > 1 the requests run on a thread pool (results
        are still returned in request order).  Each request's own timeout and
        result budget apply individually.
        """
        requests = list(requests)
        if max_workers is not None and max_workers > 1 and len(requests) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(self.solve, requests))
        return [self.solve(request) for request in requests]
