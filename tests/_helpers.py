"""Shared non-fixture helpers for the test-suite.

Imported explicitly (``from _helpers import ...``) rather than living in
``conftest.py``: ``conftest`` is a special module name pytest also assigns to
``benchmarks/conftest.py``, so importing helpers *from* it resolves to
whichever conftest was loaded first.  Fixtures stay in ``tests/conftest.py``
where pytest injects them by name.
"""

from __future__ import annotations

import random
from typing import List

from repro.graph import Graph, generators


def random_graph_cases(count: int, max_vertices: int = 13, seed: int = 0) -> List[Graph]:
    """Deterministic list of small random graphs for oracle comparisons."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(5, max_vertices)
        p = rng.choice([0.2, 0.35, 0.5, 0.7])
        graphs.append(generators.erdos_renyi(n, p, seed=seed * 1000 + index))
    return graphs


def vertex_sets(plexes) -> set:
    """Convert KPlex results to a comparable set of frozensets."""
    return {frozenset(plex.vertices) for plex in plexes}
