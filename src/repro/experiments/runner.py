"""Shared machinery for the experiment drivers.

Every experiment in the paper boils down to "run algorithm A on dataset D
with parameters (k, q) and record the running time, the number of k-plexes
and, for some tables, the peak memory".  :func:`run_algorithm` provides that
single measurement, and :class:`RunRecord` is the row format every table and
figure driver builds on.

All measurements dispatch through the :class:`repro.api.KPlexEngine` facade:
each of the paper's algorithm labels maps to a ``(solver, variant)`` pair in
the solver registry, so the experiment drivers exercise exactly the code
path a service consumer would use.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api import EnumerationRequest, KPlexEngine
from ..graph import Graph, invalidate

ALGORITHM_FP = "FP"
ALGORITHM_LISTPLEX = "ListPlex"
ALGORITHM_OURS = "Ours"
ALGORITHM_OURS_P = "Ours_P"
ALGORITHM_BASIC = "Basic"
ALGORITHM_BASIC_R1 = "Basic+R1"
ALGORITHM_BASIC_R2 = "Basic+R2"
ALGORITHM_OURS_NO_UB = "Ours\\ub"
ALGORITHM_OURS_FP_UB = "Ours\\ub+fp"

SEQUENTIAL_ALGORITHMS = (ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS_P, ALGORITHM_OURS)
UPPER_BOUND_ABLATION = (ALGORITHM_OURS_NO_UB, ALGORITHM_OURS_FP_UB, ALGORITHM_OURS)
PRUNING_ABLATION = (ALGORITHM_BASIC, ALGORITHM_BASIC_R1, ALGORITHM_BASIC_R2, ALGORITHM_OURS)


@dataclass
class RunRecord:
    """One measurement: algorithm x dataset x (k, q)."""

    algorithm: str
    dataset: str
    k: int
    q: int
    num_kplexes: int
    seconds: float
    branch_calls: int = 0
    peak_memory_bytes: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten the record for table rendering."""
        row: Dict[str, object] = {
            "dataset": self.dataset,
            "k": self.k,
            "q": self.q,
            "algorithm": self.algorithm,
            "kplexes": self.num_kplexes,
            "seconds": round(self.seconds, 4),
        }
        if self.branch_calls:
            row["branch_calls"] = self.branch_calls
        if self.peak_memory_bytes:
            row["peak_memory_mib"] = round(self.peak_memory_bytes / (1024 * 1024), 3)
        row.update(self.extra)
        return row


# Paper algorithm label -> (registry solver name, configuration variant).
_ALGORITHM_DISPATCH: Dict[str, Tuple[str, Optional[str]]] = {
    ALGORITHM_FP: ("fp", None),
    ALGORITHM_LISTPLEX: ("listplex", None),
    ALGORITHM_OURS: ("ours", None),
    ALGORITHM_OURS_P: ("ours", "ours_p"),
    ALGORITHM_BASIC: ("ours", "basic"),
    ALGORITHM_BASIC_R1: ("ours", "basic+r1"),
    ALGORITHM_BASIC_R2: ("ours", "basic+r2"),
    ALGORITHM_OURS_NO_UB: ("ours", "ours-no-ub"),
    ALGORITHM_OURS_FP_UB: ("ours", "ours-fp-ub"),
}

_ENGINE = KPlexEngine()


def algorithm_names() -> List[str]:
    """Names accepted by :func:`run_algorithm`."""
    return list(_ALGORITHM_DISPATCH)


def request_for_algorithm(
    algorithm: str, graph: Graph, k: int, q: int
) -> EnumerationRequest:
    """Translate a paper algorithm label into an :class:`EnumerationRequest`."""
    try:
        solver, variant = _ALGORITHM_DISPATCH[algorithm]
    except KeyError as exc:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(_ALGORITHM_DISPATCH)}"
        ) from exc
    return EnumerationRequest(graph=graph, k=k, q=q, solver=solver, variant=variant)


def run_algorithm(
    algorithm: str,
    graph: Graph,
    dataset: str,
    k: int,
    q: int,
    measure_memory: bool = False,
) -> RunRecord:
    """Run one algorithm on one workload and return the measurement record.

    Every measured run starts from a cold prepared-graph cache: the paper's
    tables compare algorithms on the same workload, so no algorithm may
    inherit the preprocessing a previously measured one already paid for.
    """
    request = request_for_algorithm(algorithm, graph, k, q)
    invalidate(graph)

    peak = 0
    if measure_memory:
        tracemalloc.start()
    started = time.perf_counter()
    result = _ENGINE.solve(request)
    elapsed = time.perf_counter() - started
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    return RunRecord(
        algorithm=algorithm,
        dataset=dataset,
        k=k,
        q=q,
        num_kplexes=result.count,
        seconds=elapsed,
        branch_calls=result.statistics.branch_calls,
        peak_memory_bytes=peak,
    )


def cross_check(records: List[RunRecord]) -> bool:
    """Return ``True`` when all records of a workload report the same result count.

    The paper verifies that FP, ListPlex and Ours return identical result
    sets; the experiment tables carry the count so this lighter check can be
    asserted on every row group.
    """
    by_workload: Dict[object, set] = {}
    for record in records:
        key = (record.dataset, record.k, record.q)
        by_workload.setdefault(key, set()).add(record.num_kplexes)
    return all(len(counts) == 1 for counts in by_workload.values())
