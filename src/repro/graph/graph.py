"""Undirected simple graph used throughout the library.

The paper works on undirected, unweighted simple graphs.  :class:`Graph`
stores such a graph as adjacency sets over a contiguous integer vertex space
``0 .. n-1`` and keeps an optional mapping back to the caller's original
vertex labels (SNAP-style files frequently use sparse integer ids).

The class is deliberately immutable after construction: every algorithm in
the library treats the input graph as read-only, which keeps sharing across
worker processes and sub-tasks safe.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import GraphError

Edge = Tuple[Hashable, Hashable]


class Graph:
    """An immutable undirected simple graph.

    Parameters
    ----------
    adjacency:
        A list of neighbour sets, one per vertex, indexed by the internal
        vertex id.  The structure must already be symmetric and free of
        self-loops; use :meth:`from_edges` to build a graph from raw edges.
    labels:
        Optional original labels, one per internal vertex id.  When omitted
        the labels are the internal ids themselves.
    """

    __slots__ = (
        "_adjacency",
        "_labels",
        "_label_index",
        "_num_edges",
        "_degrees",
        "_prepared",
        "_epoch",
        "__weakref__",
    )

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> None:
        self._adjacency: List[FrozenSet[int]] = [frozenset(neigh) for neigh in adjacency]
        n = len(self._adjacency)
        for vertex, neighbours in enumerate(self._adjacency):
            for other in neighbours:
                if other < 0 or other >= n:
                    raise GraphError(f"neighbour {other} of vertex {vertex} is out of range")
                if other == vertex:
                    raise GraphError(f"self-loop at vertex {vertex}")
                if vertex not in self._adjacency[other]:
                    raise GraphError(f"edge ({vertex}, {other}) is not symmetric")
        if labels is None:
            self._labels: List[Hashable] = list(range(n))
        else:
            if len(labels) != n:
                raise GraphError("labels must have one entry per vertex")
            self._labels = list(labels)
        self._label_index: Dict[Hashable, int] = {
            label: index for index, label in enumerate(self._labels)
        }
        if len(self._label_index) != n:
            raise GraphError("vertex labels must be unique")
        self._num_edges = sum(len(neigh) for neigh in self._adjacency) // 2
        self._degrees: Optional[Tuple[int, ...]] = None
        # Lazily attached repro.graph.prepared.PreparedGraph; lives and dies
        # with this object so repeated queries reuse the preprocessing.
        self._prepared = None
        # Cache-coherency counter for the serving layer: any out-of-band
        # change to this object (or an explicit invalidation) bumps it, so
        # result caches keyed by (graph, epoch) can never serve stale data.
        self._epoch = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        vertices: Optional[Iterable[Hashable]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of edges.

        Duplicate edges and self-loops are silently dropped, matching the
        preprocessing every k-plex paper applies to the raw SNAP files.
        ``vertices`` may list isolated vertices (or simply fix the label
        order); any endpoint not listed is appended in first-seen order.
        """
        labels: List[Hashable] = []
        index: Dict[Hashable, int] = {}
        adjacency: List[set] = []

        def intern(label: Hashable) -> int:
            if label not in index:
                index[label] = len(labels)
                labels.append(label)
                adjacency.append(set())
            return index[label]

        if vertices is not None:
            for label in vertices:
                intern(label)
        for u_label, v_label in edges:
            u = intern(u_label)
            v = intern(v_label)
            if u != v:
                adjacency[u].add(v)
                adjacency[v].add(u)
        return cls(adjacency, labels)

    @classmethod
    def empty(cls, num_vertices: int) -> "Graph":
        """Return a graph with ``num_vertices`` vertices and no edges."""
        return cls([set() for _ in range(num_vertices)])

    @classmethod
    def complete(cls, num_vertices: int) -> "Graph":
        """Return the complete graph on ``num_vertices`` vertices."""
        adjacency = [set(range(num_vertices)) - {v} for v in range(num_vertices)]
        return cls(adjacency)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        """Iterate over the internal vertex ids ``0 .. n-1``."""
        return iter(range(self.num_vertices))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` pairs with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def neighbors(self, vertex: int) -> FrozenSet[int]:
        """Return the neighbour set of ``vertex``."""
        return self._adjacency[vertex]

    def degree(self, vertex: int) -> int:
        """Return the degree of ``vertex``."""
        return len(self._adjacency[vertex])

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ``u`` and ``v`` are adjacent."""
        return v in self._adjacency[u]

    def max_degree(self) -> int:
        """Return the maximum vertex degree ``Δ`` (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return max(len(neigh) for neigh in self._adjacency)

    def label(self, vertex: int) -> Hashable:
        """Return the original label of an internal vertex id."""
        return self._labels[vertex]

    def labels(self) -> List[Hashable]:
        """Return the original labels indexed by internal vertex id."""
        return list(self._labels)

    def index_of(self, label: Hashable) -> int:
        """Return the internal id of an original vertex label."""
        try:
            return self._label_index[label]
        except KeyError as exc:
            raise GraphError(f"unknown vertex label: {label!r}") from exc

    # ------------------------------------------------------------------ #
    # Neighbourhood and subgraph operations
    # ------------------------------------------------------------------ #
    def two_hop_neighbors(self, vertex: int) -> FrozenSet[int]:
        """Return the vertices at distance exactly two from ``vertex``."""
        direct = self._adjacency[vertex]
        second = set()
        for neighbour in direct:
            second.update(self._adjacency[neighbour])
        second.discard(vertex)
        second.difference_update(direct)
        return frozenset(second)

    def neighborhood_within_two_hops(self, vertex: int) -> FrozenSet[int]:
        """Return ``{vertex} ∪ N(vertex) ∪ N²(vertex)``."""
        closed = {vertex}
        closed.update(self._adjacency[vertex])
        for neighbour in self._adjacency[vertex]:
            closed.update(self._adjacency[neighbour])
        return frozenset(closed)

    def common_neighbors(self, u: int, v: int) -> FrozenSet[int]:
        """Return ``N(u) ∩ N(v)``."""
        return self._adjacency[u] & self._adjacency[v]

    def induced_subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", List[int]]:
        """Return the induced subgraph on ``vertices`` and the vertex map.

        The returned list maps the new internal ids back to the ids in this
        graph; labels are carried over so results remain addressable by the
        caller's original identifiers.
        """
        kept = sorted(set(vertices))
        position = {vertex: index for index, vertex in enumerate(kept)}
        adjacency = [
            {position[w] for w in self._adjacency[v] if w in position} for v in kept
        ]
        labels = [self._labels[v] for v in kept]
        return Graph(adjacency, labels), kept

    @property
    def epoch(self) -> int:
        """Monotonic change counter used as a cache-coherency token.

        Result caches key their entries by ``(graph, graph.epoch)``; bumping
        the epoch (see :meth:`bump_epoch` and
        :func:`repro.graph.prepared.invalidate`) retires every cached
        artefact derived from the previous state of the graph.
        """
        return self._epoch

    def bump_epoch(self) -> int:
        """Advance the epoch after an out-of-band change and return it.

        The graph is designed to be immutable, so callers that nevertheless
        replace internal state (dataset reloads, test harnesses) must bump
        the epoch so caches keyed by it stop serving results computed from
        the previous structure.  :func:`repro.graph.prepared.invalidate`
        calls this automatically.
        """
        self._epoch += 1
        return self._epoch

    def degrees(self) -> List[int]:
        """Return all vertex degrees indexed by vertex id.

        The degree sequence is computed once and cached; a fresh list is
        returned every call because several peeling algorithms mutate it.
        """
        if self._degrees is None:
            self._degrees = tuple(len(neigh) for neigh in self._adjacency)
        return list(self._degrees)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        # The derived caches (_degrees, _label_index and especially the
        # prepared index, which references this graph back) are rebuilt on
        # the receiving side instead of being shipped.
        return (self._adjacency, self._labels)

    def __setstate__(self, state) -> None:
        adjacency, labels = state
        self._adjacency = adjacency
        self._labels = labels
        self._label_index = {label: index for index, label in enumerate(labels)}
        self._num_edges = sum(len(neigh) for neigh in adjacency) // 2
        self._degrees = None
        self._prepared = None
        # The epoch is a per-process cache token, not part of the graph's
        # value; unpickled copies start a fresh epoch sequence.
        self._epoch = 0

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, vertex: object) -> bool:
        return isinstance(vertex, int) and 0 <= vertex < self.num_vertices

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._labels == other._labels and self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))
