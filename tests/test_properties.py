"""Unit tests for structural graph properties."""

import pytest

from repro.graph import Graph, generators
from repro.graph.properties import (
    average_degree,
    breadth_first_distances,
    connected_components,
    count_common_neighbors,
    degree_histogram,
    density,
    is_connected_subset,
    non_neighbors_within,
    subset_density,
    subset_diameter,
    summarize,
)


def test_summarize_reports_table2_columns():
    graph = generators.ring_of_cliques(2, 4)
    summary = summarize(graph, name="ring")
    assert summary.name == "ring"
    assert summary.num_vertices == 8
    assert summary.max_degree == 4
    assert summary.degeneracy == 3
    row = summary.as_row()
    assert set(row) == {"network", "n", "m", "max_degree", "degeneracy"}


def test_density_bounds():
    assert density(Graph.complete(6)) == pytest.approx(1.0)
    assert density(Graph.empty(6)) == 0.0
    assert density(Graph.empty(1)) == 0.0


def test_subset_density():
    graph = Graph.complete(5)
    assert subset_density(graph, [0, 1, 2]) == pytest.approx(1.0)
    assert subset_density(graph, [0]) == 0.0


def test_bfs_distances_and_restriction():
    graph = generators.path_graph(5)
    distances = breadth_first_distances(graph, 0)
    assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
    restricted = breadth_first_distances(graph, 0, allowed={0, 1, 3, 4})
    assert restricted == {0: 0, 1: 1}
    assert breadth_first_distances(graph, 0, allowed={1, 2}) == {}


def test_is_connected_subset():
    graph = generators.path_graph(6)
    assert is_connected_subset(graph, [1, 2, 3])
    assert not is_connected_subset(graph, [0, 2])
    assert is_connected_subset(graph, [])


def test_subset_diameter():
    graph = generators.cycle_graph(6)
    assert subset_diameter(graph, range(6)) == 3
    assert subset_diameter(graph, [0]) == 0
    with pytest.raises(ValueError):
        subset_diameter(graph, [0, 3])


def test_connected_components():
    graph = generators.disjoint_union([Graph.complete(3), generators.path_graph(2)])
    components = sorted(connected_components(graph), key=len)
    assert [len(c) for c in components] == [2, 3]


def test_degree_histogram_and_average():
    graph = generators.star_graph(4)
    assert degree_histogram(graph) == {4: 1, 1: 4}
    assert average_degree(graph) == pytest.approx(2 * 4 / 5)
    assert average_degree(Graph.empty(0)) == 0.0


def test_count_common_neighbors_with_restriction():
    graph = Graph.from_edges([(0, 2), (1, 2), (0, 3), (1, 3)], vertices=range(4))
    assert count_common_neighbors(graph, 0, 1) == 2
    assert count_common_neighbors(graph, 0, 1, within={2}) == 1


def test_non_neighbors_within_counts_self():
    graph = Graph.from_edges([(0, 1), (1, 2)])
    assert non_neighbors_within(graph, 1, [0, 1, 2]) == [1]
    assert non_neighbors_within(graph, 0, [0, 1, 2]) == [0, 2]
    assert non_neighbors_within(graph, 0, [1]) == []
