"""Surrogate dataset registry mirroring Table 2 of the paper."""

from .registry import DatasetSpec, all_datasets, dataset_names, get_dataset, load_dataset

__all__ = [
    "DatasetSpec",
    "all_datasets",
    "dataset_names",
    "get_dataset",
    "load_dataset",
]
