# Development entry points. PYTHONPATH is handled for you: pytest picks up
# src/ via the `pythonpath` setting in pyproject.toml, and the non-pytest
# targets export it explicitly.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-quick bench-full bench-json lint lint-baseline examples

# Tier-1: the full unit/integration suite (collection is configured in
# pyproject.toml, so plain `python -m pytest` works too).
test:
	$(PYTHON) -m pytest -x -q

# Reproduce the paper's tables/figures at the quick scale.
bench-quick:
	$(PYTHON) -m pytest benchmarks/ -q

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ -q

# Machine-readable perf trail: per-bench median wall-clock in BENCH_results.json.
bench-json:
	$(PYTHON) benchmarks/bench_json.py --output BENCH_results.json

# Byte-compile every source tree, smoke-import the public API surface, then
# run the project's own static analysis (repro.lint) — fails on any finding
# not covered by lint-baseline.json or an inline suppression.
lint:
	$(PYTHON) -m compileall -q src tests examples benchmarks
	$(PYTHON) -c "import repro, repro.api, repro.cli, repro.experiments, repro.analysis, repro.service, repro.server"
	$(PYTHON) -m repro.lint src tests

# Rewrite lint-baseline.json from the current findings (after intentionally
# accepting one); review the diff before committing.
lint-baseline:
	$(PYTHON) -m repro.lint src tests --baseline-update

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f >/dev/null || exit 1; done; echo "all examples OK"
