"""Determinism check for the solver surface.

Enumeration must be reproducible: the service's caches, the recovery
layer's "replay lost seeds bit-identically" contract and every
equivalence test in the suite assume that the same request yields the
same result set.  Randomness or wall-clock *decisions* inside the
enumerator/solver modules silently break all three.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..finding import Finding
from ..model import Project, SourceModule
from ..registry import Check, register_check

__all__ = ["NondeterminismInSolver"]

#: Directories (under ``repro``) forming the deterministic solver surface.
_SOLVER_DIRS = ("/core/", "/baselines/", "/parallel/")

#: Modules inside the surface that legitimately capture wall-clock stats.
_SANCTIONED_MODULES = ("stats.py",)

_NONDET_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "uuid.uuid4",
    "os.urandom",
)

#: Call-name fragments that mark a wall-clock read as *stats capture*
#: (span records, statistics observation) rather than a solver decision.
_SANCTIONED_SINKS = ("span", "record", "observe", "stat", "trace", "metric")

#: Assignment-target fragments with the same meaning.
_SANCTIONED_TARGETS = ("wall", "stats", "started_at", "timestamp")


@register_check("nondeterminism-in-solver")
class NondeterminismInSolver(Check):
    """Randomness or wall-clock read inside enumerator/solver modules.

    ``random.*``, ``time.time``/``datetime.now``, ``uuid4`` and
    ``os.urandom`` are flagged inside ``repro/core``, ``repro/baselines``
    and ``repro/parallel`` — except in sanctioned stats capture: the
    ``stats`` module itself, reads assigned to ``*wall*``/``*stats*``
    variables, and reads passed directly into span/record/observe calls.
    ``time.monotonic``/``perf_counter`` are allowed everywhere (timeout
    and duration measurement does not change *which* results come back).
    """

    description = (
        "random/wall-clock read in a solver module outside sanctioned "
        "stats capture"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.tree is None or not self._in_surface(module):
                continue
            yield from self._check_module(module)

    @staticmethod
    def _in_surface(module: SourceModule) -> bool:
        path = "/" + module.relpath
        if not any(directory in path for directory in _SOLVER_DIRS):
            return False
        return not path.endswith(tuple("/" + name for name in _SANCTIONED_MODULES))

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = module.call_name(node)
            if dotted is None:
                continue
            subject = self._nondeterministic(dotted)
            if subject is None:
                continue
            if self._sanctioned(module, node):
                continue
            yield Finding(
                file=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                check=self.name,
                message=(
                    f"call to {subject}() in a solver module: enumeration must "
                    f"be deterministic (caches, recovery replay and equivalence "
                    f"tests all assume it); seed explicitly or move the read to "
                    f"stats capture"
                ),
                symbol=module.enclosing_function(node),
                subject=subject,
            )

    @staticmethod
    def _nondeterministic(dotted: str) -> Optional[str]:
        if dotted == "random" or dotted.startswith("random."):
            return dotted
        for suffix in _NONDET_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return suffix
        return None

    @staticmethod
    def _sanctioned(module: SourceModule, node: ast.Call) -> bool:
        parent = module.parents.get(node)
        # Direct argument of a span/record/observe/statistics call.
        if isinstance(parent, ast.Call):
            func = parent.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if any(tag in name.lower() for tag in _SANCTIONED_SINKS):
                return True
        if isinstance(parent, ast.keyword):
            grand = module.parents.get(parent)
            if isinstance(grand, ast.Call):
                func = grand.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if any(tag in name.lower() for tag in _SANCTIONED_SINKS):
                    return True
        # Assignment to a stats-ish target: ``started_wall = time.time()``.
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Name) and any(
                    tag in target.id.lower() for tag in _SANCTIONED_TARGETS
                ):
                    return True
                if isinstance(target, ast.Attribute) and any(
                    tag in target.attr.lower() for tag in _SANCTIONED_TARGETS
                ):
                    return True
        return False
