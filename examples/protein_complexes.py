"""Finding protein-complex-like modules in a noisy interaction network.

Protein–protein interaction (PPI) data is notoriously noisy: experimentally
measured complexes miss interactions (false negatives) and contain spurious
ones.  The paper cites complex detection as a key application of k-plex
mining.  This example builds a synthetic PPI-style network with planted
complexes whose interaction lists are incomplete, mines maximal 2-plexes of
at least 6 proteins, and ranks the found modules by density — the typical
post-processing pipeline of a biological network analysis.

Run with::

    python examples/protein_complexes.py
"""

from repro import EnumerationRequest, KPlexEngine
from repro.analysis import cohesion_metrics, coverage, rank_by_density
from repro.graph.generators import planted_kplex


def main() -> None:
    # 80 proteins; four planted complexes of 8 proteins each where every
    # protein may miss up to one interaction inside its complex (k = 2),
    # embedded in a sparse background of spurious interactions.
    graph = planted_kplex(
        num_vertices=80,
        background_probability=0.05,
        plex_size=8,
        k=2,
        num_plexes=4,
        seed=7,
    )
    print(f"Synthetic PPI network: {graph.num_vertices} proteins, {graph.num_edges} interactions")

    k, q = 2, 6
    result = KPlexEngine().solve(EnumerationRequest(graph=graph, k=k, q=q))
    print(f"Candidate complexes (maximal {k}-plexes, >= {q} proteins): {result.count}")
    print(f"Fraction of proteins covered by at least one candidate: "
          f"{coverage(graph, result.kplexes):.2f}\n")

    print("Top candidate complexes by internal density:")
    for plex, metrics in rank_by_density(graph, result.kplexes, top=6):
        members = ", ".join(f"P{v:02d}" for v in plex.vertices)
        print(
            f"  size={metrics.size} density={metrics.density:.2f} "
            f"min_internal_degree={metrics.minimum_internal_degree} "
            f"boundary_ratio={metrics.boundary_ratio:.2f}  [{members}]"
        )

    planted = [set(range(i * 8, (i + 1) * 8)) for i in range(4)]
    hits = 0
    for complex_members in planted:
        if any(complex_members <= set(plex.vertices) for plex in result.kplexes):
            hits += 1
    print(f"\nPlanted complexes fully contained in some candidate: {hits}/4")


if __name__ == "__main__":
    main()
