"""Maximum k-plex search (extension of the enumeration machinery).

The paper focuses on enumerating *all* large maximal k-plexes, but the
related-work section discusses the maximum k-plex problem at length.  As an
extension this module finds one maximum k-plex by a monotone search over the
size threshold ``q``: a k-plex of size at least ``q`` exists if and only if
the enumerator reports at least one result for that ``q``, and feasibility is
monotone decreasing in ``q``, so a binary search over ``q`` locates the
maximum size.  Each feasibility probe stops at the first result found, so the
probe cost is far below a full enumeration.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.config import EnumerationConfig
from ..core.enumerator import KPlexEnumerator
from ..core.kplex import KPlex, validate_parameters
from ..graph import Graph
from ..graph.core_decomposition import degeneracy


def _first_result(graph: Graph, k: int, q: int, config: EnumerationConfig) -> Optional[KPlex]:
    """Return one maximal k-plex with at least ``q`` vertices, or ``None``."""
    enumerator = KPlexEnumerator(graph, k, q, config)
    for plex in enumerator.iter_results():
        return plex
    return None


def find_maximum_kplex(
    graph: Graph,
    k: int,
    minimum_size: Optional[int] = None,
    config: Optional[EnumerationConfig] = None,
) -> Optional[KPlex]:
    """Return a maximum k-plex of ``graph`` with at least ``minimum_size`` vertices.

    ``minimum_size`` defaults to ``2k - 1``, the smallest size for which the
    search-space decomposition is valid (Definition 3.4); ``None`` is returned
    when no k-plex of that size exists.
    """
    lower = minimum_size if minimum_size is not None else 2 * k - 1
    validate_parameters(k, lower)
    config = config or EnumerationConfig.ours()

    # A k-plex of size s is contained in the (s-k)-core, so the degeneracy
    # bounds the maximum attainable size by D + k (Theorem 5.3 applied to the
    # whole graph).  This caps the binary search range.
    upper = min(graph.num_vertices, degeneracy(graph) + k)
    if upper < lower:
        return None

    best: Optional[KPlex] = None
    low, high = lower, upper
    while low <= high:
        middle = (low + high) // 2
        witness = _first_result(graph, k, middle, config)
        if witness is None:
            high = middle - 1
        else:
            best = witness
            low = witness.size + 1
    return best


def maximum_kplex_size(graph: Graph, k: int, minimum_size: Optional[int] = None) -> int:
    """Return the size of a maximum k-plex (0 when none reaches the minimum size)."""
    result = find_maximum_kplex(graph, k, minimum_size)
    return result.size if result is not None else 0


def maximum_kplex_with_witness(
    graph: Graph, k: int, minimum_size: Optional[int] = None
) -> Tuple[int, Optional[KPlex]]:
    """Return ``(size, witness)`` of a maximum k-plex above the minimum size."""
    result = find_maximum_kplex(graph, k, minimum_size)
    return (result.size if result is not None else 0), result
