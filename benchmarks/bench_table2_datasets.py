"""Table 2 — dataset statistics (paper values vs surrogate values)."""

from repro.analysis.reporting import render_table
from repro.experiments import table2_datasets

from _bench_utils import run_once


def test_table2_datasets(benchmark, scale):
    rows = run_once(benchmark, table2_datasets, scale)
    assert rows, "the dataset registry must not be empty"
    assert all(row["surrogate_n"] > 0 for row in rows)
    print()
    print(render_table(rows, title="Table 2 — datasets (paper vs surrogate)"))
