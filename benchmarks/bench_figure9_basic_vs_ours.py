"""Figures 9 / 15 — Basic vs Ours as q varies.

``Basic`` disables pruning rules R1 and R2; the paper shows Ours consistently
below Basic across the whole q sweep, with the largest gaps at small q.
"""

from repro.analysis.reporting import render_series
from repro.experiments import figure9_basic_vs_ours

from _bench_utils import run_once


def test_figure9_basic_vs_ours(benchmark, scale):
    figures = run_once(benchmark, figure9_basic_vs_ours, scale)
    assert figures
    print()
    for name, series in figures.items():
        totals = {algorithm: sum(points.values()) for algorithm, points in series.items()}
        assert totals["Ours"] <= totals["Basic"] * 1.05
        print(render_series(series, x_label="q", title=f"Figure 9 — {name} (seconds)"))
        print()
