"""Stdlib HTTP client for the k-plex serving front-end.

:class:`ServiceClient` speaks the JSON wire contract of
:mod:`repro.server.handlers` over :mod:`http.client` — no dependencies,
so any Python process (or a curl one-liner, see the README's Deployment
section) can drive a remote server.  Structured error bodies are mapped
back onto the library's exception types: a ``429`` raises
:class:`~repro.errors.ServiceOverloadError` (or its job-queue subclass)
exactly as a local :class:`~repro.service.KPlexService` would, unknown
graphs raise :class:`~repro.errors.CatalogError`, unknown job ids raise
:class:`~repro.errors.JobNotFoundError`, validation problems raise
:class:`~repro.errors.ParameterError`, and anything unmapped raises
:class:`~repro.errors.RemoteServiceError` carrying the HTTP status.

Three transport features are opt-in:

* ``keep_alive=True`` reuses one persistent connection across calls
  (HTTP/1.1 keep-alive), transparently reconnecting once when the server
  closed it between requests.  The reused connection is **not**
  thread-safe — give each thread its own client, or leave keep-alive off
  (the default opens a fresh connection per call, which is always safe);
* every endpoint method accepts ``request_timeout`` overriding the
  client-wide socket timeout for that one call (a long solve can wait
  minutes while health checks keep failing fast);
* ``retry=RetryPolicy(...)`` turns on resilience: ``429``/``503``
  responses are retried with jittered exponential backoff honouring the
  server's ``Retry-After`` header (which carries the circuit breaker's
  remaining cooldown or a queue-drain estimate), connection failures are
  retried for idempotent ``GET`` requests only (a ``POST`` may already
  have reached the server), and :meth:`iter_job_results` transparently
  reconnects a dropped stream, resuming from the last yielded record's
  ``index`` so the caller sees every record exactly once.

For multi-replica deployments ``base_url`` may be a **list** of URLs:
a connection failure on an idempotent ``GET`` rotates to the next
endpoint — each endpoint is tried once for free before any ``retry``
backoff is spent — and ``429``/``503`` answers rotate before sleeping so
a drained or breaker-open replica sheds load to its peers.  Non-idempotent
requests never fail over silently.  :attr:`last_replica` carries the
``X-KPlex-Replica`` header of the most recent response (which replica
actually answered, through any router or failover), and
:attr:`last_cache` the solve path's ``X-KPlex-Cache`` verdict.

The async job API mirrors the ``/v1/jobs`` routes: :meth:`submit_job`,
:meth:`job`, :meth:`jobs`, :meth:`cancel_job`, :meth:`job_results` and
the generator :meth:`iter_job_results`, which consumes the chunked
NDJSON stream result-by-result while the enumeration is still running.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPConnection, HTTPException, HTTPResponse
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from ..errors import (
    CatalogError,
    CircuitOpenError,
    GraphError,
    JobError,
    JobNotFoundError,
    JobQueueFullError,
    JobResultsTruncatedError,
    JobStateError,
    ParameterError,
    RemoteServiceError,
    ServiceClosedError,
    ServiceOverloadError,
    SnapshotError,
)
from ..jobs import TERMINAL_STATES
from ..obs import new_request_id
from ..resilience import RetryPolicy

#: ``error.type`` labels mapped back onto local exception types.
_ERROR_TYPES = {
    "ServiceOverloadError": ServiceOverloadError,
    "CircuitOpenError": CircuitOpenError,
    "ServiceClosedError": ServiceClosedError,
    "CatalogError": CatalogError,
    "ParameterError": ParameterError,
    "GraphError": GraphError,
    "SnapshotError": SnapshotError,
    "JobError": JobError,
    "JobNotFoundError": JobNotFoundError,
    "JobQueueFullError": JobQueueFullError,
    "JobStateError": JobStateError,
    "JobResultsTruncatedError": JobResultsTruncatedError,
}

class _NoDelayHTTPConnection(HTTPConnection):
    """:class:`HTTPConnection` with Nagle's algorithm disabled.

    ``http.client`` writes headers and body as separate segments; with
    Nagle on, the body segment of every POST stalls behind the peer's
    delayed ACK (~40ms on Linux loopback), dwarfing the request itself.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


#: Connection-level failures that mean "the reused socket went stale".
_STALE_CONNECTION_ERRORS = (
    HTTPException,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


class ServiceClient:
    """Minimal blocking client for one server base URL (or a failover list).

    >>> client = ServiceClient("http://127.0.0.1:8080")   # doctest: +SKIP
    >>> client.register("toy", edges=[(0, 1), (1, 2), (0, 2)])  # doctest: +SKIP
    >>> client.solve("toy", k=2, q=3)["count"]            # doctest: +SKIP
    1
    """

    def __init__(
        self,
        base_url: Union[str, Sequence[str]],
        timeout: float = 60.0,
        keep_alive: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise ParameterError("at least one base URL is required")
        self.endpoints: List[str] = []
        self._targets: List[Tuple[str, int, str]] = []
        for url in urls:
            url = url.rstrip("/")
            split = urlsplit(url)
            if split.scheme not in ("http", ""):
                raise ParameterError(
                    f"unsupported URL scheme {split.scheme!r}; only http is spoken"
                )
            self.endpoints.append(url)
            self._targets.append(
                (split.hostname or "127.0.0.1", split.port or 80,
                 split.path.rstrip("/"))
            )
        self._endpoint = 0
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.retry = retry
        self._conn: Optional[HTTPConnection] = None
        #: Request id of the most recent completed call — every request
        #: carries a client-generated ``X-Request-Id`` and the server echoes
        #: it back, so this id keys ``GET /v1/trace/<id>`` (see :meth:`trace`).
        self.last_request_id: Optional[str] = None
        #: ``X-KPlex-Replica`` header of the most recent response (``None``
        #: when the server does not announce a replica identity).
        self.last_replica: Optional[str] = None
        #: ``X-KPlex-Cache`` header of the most recent response: ``"hit"`` /
        #: ``"miss"`` on the solve route, ``None`` elsewhere.
        self.last_cache: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Endpoint selection
    # ------------------------------------------------------------------ #
    @property
    def base_url(self) -> str:
        """The endpoint currently in use (rotates on failover)."""
        return self.endpoints[self._endpoint]

    @property
    def _host(self) -> str:
        return self._targets[self._endpoint][0]

    @property
    def _port(self) -> int:
        return self._targets[self._endpoint][1]

    @property
    def _path_prefix(self) -> str:
        return self._targets[self._endpoint][2]

    def _rotate(self) -> None:
        """Advance to the next endpoint (dropping any keep-alive socket)."""
        self.close()
        self._endpoint = (self._endpoint + 1) % len(self.endpoints)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def health(self, request_timeout: Optional[float] = None) -> Dict[str, object]:
        """``GET /healthz`` — returns the body even while draining (503)."""
        try:
            return self._call(  # type: ignore[return-value]
                "GET", "/healthz", request_timeout=request_timeout
            )
        except RemoteServiceError as exc:
            if exc.status == 503:
                return {"status": "draining"}
            raise

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll :meth:`health` until the server answers ``ok``."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                if self.health().get("status") == "ok":
                    return
            except (OSError, RemoteServiceError) as exc:
                last_error = exc
            time.sleep(interval)
        raise RemoteServiceError(
            f"server at {self.base_url} not ready after {timeout}s "
            f"(last error: {last_error})"
        )

    def graphs(
        self, request_timeout: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """``GET /v1/graphs`` — the catalog listing."""
        return self._call(  # type: ignore[index]
            "GET", "/v1/graphs", request_timeout=request_timeout
        )["graphs"]

    def register(
        self,
        name: str,
        edges: Optional[Sequence[Tuple[object, object]]] = None,
        vertices: Optional[Sequence[object]] = None,
        path: Optional[str] = None,
        dataset: Optional[str] = None,
        prewarm: Optional[Sequence[Tuple[int, int]]] = None,
        replace: bool = False,
        fmt: str = "auto",
        request_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``POST /v1/graphs`` — register by edges, file path or dataset name."""
        body: Dict[str, object] = {"name": name, "replace": replace, "fmt": fmt}
        if edges is not None:
            body["edges"] = [list(edge) for edge in edges]
            if vertices is not None:
                body["vertices"] = list(vertices)
        if path is not None:
            body["path"] = path
        if dataset is not None:
            body["dataset"] = dataset
        if prewarm is not None:
            body["prewarm"] = [list(pair) for pair in prewarm]
        return self._call(  # type: ignore[return-value]
            "POST", "/v1/graphs", body, request_timeout=request_timeout
        )

    @staticmethod
    def _solve_body(
        graph: str,
        k: int,
        q: int,
        solver: Optional[str],
        variant: Optional[str],
        config: Optional[Dict[str, object]],
        timeout: Optional[float],
        max_results: Optional[int],
        query: Optional[Sequence[object]],
        options: Optional[Dict[str, object]],
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"graph": graph, "k": k, "q": q}
        for key, value in (
            ("solver", solver),
            ("variant", variant),
            ("config", config),
            ("timeout", timeout),
            ("max_results", max_results),
            ("options", options),
        ):
            if value is not None:
                body[key] = value
        if query is not None:
            body["query"] = list(query)
        return body

    def solve(
        self,
        graph: str,
        k: int,
        q: int,
        solver: Optional[str] = None,
        variant: Optional[str] = None,
        config: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        max_results: Optional[int] = None,
        query: Optional[Sequence[object]] = None,
        options: Optional[Dict[str, object]] = None,
        include_results: bool = True,
        request_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``POST /v1/solve`` — one synchronous enumeration.

        ``timeout`` is the *solver's* budget (enforced server-side);
        ``request_timeout`` is this call's socket timeout.
        """
        body = self._solve_body(
            graph, k, q, solver, variant, config, timeout, max_results,
            query, options,
        )
        body["include_results"] = include_results
        return self._call(  # type: ignore[return-value]
            "POST", "/v1/solve", body, request_timeout=request_timeout
        )

    def metrics(
        self, fmt: Optional[str] = None, request_timeout: Optional[float] = None
    ) -> Union[Dict[str, object], str]:
        """``GET /v1/metrics`` — JSON dict, or text with ``fmt="prometheus"``."""
        suffix = f"?format={fmt}" if fmt else ""
        return self._call(
            "GET", f"/v1/metrics{suffix}", request_timeout=request_timeout
        )

    def snapshot(
        self, path: Optional[str] = None, request_timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """``POST /v1/snapshot`` — force a warm-state snapshot now."""
        body = {"path": path} if path else None
        return self._call(  # type: ignore[return-value]
            "POST", "/v1/snapshot", body, request_timeout=request_timeout
        )

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #
    def traces(
        self,
        min_ms: Optional[float] = None,
        limit: Optional[int] = None,
        request_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``GET /v1/trace`` — recent request/job traces, newest first."""
        params = []
        if min_ms is not None:
            params.append(f"min_ms={min_ms}")
        if limit is not None:
            params.append(f"limit={limit}")
        suffix = f"?{'&'.join(params)}" if params else ""
        return self._call(  # type: ignore[return-value]
            "GET", f"/v1/trace{suffix}", request_timeout=request_timeout
        )

    def trace(
        self,
        request_id: Optional[str] = None,
        request_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``GET /v1/trace/<id>`` — one request's full span tree.

        Without an explicit ``request_id`` this fetches the trace of this
        client's *previous* call (:attr:`last_request_id`).
        """
        target = request_id or self.last_request_id
        if not target:
            raise ParameterError(
                "no request id: pass one or make a traced call first"
            )
        return self._call(  # type: ignore[return-value]
            "GET", f"/v1/trace/{target}", request_timeout=request_timeout
        )

    # ------------------------------------------------------------------ #
    # Async jobs
    # ------------------------------------------------------------------ #
    def submit_job(
        self,
        graph: str,
        k: int,
        q: int,
        solver: Optional[str] = None,
        variant: Optional[str] = None,
        config: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        max_results: Optional[int] = None,
        query: Optional[Sequence[object]] = None,
        options: Optional[Dict[str, object]] = None,
        result_buffer: Optional[int] = None,
        ttl: Optional[float] = None,
        request_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``POST /v1/jobs`` — submit asynchronously; returns the job record.

        The record's ``id`` drives :meth:`job`, :meth:`cancel_job` and
        :meth:`iter_job_results`.  ``result_buffer`` / ``ttl`` override the
        server's per-job buffering bound and retention for this job.
        """
        body = self._solve_body(
            graph, k, q, solver, variant, config, timeout, max_results,
            query, options,
        )
        if result_buffer is not None:
            body["result_buffer"] = result_buffer
        if ttl is not None:
            body["ttl"] = ttl
        return self._call(  # type: ignore[return-value]
            "POST", "/v1/jobs", body, request_timeout=request_timeout
        )

    def job(
        self, job_id: str, request_timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """``GET /v1/jobs/<id>`` — poll one job's state and progress."""
        return self._call(  # type: ignore[return-value]
            "GET", f"/v1/jobs/{job_id}", request_timeout=request_timeout
        )

    def jobs(
        self,
        states: Optional[Sequence[str]] = None,
        request_timeout: Optional[float] = None,
    ) -> List[Dict[str, object]]:
        """``GET /v1/jobs`` — list job records, optionally state-filtered."""
        suffix = f"?state={','.join(states)}" if states else ""
        return self._call(  # type: ignore[index]
            "GET", f"/v1/jobs{suffix}", request_timeout=request_timeout
        )["jobs"]

    def cancel_job(
        self, job_id: str, request_timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """``DELETE /v1/jobs/<id>`` — cancel; cooperative for running jobs."""
        return self._call(  # type: ignore[return-value]
            "DELETE", f"/v1/jobs/{job_id}", request_timeout=request_timeout
        )

    def wait_job(
        self,
        job_id: str,
        timeout: float = 60.0,
        interval: float = 0.02,
    ) -> Dict[str, object]:
        """Poll :meth:`job` until the job is terminal; returns the record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise RemoteServiceError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(interval)

    def job_results(
        self,
        job_id: str,
        start: int = 0,
        request_timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """``GET /v1/jobs/<id>/results`` — the buffered window, one shot.

        ``start`` in the response may exceed the requested one when older
        results were evicted from the job's bounded buffer.
        """
        return self._call(  # type: ignore[return-value]
            "GET",
            f"/v1/jobs/{job_id}/results?start={start}",
            request_timeout=request_timeout,
        )

    def iter_job_results(
        self,
        job_id: str,
        start: int = 0,
        heartbeat: Optional[float] = None,
        include_heartbeats: bool = False,
        request_timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, object]]:
        """``GET /v1/jobs/<id>/results?stream=1`` — records as they arrive.

        Yields each NDJSON record (result lines, then exactly one final
        ``{"done": ...}`` record carrying the job's terminal state — or a
        ``{"done": false, "error": ...}`` record if the read window was
        truncated).  Heartbeat lines are skipped unless
        ``include_heartbeats`` is set.  The stream uses its own dedicated
        connection, so it composes with a keep-alive client.

        The consumer's pace is the producer's pace: reading slowly
        throttles the server-side enumeration (bounded-buffer
        backpressure) instead of buffering unboundedly.

        With a client ``retry`` policy a dropped connection (including a
        clean EOF before the final ``done`` record) is reconnected
        transparently: the stream resumes at ``last yielded index + 1``,
        so the caller still sees every record exactly once, in order.
        The attempt budget resets whenever a reconnect makes progress.
        """
        next_start = start
        failures = 0
        while True:
            progressed = False
            try:
                for record in self._stream_once(
                    job_id, next_start, heartbeat, request_timeout
                ):
                    if record.get("heartbeat"):
                        if include_heartbeats:
                            yield record
                        continue
                    if "index" in record:
                        next_start = max(next_start, int(record["index"]) + 1)
                        progressed = True
                    yield record
                    if "done" in record:
                        return
                # Exhausted without a final record: the server went away
                # between lines (a half-closed socket reads as clean EOF).
                exc: Optional[Exception] = None
            except (OSError, HTTPException) as stream_exc:
                exc = stream_exc
            if progressed:
                failures = 0
            failures += 1
            if self.retry is None or not self.retry.should_retry(failures):
                detail = f": {exc}" if exc is not None else " before the final record"
                raise RemoteServiceError(
                    f"stream from {self.base_url} dropped{detail}"
                ) from exc
            self.retry.sleep(failures)

    def _stream_once(
        self,
        job_id: str,
        start: int,
        heartbeat: Optional[float],
        request_timeout: Optional[float],
    ) -> Iterator[Dict[str, object]]:
        """One streaming connection; yields raw NDJSON records until EOF."""
        route = f"/v1/jobs/{job_id}/results?stream=1&start={start}"
        if heartbeat is not None:
            route += f"&heartbeat={heartbeat}"
        conn = _NoDelayHTTPConnection(
            self._host,
            self._port,
            timeout=request_timeout if request_timeout is not None else self.timeout,
        )
        try:
            request_id = new_request_id()
            conn.request(
                "GET",
                self._path_prefix + route,
                headers={"X-Request-Id": request_id},
            )
            response = conn.getresponse()
            self.last_request_id = (
                response.getheader("X-Request-Id") or request_id
            )
            self.last_replica = response.getheader("X-KPlex-Replica")
            if response.status >= 400:
                raise self._to_exception(
                    response.status, response.reason, response.read()
                )
            for line in response:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn trailing line from a dying connection; end the
                    # stream so the resume loop re-fetches from the last
                    # complete record instead of crashing the consumer.
                    return
                yield record
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the keep-alive connection (a later call reopens one)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _call(
        self,
        method: str,
        route: str,
        body: Optional[Dict[str, object]] = None,
        request_timeout: Optional[float] = None,
    ) -> Union[Dict[str, object], List[object], str]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        # One id per logical call: a retried request keeps its id, so the
        # server-side trace of the attempt that finally ran stays findable.
        request_id = new_request_id()
        headers = {"X-Request-Id": request_id}
        if data:
            headers["Content-Type"] = "application/json"
        timeout = request_timeout if request_timeout is not None else self.timeout
        failures = 0
        rotations = 0
        while True:
            # Recomputed each attempt: failover rotation may change the
            # endpoint (and with it the path prefix) between attempts.
            path = self._path_prefix + route
            try:
                status, reason, content_type, raw, retry_after, echoed, replica, cache_state = (
                    self._request(method, path, data, headers, timeout)
                )
                self.last_request_id = echoed or request_id
                self.last_replica = replica
                self.last_cache = cache_state
            except OSError as exc:
                # Connection-level failure.  Only idempotent GETs may be
                # replayed — a POST could have reached the server before
                # the socket died, and repeating it would double-apply.
                failures += 1
                idempotent = method == "GET"
                # Multi-endpoint failover: each peer is tried once for free
                # (no backoff) before any retry budget is spent — a dead
                # replica should cost one connect attempt, not a sleep.
                if (
                    idempotent
                    and len(self.endpoints) > 1
                    and rotations < len(self.endpoints) - 1
                ):
                    rotations += 1
                    self._rotate()
                    continue
                if (
                    self.retry is None
                    or not idempotent
                    or not self.retry.should_retry(failures)
                ):
                    raise RemoteServiceError(
                        f"cannot reach {self.base_url}: {exc}"
                    ) from exc
                if len(self.endpoints) > 1:
                    # Next backoff round starts from the next endpoint and
                    # gets a fresh free-rotation budget.
                    rotations = 0
                    self._rotate()
                self.retry.sleep(failures)
                continue
            if status in (429, 503):
                # Overload / breaker-open: retry after the server's own
                # hint when it gave one (any method — the request never
                # ran, so replaying is safe).  With peers available, rotate
                # first: a drained or breaker-open replica sheds its load.
                failures += 1
                if self.retry is not None and self.retry.should_retry(failures):
                    if len(self.endpoints) > 1:
                        self._rotate()
                    self.retry.sleep(failures, retry_after=retry_after)
                    continue
            if status >= 400:
                exc = self._to_exception(status, reason, raw)
                if retry_after is not None and hasattr(exc, "retry_after"):
                    exc.retry_after = retry_after
                raise exc
            return self._decode(raw, content_type)

    @staticmethod
    def _parse_retry_after(value: Optional[str]) -> Optional[float]:
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def _request(
        self,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Dict[str, str],
        timeout: float,
    ) -> Tuple[
        int, str, str, bytes, Optional[float], Optional[str], Optional[str],
        Optional[str],
    ]:
        if not self.keep_alive:
            conn = _NoDelayHTTPConnection(self._host, self._port, timeout=timeout)
            try:
                return self._roundtrip(conn, method, path, data, headers)
            finally:
                conn.close()
        # Keep-alive: reuse one connection, reconnecting once when the
        # server closed it between requests (idle timeout, restart).
        for attempt in (0, 1):
            try:
                if self._conn is None:
                    self._conn = _NoDelayHTTPConnection(
                        self._host, self._port, timeout=timeout
                    )
                else:
                    self._conn.timeout = timeout
                    if self._conn.sock is not None:
                        self._conn.sock.settimeout(timeout)
                return self._roundtrip(self._conn, method, path, data, headers)
            except TimeoutError:
                # A mid-request timeout leaves the connection unusable but
                # is a real per-request failure, never a stale socket.
                self.close()
                raise
            except _STALE_CONNECTION_ERRORS + (OSError,):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    @classmethod
    def _roundtrip(
        cls,
        conn: HTTPConnection,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[
        int, str, str, bytes, Optional[float], Optional[str], Optional[str],
        Optional[str],
    ]:
        conn.request(method, path, body=data, headers=headers)
        response: HTTPResponse = conn.getresponse()
        raw = response.read()  # fully drain so the connection is reusable
        content_type = (response.headers.get_content_type() or "").lower()
        retry_after = cls._parse_retry_after(response.getheader("Retry-After"))
        echoed = response.getheader("X-Request-Id")
        replica = response.getheader("X-KPlex-Replica")
        cache_state = response.getheader("X-KPlex-Cache")
        return (
            response.status, response.reason, content_type, raw, retry_after,
            echoed, replica, cache_state,
        )

    @staticmethod
    def _decode(
        raw: bytes, content_type: str
    ) -> Union[Dict[str, object], List[object], str]:
        text = raw.decode("utf-8")
        if content_type == "application/json":
            return json.loads(text)
        return text

    @staticmethod
    def _to_exception(status: int, reason: str, raw: bytes) -> Exception:
        kind, message = "", f"HTTP {status}: {reason}"
        try:
            error = json.loads(raw.decode("utf-8")).get("error", {})
            kind = error.get("type", "")
            message = error.get("message", message)
        except (ValueError, OSError):
            pass
        mapped = _ERROR_TYPES.get(kind)
        if mapped is not None:
            return mapped(message)
        return RemoteServiceError(message, status=status, kind=kind)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()
