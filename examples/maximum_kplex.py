"""Finding a maximum k-plex (extension built on top of the enumerator).

The paper's related work covers maximum k-plex solvers (BS, BnB, KpLeX,
kPlexS, Maplex); this repository includes a simple exact maximum k-plex
search as an extension: binary search over the size threshold ``q`` using the
enumerator as a feasibility oracle.  The example reports the maximum k-plex
of a few bundled datasets for k = 1, 2, 3 and shows how the size grows with
the relaxation k.

Run with::

    python examples/maximum_kplex.py
"""

from repro.baselines import find_maximum_kplex
from repro.datasets import load_dataset


def main() -> None:
    for dataset in ("jazz", "wiki-vote", "as-caida"):
        graph = load_dataset(dataset)
        print(f"{dataset}: {graph.num_vertices} vertices, {graph.num_edges} edges")
        for k in (1, 2, 3):
            plex = find_maximum_kplex(graph, k)
            if plex is None:
                print(f"  k={k}: no k-plex with at least {2 * k - 1} vertices")
                continue
            members = ", ".join(str(label) for label in plex.labels[:12])
            suffix = "..." if plex.size > 12 else ""
            print(f"  k={k}: maximum k-plex has {plex.size} vertices  [{members}{suffix}]")
        print()

    print("As k grows the maximum k-plex strictly grows or stays equal: every k-plex "
          "is also a (k+1)-plex, which is the containment the relaxation is built on.")


if __name__ == "__main__":
    main()
