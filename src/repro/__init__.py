"""repro — Efficient Enumeration of Large Maximal k-Plexes (EDBT 2025 reproduction).

Public API
----------
The recommended entry point is the engine facade in :mod:`repro.api`:

* :class:`repro.KPlexEngine` — ``solve()`` / ``stream()`` / ``count()`` /
  ``solve_batch()`` over every registered solver;
* :class:`repro.EnumerationRequest` / :class:`repro.EnumerationResponse` —
  the validated request and the self-describing response;
* :func:`repro.solver_names` / :func:`repro.register_solver` — the pluggable
  solver registry (``"ours"``, ``"fp"``, ``"listplex"``, ``"bron-kerbosch"``,
  ``"brute-force"``, ``"parallel"``, ...).

The original functional API is preserved as thin shims over the engine:

* :class:`repro.Graph` — the undirected simple graph type.
* :func:`repro.enumerate_maximal_kplexes` — run the paper's algorithm (``Ours``).
* :func:`repro.count_maximal_kplexes` — count results without materialising them.
* :class:`repro.KPlexEnumerator` — configurable enumerator (ablation variants,
  baselines, statistics).
* :class:`repro.EnumerationConfig` — the knobs corresponding to the paper's
  pruning techniques and algorithm variants.
* :func:`repro.parallel_enumerate_maximal_kplexes` — task-parallel version
  (Section 6 of the paper).

Quick start
-----------
>>> from repro import Graph, KPlexEngine, EnumerationRequest
>>> graph = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
>>> response = KPlexEngine().solve(EnumerationRequest(graph=graph, k=2, q=3))
>>> sorted(sorted(p.vertices) for p in response.kplexes)
[[0, 1, 2, 3]]

or, with the legacy one-call API:

>>> from repro import enumerate_maximal_kplexes
>>> plexes = enumerate_maximal_kplexes(graph, k=2, q=3)
>>> sorted(sorted(p.vertices) for p in plexes)
[[0, 1, 2, 3]]
"""

from .core import (
    EnumerationConfig,
    EnumerationResult,
    KPlex,
    KPlexEnumerator,
    SearchStatistics,
    best_community_for,
    count_maximal_kplexes,
    enumerate_kplexes_containing,
    enumerate_maximal_kplexes,
    is_kplex,
    is_maximal_kplex,
)
from .errors import (
    CatalogError,
    DatasetError,
    FormatError,
    GraphError,
    ParameterError,
    RemoteServiceError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    SnapshotError,
)
from .graph import CSRGraph, Graph, PreparedGraph
from .parallel import ParallelConfig, parallel_enumerate_maximal_kplexes
from .api import (
    CancellationToken,
    EnumerationRequest,
    EnumerationResponse,
    KPlexEngine,
    ProgressEvent,
    Solver,
    get_solver,
    register_solver,
    solver_names,
)
from .service import (
    GraphCatalog,
    KPlexService,
    ResultCache,
    SeedContextCache,
    ServiceConfig,
    ServiceMetrics,
)

__version__ = "1.2.0"

__all__ = [
    "Graph",
    "CSRGraph",
    "PreparedGraph",
    "KPlex",
    "KPlexEnumerator",
    "EnumerationConfig",
    "EnumerationResult",
    "SearchStatistics",
    "KPlexEngine",
    "EnumerationRequest",
    "EnumerationResponse",
    "CancellationToken",
    "ProgressEvent",
    "Solver",
    "register_solver",
    "get_solver",
    "solver_names",
    "enumerate_maximal_kplexes",
    "count_maximal_kplexes",
    "enumerate_kplexes_containing",
    "best_community_for",
    "is_kplex",
    "is_maximal_kplex",
    "ParallelConfig",
    "parallel_enumerate_maximal_kplexes",
    "KPlexService",
    "ServiceConfig",
    "ServiceMetrics",
    "GraphCatalog",
    "ResultCache",
    "SeedContextCache",
    "ReproError",
    "GraphError",
    "ParameterError",
    "DatasetError",
    "FormatError",
    "ServiceError",
    "CatalogError",
    "ServiceOverloadError",
    "ServiceClosedError",
    "SnapshotError",
    "RemoteServiceError",
    "__version__",
]
