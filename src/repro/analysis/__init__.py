"""Result verification, cohesion metrics and report rendering."""

from .export import (
    FORMAT_CSV,
    FORMAT_JSONL,
    FORMAT_TEXT,
    read_result_sets,
    write_results,
)
from .metrics import (
    CohesionMetrics,
    cohesion_metrics,
    coverage,
    jaccard_similarity,
    overlap_matrix,
    rank_by_density,
    size_histogram,
)
from .reporting import format_value, print_report, render_ratio_row, render_series, render_table
from .verification import (
    VerificationReport,
    compare_algorithm_outputs,
    diameter_within_bound,
    results_as_sets,
    verify_response,
    verify_results,
)

__all__ = [
    "write_results",
    "read_result_sets",
    "FORMAT_TEXT",
    "FORMAT_CSV",
    "FORMAT_JSONL",
    "VerificationReport",
    "verify_results",
    "verify_response",
    "results_as_sets",
    "compare_algorithm_outputs",
    "diameter_within_bound",
    "CohesionMetrics",
    "cohesion_metrics",
    "rank_by_density",
    "jaccard_similarity",
    "overlap_matrix",
    "coverage",
    "size_histogram",
    "render_table",
    "render_series",
    "render_ratio_row",
    "format_value",
    "print_report",
]
