"""Observability primitives: request tracing, metrics, structured events.

The package is intentionally stdlib-only.  It provides three legs that the
serving stack threads through every layer:

``repro.obs.trace``
    Request-scoped traces with hierarchical spans, propagated via
    contextvars across thread pools and stitched across process pools.

``repro.obs.metrics``
    Fixed-bucket histograms plus counter/gauge registries rendered as real
    Prometheus ``_bucket``/``_sum``/``_count`` series.

``repro.obs.events``
    A ``repro.obs`` JSON log pipeline emitting one event per request, job,
    and lifecycle transition, carrying the active ``request_id``.
"""

from .trace import (
    Span,
    Trace,
    TraceRecorder,
    activate,
    attach_span_record,
    current_span,
    current_trace,
    new_request_id,
    span,
    span_record,
    start_span,
)
from .metrics import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_labels,
)
from .events import (
    JsonLineFormatter,
    configure_event_logging,
    log_event,
    remove_event_handler,
)

__all__ = [
    "Span",
    "Trace",
    "TraceRecorder",
    "activate",
    "attach_span_record",
    "current_span",
    "current_trace",
    "new_request_id",
    "span",
    "span_record",
    "start_span",
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_labels",
    "JsonLineFormatter",
    "configure_event_logging",
    "log_event",
    "remove_event_handler",
]
