"""Table 3 — sequential running time of FP, ListPlex, Ours_P and Ours.

The paper's headline result: Ours is consistently the fastest sequential
algorithm (up to 5x over ListPlex, up to 2x over FP), with all algorithms
agreeing on the number of maximal k-plexes.  The reproduced table prints the
same columns on the scaled surrogate workloads.
"""

from repro.analysis.reporting import render_table
from repro.experiments import table3_sequential

from _bench_utils import run_once


def test_table3_sequential(benchmark, scale):
    rows = run_once(benchmark, table3_sequential, scale)
    assert rows
    # The paper cross-checks that all algorithms return the same result set.
    assert all(row["all_algorithms_agree"] for row in rows)
    # Shape check: summed over the workloads, Ours must not lose to the
    # baselines (per-row noise is tolerated on sub-second cells).
    total_ours = sum(row["Ours_seconds"] for row in rows)
    total_listplex = sum(row["ListPlex_seconds"] for row in rows)
    total_fp = sum(row["FP_seconds"] for row in rows)
    assert total_ours <= total_listplex * 1.05
    assert total_ours <= total_fp * 1.05
    print()
    print(render_table(rows, title="Table 3 — sequential comparison (scaled workloads)"))
    print(f"\nTotals: Ours={total_ours:.2f}s ListPlex={total_listplex:.2f}s FP={total_fp:.2f}s")
