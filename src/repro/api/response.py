"""The response side of the engine API.

:class:`EnumerationResponse` carries everything a caller needs to consume a
finished run: the k-plexes, the merged :class:`SearchStatistics`, wall-clock
timing, which solver produced them, solver-specific metadata, and *why* the
run ended (completed / timeout / cancelled / result-limit) — the contract a
service endpoint can serialise directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..core.kplex import KPlex
from ..core.stats import SearchStatistics
from .request import EnumerationRequest

TERMINATION_COMPLETED = "completed"
TERMINATION_TIMEOUT = "timeout"
TERMINATION_CANCELLED = "cancelled"
TERMINATION_RESULT_LIMIT = "result-limit"

TERMINATION_REASONS = (
    TERMINATION_COMPLETED,
    TERMINATION_TIMEOUT,
    TERMINATION_CANCELLED,
    TERMINATION_RESULT_LIMIT,
)


@dataclass
class EnumerationResponse:
    """Outcome of one :meth:`~repro.api.engine.KPlexEngine.solve` call."""

    kplexes: List[KPlex]
    statistics: SearchStatistics
    request: EnumerationRequest
    solver: str
    termination: str = TERMINATION_COMPLETED
    elapsed_seconds: float = 0.0
    solver_metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors mirroring the legacy EnumerationResult
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of maximal k-plexes found."""
        return len(self.kplexes)

    @property
    def k(self) -> int:
        """The relaxation parameter the run used."""
        return self.request.k

    @property
    def q(self) -> int:
        """The size threshold the run used."""
        return self.request.q

    @property
    def completed(self) -> bool:
        """``True`` when the run exhausted the search space."""
        return self.termination == TERMINATION_COMPLETED

    def vertex_sets(self) -> List[Tuple[int, ...]]:
        """Return the result vertex sets (sorted tuples of input-graph ids)."""
        return [plex.vertices for plex in self.kplexes]

    def __iter__(self) -> Iterator[KPlex]:
        return iter(self.kplexes)

    def __len__(self) -> int:
        return len(self.kplexes)

    def as_dict(self, include_results: bool = True) -> Dict[str, object]:
        """JSON-serialisable summary (the CLI's ``--json`` payload)."""
        payload: Dict[str, object] = {
            "solver": self.solver,
            "k": self.k,
            "q": self.q,
            "count": self.count,
            "termination": self.termination,
            "elapsed_seconds": self.elapsed_seconds,
            "statistics": self.statistics.as_dict(),
        }
        payload.update(
            {f"solver_{key}": value for key, value in self.solver_metadata.items()}
        )
        if include_results:
            payload["kplexes"] = [list(plex.labels) for plex in self.kplexes]
        return payload

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.count} maximal {self.k}-plexes (>= {self.q} vertices) "
            f"via {self.solver} in {self.elapsed_seconds:.3f}s [{self.termination}]"
        )
