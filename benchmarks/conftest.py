"""Shared configuration for the benchmark harness.

Every bench runs one experiment driver exactly once (``rounds=1``): the
drivers already contain the repeated measurements that matter (one run per
algorithm per workload), and the interesting output is the reproduced table
or figure series, which each bench prints.

Set ``REPRO_BENCH_SCALE=full`` to run the wider workloads (more datasets and
more parameter points, matching the appendix figures).
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    """Workload scale for all benches: ``quick`` (default) or ``full``."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
