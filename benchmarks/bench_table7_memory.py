"""Table 7 (appendix B.2) — peak memory consumption of FP, ListPlex and Ours.

The paper reports that ListPlex and Ours have very similar peak memory while
FP needs noticeably more on medium graphs because it keeps larger candidate
structures per seed (no sub-task decomposition).
"""

from repro.analysis.reporting import render_table
from repro.experiments import table7_memory

from _bench_utils import run_once


def test_table7_memory(benchmark, scale):
    rows = run_once(benchmark, table7_memory, scale)
    assert rows
    for row in rows:
        assert row["Ours_peak_mib"] > 0
        assert row["ListPlex_peak_mib"] > 0
        assert row["FP_peak_mib"] > 0
        # Ours never needs substantially more memory than ListPlex.
        assert row["Ours_peak_mib"] <= row["ListPlex_peak_mib"] * 1.5 + 0.5
    print()
    print(render_table(rows, title="Table 7 — peak memory (MiB, tracemalloc)"))
