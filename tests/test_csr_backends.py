"""Cross-backend CSR equivalence and construction-validation tests.

The numpy backend is a pure performance substrate: every operation must be
bit-identical to the ``array`` reference backend, which in turn must be
bit-identical to the set-backed :class:`Graph`.  These tests sweep both
backends over randomized generator graphs (including the degenerate shapes:
empty, isolated vertices, complete, star) and assert full equivalence, plus
the integer-width/validation hardening of the shared storage conventions.
"""

import pickle
import random

import pytest

from repro.api import EnumerationRequest, KPlexEngine
from repro.errors import GraphError
from repro.graph import Graph, invalidate
from repro.graph.csr import (
    CSRGraph,
    available_csr_backends,
    build_csr,
    csr_class,
    default_csr_backend,
    index_itemsize,
    neighbor_typecode,
    offset_itemsize,
    offset_typecode,
    resolve_csr_backend,
    set_default_csr_backend,
)
from repro.graph.generators import erdos_renyi, relaxed_caveman, star_graph

numpy = pytest.importorskip("numpy")
from repro.graph.csr_backend_numpy import NumpyCSRGraph  # noqa: E402


@pytest.fixture(autouse=True)
def _reset_default_backend():
    yield
    set_default_csr_backend(None)


def backend_pairs():
    """(array, numpy) CSR builds of a deterministic graph mix."""
    rng = random.Random(20260731)
    graphs = [
        Graph.empty(0),
        Graph.empty(6),
        Graph.complete(7),
        star_graph(9),
        relaxed_caveman(4, 5, 0.3, seed=5),
    ]
    for trial in range(10):
        graphs.append(erdos_renyi(rng.randint(1, 48), rng.random() * 0.35, seed=trial))
    return [(g, CSRGraph.from_graph(g), NumpyCSRGraph.from_graph(g)) for g in graphs]


# --------------------------------------------------------------------------- #
# Storage conventions (the integer-width portability satellite)
# --------------------------------------------------------------------------- #
def test_typecodes_are_derived_from_itemsize_not_hardcoded():
    from array import array

    assert array(offset_typecode()).itemsize >= 8, (
        "offsets must hold 2m directed edges; a 32-bit C long (LLP64 'l') "
        "would silently overflow"
    )
    assert array(neighbor_typecode()).itemsize >= 4
    assert offset_itemsize() == array(offset_typecode()).itemsize
    assert index_itemsize() == array(neighbor_typecode()).itemsize


def test_numpy_dtypes_match_array_typecodes_bytewise():
    from repro.graph.csr_types import numpy_index_dtype, numpy_offset_dtype

    assert numpy_offset_dtype().itemsize == offset_itemsize()
    assert numpy_index_dtype().itemsize == index_itemsize()
    graph = erdos_renyi(30, 0.2, seed=3)
    a = CSRGraph.from_graph(graph)
    b = NumpyCSRGraph.from_graph(graph)
    # The flat buffers are interchangeable byte-for-byte.
    assert a.offsets.tobytes() == b.offsets.tobytes()
    assert a.neighbors.tobytes() == b.neighbors.tobytes()


# --------------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------------- #
def test_backend_registry_and_resolution():
    assert "array" in available_csr_backends()
    assert "numpy" in available_csr_backends()
    assert resolve_csr_backend("array") == "array"
    assert resolve_csr_backend(None) == default_csr_backend()
    assert csr_class("array") is CSRGraph
    assert csr_class("numpy") is NumpyCSRGraph
    with pytest.raises(GraphError):
        resolve_csr_backend("cuda")


def test_set_default_backend_controls_build(monkeypatch):
    graph = erdos_renyi(10, 0.3, seed=1)
    set_default_csr_backend("array")
    assert build_csr(graph).backend == "array"
    set_default_csr_backend("numpy")
    assert build_csr(graph).backend == "numpy"
    set_default_csr_backend("auto")
    monkeypatch.setenv("REPRO_CSR_BACKEND", "array")
    assert default_csr_backend() == "array"
    assert build_csr(graph).backend == "array"


def test_prepared_index_backend_knob_rebuilds_csr():
    from repro.graph.prepared import prepare

    graph = erdos_renyi(25, 0.25, seed=9)
    invalidate(graph)
    prepared = prepare(graph, csr_backend="array")
    assert prepared.csr.backend == "array"
    prepared.set_csr_backend("numpy")
    assert prepared.cache_info()["csr"] is False  # dropped, rebuilt lazily
    assert prepared.csr.backend == "numpy"
    # Same backend again: no rebuild.
    built = prepared.csr
    prepared.set_csr_backend("numpy")
    assert prepared.csr is built


def test_engine_prepare_accepts_backend():
    graph = relaxed_caveman(3, 5, 0.2, seed=2)
    invalidate(graph)
    prepared = KPlexEngine.prepare(graph, k=2, q=4, csr_backend="array")
    assert prepared.cache_info()["csr_backend"] == "array"


# --------------------------------------------------------------------------- #
# Full kernel equivalence (the property suite CI runs with and without numpy)
# --------------------------------------------------------------------------- #
def test_backends_agree_on_adjacency_and_traversals():
    rng = random.Random(7)
    for graph, a, b in backend_pairs():
        assert a.degrees() == b.degrees() == graph.degrees()
        assert a.two_hop_counts() == b.two_hop_counts()
        for v in graph.vertices():
            assert a.neighbors_list(v) == b.neighbors_list(v)
            assert a.two_hop_neighbors(v) == b.two_hop_neighbors(v)
            assert a.neighborhood_within_two_hops(v) == (
                b.neighborhood_within_two_hops(v)
            )
        for _ in range(30):
            u = rng.randrange(max(1, graph.num_vertices))
            v = rng.randrange(max(1, graph.num_vertices))
            if graph.num_vertices:
                assert a.has_edge(u, v) == b.has_edge(u, v) == graph.has_edge(u, v)


def test_backends_agree_on_core_peeling():
    for graph, a, b in backend_pairs():
        for level in range(0, 7):
            assert a.k_core_alive(level) == b.k_core_alive(level)


def test_backends_agree_on_projections():
    rng = random.Random(13)
    for graph, a, b in backend_pairs():
        if graph.num_vertices == 0:
            assert a.induced_adjacency([]) == b.induced_adjacency([]) == []
            continue
        kept = sorted(
            rng.sample(range(graph.num_vertices), rng.randint(1, graph.num_vertices))
        )
        assert a.induced_adjacency(kept) == b.induced_adjacency(kept)
        assert a.induced_rows(kept) == b.induced_rows(kept)
        sources = rng.sample(range(graph.num_vertices), min(4, graph.num_vertices))
        assert a.rows_onto(sources, kept) == b.rows_onto(sources, kept)


def test_numpy_masks_are_python_ints():
    # np.int64 bitsets overflow at 64 vertices; every mask and vertex id the
    # numpy backend returns must be an arbitrary-precision Python int.
    graph = erdos_renyi(70, 0.5, seed=4)
    b = NumpyCSRGraph.from_graph(graph)
    kept = list(range(70))
    rows = b.induced_rows(kept)
    assert all(type(row) is int for row in rows)
    assert max(rows).bit_length() <= 70 and max(rows).bit_length() > 60
    assert all(type(v) is int for v in b.two_hop_neighbors(0))
    assert all(type(v) is int for row in b.induced_adjacency(kept) for v in row)


def test_numpy_sweep_fallback_paths_match(monkeypatch):
    # Force (a) the chunked scatter fallback used beyond the packed-matrix
    # budget and (b) tiny gather blocks inside the packed kernel, and check
    # both against the default path and the array reference.
    from repro.graph import csr_backend_numpy

    graph = erdos_renyi(60, 0.15, seed=8)
    a = CSRGraph.from_graph(graph)
    b = NumpyCSRGraph.from_graph(graph)
    packed = b.two_hop_counts()
    monkeypatch.setattr(csr_backend_numpy, "_PACKED_SWEEP_LIMIT", 1)
    chunked = b.two_hop_counts()
    monkeypatch.setattr(csr_backend_numpy, "_PACKED_SWEEP_LIMIT", 16384)
    monkeypatch.setattr(csr_backend_numpy, "_GATHER_BYTES", 16)
    blocked = b.two_hop_counts()
    assert packed == chunked == blocked == a.two_hop_counts()


def test_numpy_projection_rejects_out_of_range_like_array():
    graph = erdos_renyi(30, 0.2, seed=6)
    b = NumpyCSRGraph.from_graph(graph)
    expected = b.rows_onto([0], [1, 2])
    with pytest.raises(GraphError):
        b.rows_onto([0], [5, 999])
    with pytest.raises(GraphError):
        b.rows_onto([0], [5, -7])
    with pytest.raises(GraphError):
        b.induced_adjacency([0, 999])
    # The shared scratch array is untouched by rejected calls.
    assert b.rows_onto([0], [1, 2]) == expected


def test_numpy_csr_pickle_roundtrip():
    graph = erdos_renyi(40, 0.2, seed=11)
    b = NumpyCSRGraph.from_graph(graph)
    restored = pickle.loads(pickle.dumps(b))
    assert type(restored) is NumpyCSRGraph
    assert restored.neighbors.tolist() == b.neighbors.tolist()
    assert restored.offsets.tolist() == b.offsets.tolist()


# --------------------------------------------------------------------------- #
# End-to-end: enumeration is backend-independent
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("solver", ["ours", "basic", "fp", "listplex"])
def test_enumeration_bit_identical_across_backends(solver):
    engine = KPlexEngine()
    for seed in (3, 11):
        results = {}
        for backend in ("array", "numpy"):
            graph = relaxed_caveman(5, 5, 0.3, seed=seed)
            KPlexEngine.prepare(graph, csr_backend=backend)
            response = engine.solve(
                EnumerationRequest(graph=graph, k=2, q=4, solver=solver)
            )
            results[backend] = response.vertex_sets()
        assert results["array"] == results["numpy"]


def test_dataset_enumeration_bit_identical_across_backends():
    from repro.datasets import load_dataset

    engine = KPlexEngine()
    for dataset, k, q in (("wiki-vote", 2, 10), ("jazz", 2, 12)):
        results = {}
        for backend in ("array", "numpy"):
            graph = load_dataset(dataset)
            KPlexEngine.prepare(graph, csr_backend=backend)
            response = engine.solve(EnumerationRequest(graph=graph, k=k, q=q))
            results[backend] = response.vertex_sets()
        assert results["array"] == results["numpy"], dataset


# --------------------------------------------------------------------------- #
# from_adjacency validation (the "validated nowhere" satellite)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("cls_name", ["array", "numpy"])
def test_from_adjacency_rejects_malformed_input(cls_name):
    cls = csr_class(cls_name)
    with pytest.raises(GraphError, match="asymmetric"):
        cls.from_adjacency([[1], []])  # odd directed-edge total
    with pytest.raises(GraphError, match="asymmetric"):
        cls.from_adjacency([[1], [2], []])  # even total, no reverse edges
    with pytest.raises(GraphError, match="self-loop"):
        cls.from_adjacency([[0, 1], [0]])
    with pytest.raises(GraphError, match="out of range"):
        cls.from_adjacency([[9], []])
    with pytest.raises(GraphError, match="out of range"):
        cls.from_adjacency([[-1], []])


@pytest.mark.parametrize("cls_name", ["array", "numpy"])
def test_from_adjacency_enforces_sorted_dedup_invariant(cls_name):
    cls = csr_class(cls_name)
    # Duplicate edges previously inflated num_edges silently (odd totals
    # even floor-divided into a wrong count); unsorted rows silently broke
    # binary-search has_edge.
    csr = cls.from_adjacency([[2, 1, 1, 2], [0, 2], [1, 0, 0]])
    assert csr.num_edges == 3
    assert csr.neighbors_list(0) == [1, 2]
    assert csr.neighbors_list(2) == [0, 1]
    assert csr.has_edge(0, 2) and csr.has_edge(2, 0)


def test_from_adjacency_opt_out_for_trusted_callers():
    # validate=False trusts the caller: rows are sorted, nothing else runs.
    csr = CSRGraph.from_adjacency([[1, 1], [0, 0]], validate=False)
    assert csr.num_edges == 2  # the historical (wrong) duplicate count
    regression = CSRGraph.from_adjacency([[1, 1], [0, 0]])
    assert regression.num_edges == 1
