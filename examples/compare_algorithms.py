"""Compare the paper's algorithm against the baselines on a bundled dataset.

Mirrors the paper's sequential evaluation (Table 3) on one surrogate dataset:
runs FP, ListPlex, Ours_P and Ours plus the ablation variants, checks that
everyone agrees on the result set, and prints a small comparison table.
Every measurement dispatches through :class:`repro.api.KPlexEngine` — the
algorithm labels are translated to solver-registry requests by
``repro.experiments.request_for_algorithm``.

Run with::

    python examples/compare_algorithms.py [dataset] [k] [q]
"""

import sys

from repro.analysis import render_table
from repro.datasets import dataset_names, load_dataset
from repro.experiments import (
    PRUNING_ABLATION,
    SEQUENTIAL_ALGORITHMS,
    cross_check,
    run_algorithm,
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "wiki-vote"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    q = int(sys.argv[3]) if len(sys.argv) > 3 else 8
    if dataset not in dataset_names():
        raise SystemExit(f"unknown dataset {dataset!r}; available: {', '.join(dataset_names())}")

    graph = load_dataset(dataset)
    print(f"Dataset {dataset}: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"k={k}, q={q}\n")

    records = []
    for algorithm in list(SEQUENTIAL_ALGORITHMS) + [a for a in PRUNING_ABLATION if a != "Ours"]:
        record = run_algorithm(algorithm, graph, dataset, k, q)
        records.append(record)
        print(f"  {algorithm:<12} {record.seconds:8.3f}s  "
              f"{record.num_kplexes:>8} k-plexes  {record.branch_calls:>9} branch calls")

    agreement = cross_check(records)
    print(f"\nAll algorithms report the same number of k-plexes: {agreement}")
    print()
    print(render_table([r.as_row() for r in records], title="Comparison summary"))


if __name__ == "__main__":
    main()
