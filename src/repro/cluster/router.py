"""The cluster router: one HTTP front door over N supervised replicas.

:class:`ClusterRouter` is a :class:`ThreadingHTTPServer` that owns a
:class:`~repro.cluster.replicas.ReplicaSet` and a
:class:`~repro.cluster.ring.HashRing`:

* ``POST /v1/solve`` and ``POST /v1/jobs`` are proxied to the replica that
  owns the request's graph name on the ring; a connection-level failure
  (or a freshly dead replica) falls through to the next node in ring
  order, so a SIGKILLed replica costs one extra proxy hop, not a failed
  request.  Solves are pure computations over registered graphs, which is
  what makes this POST-retry safe;
* ``POST /v1/graphs`` fans out to every live replica (and is replayed
  into restarted ones), so after a failover *any* replica can serve reads
  for any graph;
* ``POST /v1/batch`` fans a list of solve specs out concurrently and
  returns the answers in order;
* ``GET /v1/metrics`` merges every replica's metrics — counters summed,
  histograms folded bucket-by-bucket via
  :meth:`repro.obs.Histogram.merge` — plus cluster-level counters
  (``kplex_cluster_replica_restarts_total`` et al.) in both JSON and
  Prometheus text;
* ``/healthz`` / ``/readyz`` are cluster-aware: degraded while any
  replica is down, 503 only when none can serve;
* a **peer-warm queue**: when a replica answers a solve with
  ``X-KPlex-Cache: miss``, the router re-posts the request *spec* (never
  result payloads — the same rule snapshots follow) to the ring's next
  live replica, so the backup already holds the answer when a failover
  sends the repeat request its way.

The router carries its own trace propagation: it honours or mints
``X-Request-Id``, records a ``router`` span (annotated with the chosen
replica) in its own recorder, and forwards the id so the replica's span
tree shares the request id — ``GET /v1/trace/<id>`` on the router returns
both sides.
"""

from __future__ import annotations

import json
import logging
import queue
import signal
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..errors import ClusterError, ReplicaUnavailableError
from ..obs import MetricsRegistry, Trace, TraceRecorder, activate, log_event, new_request_id
from ..server.handlers import MAX_BODY_BYTES, MAX_REQUEST_ID_CHARS, _HTTPFail
from ..service.service import render_prometheus
from .proxy import _HOP_HEADERS, ProxyResponse, forward, open_stream
from .replicas import DEFAULT_RESTART_POLICY, REPLICA_UP, Replica, ReplicaSet
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ClusterRouter",
    "ClusterRequestHandler",
    "replica_argv",
    "start_cluster",
    "serve_cluster",
]

#: Numeric per-replica metrics summed into the cluster-level document.
_SUM_KEYS = (
    "requests_total", "admitted", "rejected", "completed", "errors",
    "in_flight", "running", "queued", "cache_hits", "cache_misses",
    "coalesced", "timeouts", "recoveries_total",
)

#: Most recent job-id → replica-id routes remembered (older ones fall back
#: to probing every live replica).
_JOB_ROUTE_CAPACITY = 4096


class _PeerWarmer:
    """Bounded queue + worker broadcasting miss specs to backup replicas.

    Strictly best-effort: a full queue drops (counted), a failed warm is
    counted and forgotten, and only request *specs* travel — the backup
    recomputes through its normal service path, so a warmed entry is as
    trustworthy as a client-triggered one.
    """

    _SENTINEL = None

    def __init__(self, router: "ClusterRouter", depth: int = 256) -> None:
        self.router = router
        self.queue: "queue.Queue" = queue.Queue(maxsize=depth)
        # Bounded recent-marker set so one hot spec is not re-warmed on
        # every subsequent miss of a sibling spec.
        self._recent: "OrderedDict[str, bool]" = OrderedDict()
        self._recent_lock = threading.Lock()
        self.thread = threading.Thread(
            target=self._loop, name="kplex-peer-warm", daemon=True
        )
        self.thread.start()

    def enqueue(self, target_id: str, spec: Dict[str, object]) -> bool:
        spec = dict(spec)
        spec["include_results"] = False  # warm the cache, not the wire
        marker = target_id + "\x00" + json.dumps(spec, sort_keys=True, default=str)
        with self._recent_lock:
            if marker in self._recent:
                return False
            self._recent[marker] = True
            while len(self._recent) > 1024:
                self._recent.popitem(last=False)
        try:
            self.queue.put_nowait((target_id, spec))
            return True
        except queue.Full:
            self.router.telemetry.counter(
                "cluster_warm_drops_total",
                help_text="Peer-warm specs dropped because the queue was full.",
            ).inc()
            return False

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item is self._SENTINEL:
                return
            target_id, spec = item
            replica = self.router.replica_set.replicas.get(target_id)
            if replica is None or replica.state != REPLICA_UP or not replica.url:
                continue
            try:
                upstream = forward(
                    replica.url,
                    "POST",
                    "/v1/solve",
                    body=json.dumps(spec).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    timeout=self.router.proxy_timeout,
                )
                ok = upstream.status == 200
            except OSError:
                ok = False
            counter = (
                "cluster_warm_broadcasts_total" if ok else "cluster_warm_failures_total"
            )
            self.router.telemetry.counter(
                counter,
                help_text=(
                    "Peer-warm specs successfully pre-executed on a backup replica."
                    if ok
                    else "Peer-warm broadcasts that failed."
                ),
            ).inc()
            if ok:
                log_event(
                    "peer_warm",
                    replica=target_id,
                    graph=spec.get("graph"),
                    k=spec.get("k"),
                    q=spec.get("q"),
                )

    def stop(self, timeout: float = 5.0) -> None:
        self.queue.put(self._SENTINEL)
        self.thread.join(timeout)


class ClusterRouter(ThreadingHTTPServer):
    """HTTP router over a :class:`ReplicaSet` (see module docstring)."""

    daemon_threads = False  # joined on server_close: in-flight relays finish
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple,
        replica_set: ReplicaSet,
        vnodes: int = DEFAULT_VNODES,
        peer_warm: bool = True,
        warm_queue_depth: int = 256,
        proxy_timeout: float = 60.0,
        trace_capacity: int = 256,
        logger=None,
    ) -> None:
        super().__init__(address, ClusterRequestHandler)
        self.replica_set = replica_set
        self.ring = HashRing(replica_set.ids, vnodes=vnodes)
        self.proxy_timeout = proxy_timeout
        self.telemetry = MetricsRegistry()
        self.recorder = (
            TraceRecorder(capacity=trace_capacity) if trace_capacity > 0 else None
        )
        self.draining = False
        self._logger = logger
        # Raw graph-registration bodies, replayed into restarted replicas.
        self._registrations: List[Dict[str, object]] = []
        self._registrations_lock = threading.Lock()
        self._job_routes: "OrderedDict[str, str]" = OrderedDict()
        self._job_routes_lock = threading.Lock()
        self.warmer = _PeerWarmer(self, warm_queue_depth) if peer_warm else None
        self._drain_lock = threading.Lock()
        self._drained = False
        self._drain_done = threading.Event()
        replica_set.on_restart = self._replay_registrations

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        return f"http://{display}:{port}"

    def log(self, message: str) -> None:
        if self._logger is not None:
            self._logger(message)

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def placement(self, graph_name: str) -> List[Replica]:
        """Replicas in ring-preference order for ``graph_name`` (owner first)."""
        order = self.ring.lookup_n(graph_name, len(self.ring))
        return [self.replica_set.replicas[rid] for rid in order]

    # ------------------------------------------------------------------ #
    # Registration replay (failover warm path)
    # ------------------------------------------------------------------ #
    def record_registration(self, body: Dict[str, object]) -> None:
        with self._registrations_lock:
            self._registrations.append(body)

    def _replay_registrations(self, replica: Replica) -> None:
        """Re-register every router-known graph into a restarted replica.

        409 (already registered — e.g. recovered from the replica's own
        warm-start snapshot) counts as success: the goal is presence, and
        re-registering with ``replace`` would bump the epoch and strand the
        snapshot-warmed cache entries.
        """
        with self._registrations_lock:
            bodies = list(self._registrations)
        for body in bodies:
            try:
                upstream = forward(
                    replica.url,  # type: ignore[arg-type]
                    "POST",
                    "/v1/graphs",
                    body=json.dumps(body).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    timeout=self.proxy_timeout,
                )
            except OSError as exc:  # pragma: no cover - replica died again
                log_event(
                    "replica_replay_failed",
                    level=logging.WARNING,
                    replica=replica.id,
                    graph=body.get("name"),
                    error=str(exc),
                )
                continue
            if upstream.status not in (201, 409):
                log_event(
                    "replica_replay_failed",
                    level=logging.WARNING,
                    replica=replica.id,
                    graph=body.get("name"),
                    status=upstream.status,
                )

    # ------------------------------------------------------------------ #
    # Job routing
    # ------------------------------------------------------------------ #
    def record_job_route(self, job_id: str, replica_id: str) -> None:
        with self._job_routes_lock:
            self._job_routes[job_id] = replica_id
            self._job_routes.move_to_end(job_id)
            while len(self._job_routes) > _JOB_ROUTE_CAPACITY:
                self._job_routes.popitem(last=False)

    def job_route(self, job_id: str) -> Optional[str]:
        with self._job_routes_lock:
            return self._job_routes.get(job_id)

    @property
    def job_routes_count(self) -> int:
        with self._job_routes_lock:
            return len(self._job_routes)

    @property
    def registrations_count(self) -> int:
        with self._registrations_lock:
            return len(self._registrations)

    # ------------------------------------------------------------------ #
    # Merged metrics
    # ------------------------------------------------------------------ #
    def merged_metrics(self) -> Tuple[Dict[str, object], MetricsRegistry]:
        """Cluster-wide metrics document + a merged telemetry registry.

        A fresh registry is built per scrape (merging into a long-lived one
        would double-count replica counters on every call).
        """
        registry = MetricsRegistry()
        totals: Dict[str, float] = {key: 0 for key in _SUM_KEYS}
        per_replica: Dict[str, Dict[str, object]] = {}
        up = 0
        for rid in self.replica_set.ids:
            replica = self.replica_set.replicas[rid]
            entry: Dict[str, object] = dict(replica.describe())
            if replica.state == REPLICA_UP and replica.url:
                try:
                    upstream = forward(
                        replica.url, "GET", "/v1/metrics",
                        timeout=self.proxy_timeout,
                    )
                    payload = json.loads(upstream.body)
                except (OSError, ValueError) as exc:
                    entry["error"] = str(exc)
                else:
                    up += 1
                    for key in _SUM_KEYS:
                        value = payload.get(key)
                        if isinstance(value, (int, float)):
                            totals[key] += value
                    telemetry = payload.get("telemetry")
                    if isinstance(telemetry, dict):
                        registry.merge_snapshot(telemetry)
                    entry.update(
                        {
                            key: payload[key]
                            for key in ("requests_total", "completed", "errors",
                                        "cache_hits", "cache_misses", "in_flight")
                            if key in payload
                        }
                    )
            per_replica[rid] = entry
        registry.merge_snapshot(self.telemetry.snapshot())
        served = totals["cache_hits"] + totals["cache_misses"] + totals["coalesced"]
        cluster: Dict[str, object] = {
            "replicas": len(self.replica_set.ids),
            "up": up,
            "down": len(self.replica_set.ids) - up,
            "replica_restarts_total": self.replica_set.restarts_total,
            "registrations": self.registrations_count,
            "jobs_routed": self.job_routes_count,
            "ring_vnodes": self.ring.vnodes,
            "peer_warm_enabled": self.warmer is not None,
            "peer_warm_queue_depth": (
                self.warmer.queue.qsize() if self.warmer is not None else 0
            ),
        }
        document: Dict[str, object] = {"cluster": cluster}
        document.update(totals)
        document["hit_rate"] = (
            (totals["cache_hits"] + totals["coalesced"]) / served if served else 0.0
        )
        document["replicas"] = per_replica
        document["telemetry"] = registry.snapshot()
        return document, registry

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def drain(self, stop_replicas: bool = True) -> Dict[str, Optional[int]]:
        """Graceful shutdown: stop accepts, finish relays, drain replicas.

        Returns the replica exit codes (each 0 under the drain contract).
        Idempotent; concurrent callers block until the first finishes.
        """
        with self._drain_lock:
            first = not self._drained
            self._drained = True
        if not first:
            self._drain_done.wait()
            return {}
        self.draining = True
        self.shutdown()
        self.server_close()  # joins in-flight relays (replicas still up)
        if self.warmer is not None:
            self.warmer.stop()
        exit_codes: Dict[str, Optional[int]] = {}
        if stop_replicas:
            exit_codes = self.replica_set.stop()
        self._drain_done.set()
        return exit_codes

    def initiate_shutdown(self) -> threading.Thread:
        thread = threading.Thread(target=self.drain, name="kplex-cluster-drain")
        thread.start()
        return thread


class ClusterRequestHandler(BaseHTTPRequestHandler):
    """Routes cluster HTTP traffic onto the owning :class:`ClusterRouter`."""

    protocol_version = "HTTP/1.1"
    server_version = f"kplex-cluster/{__version__}"
    disable_nagle_algorithm = True
    timeout = 60.0
    _request_id: Optional[str] = None
    _response_status: int = 0

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(
            {
                "/healthz": self._get_health,
                "/readyz": self._get_ready,
                "/v1/cluster": self._get_cluster,
                "/v1/graphs": self._get_graphs,
                "/v1/metrics": self._get_metrics,
                "/v1/jobs": self._get_jobs,
                "/v1/trace": self._get_traces,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(
            {
                "/v1/solve": self._post_solve,
                "/v1/batch": self._post_batch,
                "/v1/graphs": self._post_graphs,
                "/v1/snapshot": self._post_snapshot,
                "/v1/jobs": self._post_jobs,
            }
        )

    def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch({})

    def _job_route(self, path: str):
        parts = path.rstrip("/").split("/")
        if parts[:3] != ["", "v1", "jobs"] or len(parts) < 4 or not parts[3]:
            return None
        job_id = parts[3]
        if len(parts) == 4:
            by_method = {"GET": self._get_job, "DELETE": self._delete_job}
        elif len(parts) == 5 and parts[4] == "results":
            by_method = {"GET": self._get_job_results}
        else:
            raise _HTTPFail(404, "NotFound", f"no route for {path}")
        handler = by_method.get(self.command)
        if handler is None:
            raise _HTTPFail(
                405, "MethodNotAllowed", f"{self.command} not allowed on {path}"
            )
        return lambda query: handler(query, job_id)

    def _trace_route(self, path: str):
        parts = path.rstrip("/").split("/")
        if parts[:3] != ["", "v1", "trace"] or len(parts) != 4 or not parts[3]:
            return None
        if self.command != "GET":
            raise _HTTPFail(
                405, "MethodNotAllowed", f"{self.command} not allowed on {path}"
            )
        request_id = parts[3]
        return lambda query: self._get_trace(query, request_id)

    def _dispatch(self, routes: Dict[str, object]) -> None:
        router: ClusterRouter = self.server  # type: ignore[assignment]
        parsed = urlparse(self.path)
        started = time.time()
        supplied = (self.headers.get("X-Request-Id") or "").strip()
        self._request_id = (
            supplied[:MAX_REQUEST_ID_CHARS] if supplied else new_request_id()
        )
        self._response_status = 0
        if router.recorder is not None:
            trace: Optional[Trace] = Trace(request_id=self._request_id)
            root = trace.span("router", method=self.command, path=parsed.path)
            router.recorder.record(trace)
        else:
            trace = None
            root = None
        self._root_span = root
        handler = routes.get(parsed.path)
        try:
            with activate(root):
                try:
                    if handler is None:
                        handler = self._job_route(parsed.path)
                    if handler is None:
                        handler = self._trace_route(parsed.path)
                    if handler is None:
                        raise _HTTPFail(404, "NotFound", f"no route for {parsed.path}")
                    handler(parse_qs(parsed.query))  # type: ignore[operator]
                except _HTTPFail as fail:
                    self._send_error(fail.status, fail.kind, str(fail))
                except ReplicaUnavailableError as exc:
                    self._send_error(
                        503, "ReplicaUnavailableError", str(exc),
                        retry_after=exc.retry_after,
                    )
                except ClusterError as exc:
                    self._send_error(502, "ClusterError", str(exc))
                except OSError as exc:
                    # Transport failure after the per-route retry loop gave
                    # up: the upstream replica is the broken side.
                    self._send_error(502, "BadGateway", str(exc))
                except Exception as exc:  # noqa: BLE001 - every error gets a body
                    if root is not None:
                        root.set(error=type(exc).__name__)
                    self._send_error(500, type(exc).__name__, str(exc))
        finally:
            status = self._response_status
            if trace is not None:
                root.set(status=status)
                root.finish("error" if status >= 500 else "ok")
                trace.finish()
            duration = time.time() - started
            router.telemetry.counter(
                "cluster_http_requests_total",
                labels={"route": parsed.path, "status": str(status)},
                help_text="Router HTTP requests by route and status code.",
            ).inc()
            router.telemetry.histogram(
                "cluster_request_duration_seconds",
                labels={"route": parsed.path},
                help_text="Router-observed request duration (proxy included).",
            ).observe(duration)
            router.log(
                f'{self.client_address[0] if self.client_address else "-"} '
                f'"{self.command} {parsed.path}" {status} '
                f"{round(duration * 1000.0, 3)}ms {self._request_id}"
            )

    # ------------------------------------------------------------------ #
    # Proxy plumbing
    # ------------------------------------------------------------------ #
    @property
    def router(self) -> ClusterRouter:
        return self.server  # type: ignore[return-value]

    def _forward_headers(self, content_type: Optional[str] = None) -> Dict[str, str]:
        headers = {
            "X-Request-Id": self._request_id or new_request_id(),
            "X-Forwarded-For": (
                self.client_address[0] if self.client_address else "unknown"
            ),
        }
        if content_type:
            headers["Content-Type"] = content_type
        return headers

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HTTPFail(
                413, "PayloadTooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        return self.rfile.read(length) if length else b""

    def _read_json(self, optional: bool = False) -> Dict[str, object]:
        raw = self._read_body()
        if not raw:
            if optional:
                return {}
            raise _HTTPFail(400, "BadRequest", "a JSON request body is required")
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _HTTPFail(400, "BadRequest", f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HTTPFail(400, "BadRequest", "the request body must be an object")
        return body

    def _relay(self, upstream: ProxyResponse) -> None:
        """Write an upstream response through to the client verbatim."""
        try:
            self.send_response(upstream.status)
            for key, value in upstream.headers.items():
                if key.lower() == "x-request-id":
                    continue  # re-stamped below so router and replica agree
                self.send_header(key, value)
            if self._request_id is not None:
                self.send_header("X-Request-Id", self._request_id)
            self.send_header("Content-Length", str(len(upstream.body)))
            self.end_headers()
            self.wfile.write(upstream.body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        encoded = json.dumps(payload, default=str).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            if self._request_id is not None:
                self.send_header("X-Request-Id", self._request_id)
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _send_error(
        self,
        status: int,
        kind: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        headers = (
            {"Retry-After": str(max(1, round(retry_after)))}
            if retry_after is not None
            else None
        )
        self._send_json(
            status,
            {"error": {"type": kind, "message": message, "status": status}},
            headers=headers,
        )

    def _solve_upstream(
        self, raw: bytes, body: Dict[str, object], path: str = "/v1/solve"
    ) -> ProxyResponse:
        """Route one solve spec to its ring owner, failing over in ring order.

        The peer-warm enqueue rides on the response: a ``200`` that the
        serving replica marked ``X-KPlex-Cache: miss`` is new work, so the
        spec is queued for the next live replica on the ring.
        """
        router = self.router
        name = body.get("graph")
        if not isinstance(name, str) or not name:
            raise _HTTPFail(400, "BadRequest", "'graph' must be a non-empty string")
        attempts = 0
        for replica in router.placement(name):
            if replica.state != REPLICA_UP or not replica.url:
                continue
            attempts += 1
            try:
                upstream = forward(
                    replica.url,
                    "POST",
                    path,
                    body=raw,
                    headers=self._forward_headers("application/json"),
                    timeout=router.proxy_timeout,
                )
            except OSError as exc:
                # Dead mid-flight (e.g. SIGKILL between supervisor polls):
                # solves are repeatable pure computations, so retry the next
                # ring node instead of failing the accepted request.
                router.telemetry.counter(
                    "cluster_proxy_retries_total",
                    help_text="Proxied requests retried on a backup replica.",
                ).inc()
                log_event(
                    "proxy_retry",
                    level=logging.WARNING,
                    replica=replica.id,
                    graph=name,
                    error=str(exc),
                )
                continue
            root = getattr(self, "_root_span", None)
            if root is not None:
                root.set(replica=replica.id)
            if (
                router.warmer is not None
                and upstream.status == 200
                and upstream.headers.get("X-KPlex-Cache") == "miss"
            ):
                backup = next(
                    (
                        peer
                        for peer in router.placement(name)
                        if peer.id != replica.id and peer.state == REPLICA_UP
                    ),
                    None,
                )
                if backup is not None:
                    router.warmer.enqueue(backup.id, body)
            return upstream
        raise ReplicaUnavailableError(
            f"no live replica can serve graph {name!r} "
            f"({attempts} attempts, {len(router.replica_set.live())} live)"
        )

    def _any_live(self) -> List[Replica]:
        live = self.router.replica_set.live()
        if not live:
            raise ReplicaUnavailableError("no live replicas")
        return live

    # ------------------------------------------------------------------ #
    # Health / topology
    # ------------------------------------------------------------------ #
    def _get_health(self, _query: Dict[str, list]) -> None:
        router = self.router
        replicas = router.replica_set.describe()
        up = sum(1 for entry in replicas if entry["state"] == REPLICA_UP)
        total = len(replicas)
        if router.draining or up == 0:
            self._send_json(
                503,
                {
                    "status": "draining" if router.draining else "unavailable",
                    "replicas": {"total": total, "up": up},
                },
                headers={"Retry-After": "1"},
            )
            return
        self._send_json(
            200,
            {
                "status": "ok" if up == total else "degraded",
                "replicas": {"total": total, "up": up},
            },
        )

    def _get_ready(self, _query: Dict[str, list]) -> None:
        router = self.router
        up = len(router.replica_set.live())
        total = len(router.replica_set.ids)
        body: Dict[str, object] = {"replicas": {"total": total, "up": up}}
        if router.draining or up == 0:
            body["status"] = "draining" if router.draining else "unavailable"
            self._send_json(503, body, headers={"Retry-After": "1"})
            return
        body["status"] = "ready" if up == total else "degraded"
        self._send_json(200, body)

    def _get_cluster(self, query: Dict[str, list]) -> None:
        router = self.router
        payload: Dict[str, object] = {
            "router": router.url,
            "ring": {"vnodes": router.ring.vnodes, "nodes": router.ring.nodes},
            "replicas": router.replica_set.describe(),
            "restarts_total": router.replica_set.restarts_total,
            "registrations": router.registrations_count,
            "jobs_routed": router.job_routes_count,
            "peer_warm": router.warmer is not None,
        }
        if query.get("graph"):
            name = query["graph"][0]
            payload["placement"] = {
                "graph": name,
                "order": [replica.id for replica in router.placement(name)],
            }
        self._send_json(200, payload)

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #
    def _get_graphs(self, _query: Dict[str, list]) -> None:
        last_exc: Optional[OSError] = None
        for replica in self._any_live():
            try:
                self._relay(
                    forward(
                        replica.url,  # type: ignore[arg-type]
                        "GET", "/v1/graphs",
                        headers=self._forward_headers(),
                        timeout=self.router.proxy_timeout,
                    )
                )
                return
            except OSError as exc:
                last_exc = exc
        raise last_exc or ReplicaUnavailableError("no live replicas")

    def _post_graphs(self, _query: Dict[str, list]) -> None:
        router = self.router
        raw = self._read_body()
        try:
            body = json.loads(raw) if raw else None
        except ValueError as exc:
            raise _HTTPFail(400, "BadRequest", f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HTTPFail(400, "BadRequest", "the request body must be an object")
        # Fan out so every replica can serve this graph after a failover.
        successes: List[ProxyResponse] = []
        failures: List[ProxyResponse] = []
        for replica in self._any_live():
            try:
                upstream = forward(
                    replica.url,  # type: ignore[arg-type]
                    "POST", "/v1/graphs",
                    body=raw,
                    headers=self._forward_headers("application/json"),
                    timeout=router.proxy_timeout,
                )
            except OSError:
                continue
            (successes if 200 <= upstream.status < 300 else failures).append(upstream)
        if successes:
            router.record_registration(body)
            self._relay(successes[0])
            return
        if failures:
            self._relay(failures[0])  # e.g. a structured 409/400 from a replica
            return
        raise ReplicaUnavailableError("graph registration reached no live replica")

    # ------------------------------------------------------------------ #
    # Solve / batch
    # ------------------------------------------------------------------ #
    def _post_solve(self, _query: Dict[str, list]) -> None:
        raw = self._read_body()
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _HTTPFail(400, "BadRequest", f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HTTPFail(400, "BadRequest", "the request body must be an object")
        self._relay(self._solve_upstream(raw, body))

    def _post_batch(self, _query: Dict[str, list]) -> None:
        body = self._read_json()
        specs = body.get("requests")
        if not isinstance(specs, list):
            raise _HTTPFail(400, "BadRequest", "'requests' must be a list of specs")
        if not specs:
            self._send_json(200, {"responses": [], "count": 0})
            return

        def run_one(spec: object) -> Dict[str, object]:
            if not isinstance(spec, dict):
                return {
                    "status": 400,
                    "body": {"error": {"type": "BadRequest",
                                       "message": "each request must be an object"}},
                }
            try:
                upstream = self._solve_upstream(
                    json.dumps(spec).encode("utf-8"), spec
                )
            except (_HTTPFail, ClusterError, OSError) as exc:
                status = getattr(exc, "status", None) or 503
                return {
                    "status": status,
                    "body": {"error": {"type": type(exc).__name__,
                                       "message": str(exc)}},
                }
            try:
                decoded: object = json.loads(upstream.body)
            except ValueError:
                decoded = upstream.body.decode("utf-8", "replace")
            return {"status": upstream.status, "body": decoded}

        with ThreadPoolExecutor(
            max_workers=min(8, len(specs)), thread_name_prefix="kplex-batch"
        ) as pool:
            responses = list(pool.map(run_one, specs))
        self._send_json(200, {"responses": responses, "count": len(responses)})

    # ------------------------------------------------------------------ #
    # Jobs
    # ------------------------------------------------------------------ #
    def _post_jobs(self, _query: Dict[str, list]) -> None:
        router = self.router
        raw = self._read_body()
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _HTTPFail(400, "BadRequest", f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HTTPFail(400, "BadRequest", "the request body must be an object")
        name = body.get("graph")
        if not isinstance(name, str) or not name:
            raise _HTTPFail(400, "BadRequest", "'graph' must be a non-empty string")
        last_exc: Optional[OSError] = None
        for replica in router.placement(name):
            if replica.state != REPLICA_UP or not replica.url:
                continue
            try:
                upstream = forward(
                    replica.url, "POST", "/v1/jobs",
                    body=raw,
                    headers=self._forward_headers("application/json"),
                    timeout=router.proxy_timeout,
                )
            except OSError as exc:
                last_exc = exc
                continue
            if 200 <= upstream.status < 300:
                try:
                    job_id = json.loads(upstream.body).get("id")
                except ValueError:
                    job_id = None
                if isinstance(job_id, str):
                    router.record_job_route(job_id, replica.id)
            root = getattr(self, "_root_span", None)
            if root is not None:
                root.set(replica=replica.id)
            self._relay(upstream)
            return
        if last_exc is not None:
            raise last_exc
        raise ReplicaUnavailableError(f"no live replica for graph {name!r}")

    def _get_jobs(self, query: Dict[str, list]) -> None:
        suffix = f"?state={query['state'][0]}" if query.get("state") else ""
        merged: List[Dict[str, object]] = []
        for replica in self._any_live():
            try:
                upstream = forward(
                    replica.url, "GET", f"/v1/jobs{suffix}",  # type: ignore[arg-type]
                    headers=self._forward_headers(),
                    timeout=self.router.proxy_timeout,
                )
                payload = json.loads(upstream.body)
            except (OSError, ValueError):
                continue
            for record in payload.get("jobs", []):
                if isinstance(record, dict):
                    record["replica"] = replica.id
                    merged.append(record)
        self._send_json(200, {"jobs": merged, "count": len(merged)})

    def _resolve_job_replica(self, job_id: str) -> Replica:
        """The replica holding ``job_id``: from the route map, else by probe."""
        router = self.router
        mapped = router.job_route(job_id)
        if mapped is not None:
            replica = router.replica_set.replicas.get(mapped)
            if replica is not None and replica.state == REPLICA_UP:
                return replica
            # The owning replica restarted: its in-memory job table is gone.
            # Fall through to the probe, which will surface an honest 404.
        for replica in self._any_live():
            try:
                upstream = forward(
                    replica.url, "GET", f"/v1/jobs/{job_id}",  # type: ignore[arg-type]
                    headers=self._forward_headers(),
                    timeout=router.proxy_timeout,
                )
            except OSError:
                continue
            if upstream.status != 404:
                router.record_job_route(job_id, replica.id)
                return replica
        raise _HTTPFail(404, "JobNotFoundError", f"no job with id {job_id!r}")

    def _get_job(self, _query: Dict[str, list], job_id: str) -> None:
        replica = self._resolve_job_replica(job_id)
        self._relay(
            forward(
                replica.url, "GET", f"/v1/jobs/{job_id}",  # type: ignore[arg-type]
                headers=self._forward_headers(),
                timeout=self.router.proxy_timeout,
            )
        )

    def _delete_job(self, _query: Dict[str, list], job_id: str) -> None:
        replica = self._resolve_job_replica(job_id)
        self._relay(
            forward(
                replica.url, "DELETE", f"/v1/jobs/{job_id}",  # type: ignore[arg-type]
                headers=self._forward_headers(),
                timeout=self.router.proxy_timeout,
            )
        )

    def _get_job_results(self, query: Dict[str, list], job_id: str) -> None:
        replica = self._resolve_job_replica(job_id)
        stream = (query.get("stream") or ["0"])[0] not in ("0", "false", "")
        flat = "&".join(
            f"{key}={values[0]}" for key, values in query.items() if values
        )
        path = f"/v1/jobs/{job_id}/results" + (f"?{flat}" if flat else "")
        if not stream:
            self._relay(
                forward(
                    replica.url, "GET", path,  # type: ignore[arg-type]
                    headers=self._forward_headers(),
                    timeout=self.router.proxy_timeout,
                )
            )
            return
        # Streaming relay: re-chunk the replica's NDJSON lines one-by-one so
        # backpressure propagates (a slow client slows the replica's solver,
        # not the router's memory).
        conn, response = open_stream(
            replica.url,  # type: ignore[arg-type]
            path,
            headers=self._forward_headers(),
            timeout=self.router.proxy_timeout,
        )
        try:
            if response.status >= 400:
                body = response.read()
                kept = {
                    key: value
                    for key, value in response.getheaders()
                    if key.lower() not in _HOP_HEADERS
                }
                self._relay(
                    ProxyResponse(response.status, response.reason, kept, body)
                )
                return
            self.send_response(response.status)
            for key, value in response.getheaders():
                if key.lower() in _HOP_HEADERS or key.lower() == "x-request-id":
                    continue
                self.send_header(key, value)
            if self._request_id is not None:
                self.send_header("X-Request-Id", self._request_id)
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            try:
                for line in response:
                    if not line:
                        continue
                    self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
                    self.wfile.write(line)
                    self.wfile.write(b"\r\n")
                    self.wfile.flush()
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass  # client went away; the upstream close releases the job
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # Metrics / snapshot / traces
    # ------------------------------------------------------------------ #
    def _get_metrics(self, query: Dict[str, list]) -> None:
        fmt = (query.get("format") or ["json"])[0].lower()
        document, registry = self.router.merged_metrics()
        if fmt == "prometheus":
            flat = {
                key: value
                for key, value in document.items()
                if key not in ("telemetry", "replicas")
            }
            text = render_prometheus(flat) + registry.render_prometheus()
            encoded = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(encoded)))
            if self._request_id is not None:
                self.send_header("X-Request-Id", self._request_id)
            self.end_headers()
            self.wfile.write(encoded)
        elif fmt == "json":
            self._send_json(200, document)
        else:
            raise _HTTPFail(400, "BadRequest", f"unknown metrics format {fmt!r}")

    def _post_snapshot(self, _query: Dict[str, list]) -> None:
        raw = self._read_body()
        results: Dict[str, object] = {}
        for replica in self._any_live():
            try:
                upstream = forward(
                    replica.url, "POST", "/v1/snapshot",  # type: ignore[arg-type]
                    body=raw or None,
                    headers=self._forward_headers(
                        "application/json" if raw else None
                    ),
                    timeout=self.router.proxy_timeout,
                )
                try:
                    results[replica.id] = json.loads(upstream.body)
                except ValueError:
                    results[replica.id] = {"status": upstream.status}
            except OSError as exc:
                results[replica.id] = {"error": str(exc)}
        self._send_json(200, {"replicas": results})

    def _get_traces(self, query: Dict[str, list]) -> None:
        recorder = self.router.recorder
        if recorder is None:
            raise _HTTPFail(
                503, "ServiceClosedError", "tracing is disabled on this router"
            )
        limit = 50
        if query.get("limit"):
            try:
                limit = int(query["limit"][0])
            except ValueError as exc:
                raise _HTTPFail(400, "BadRequest", "'limit' must be an integer") from exc
        records = []
        for trace in recorder.list(limit=limit):
            root = trace.root
            entry: Dict[str, object] = {
                "request_id": trace.request_id,
                "created_at": round(trace.created_at, 6),
                "spans": len(trace.spans),
                "root": root.name if root is not None else None,
            }
            duration = trace.duration_ms
            if duration is not None:
                entry["duration_ms"] = round(duration, 3)
            records.append(entry)
        self._send_json(
            200, {"traces": records, "count": len(records), "recorded": len(recorder)}
        )

    def _get_trace(self, _query: Dict[str, list], request_id: str) -> None:
        """Router span plus the owning replica's span tree for one request id.

        Propagation contract: the router forwarded its ``X-Request-Id``
        downstream, so the replica recorded its trace under the same id —
        probing the replicas stitches the two sides together.
        """
        router = self.router
        payload: Dict[str, object] = {"request_id": request_id}
        if router.recorder is not None:
            trace = router.recorder.get(request_id)
            if trace is not None:
                router_doc = trace.to_dict()
                router_doc["tree"] = trace.tree()
                payload["router"] = router_doc
        for replica in router.replica_set.live():
            try:
                upstream = forward(
                    replica.url, "GET", f"/v1/trace/{request_id}",  # type: ignore[arg-type]
                    headers={"X-Request-Id": new_request_id()},
                    timeout=router.proxy_timeout,
                )
            except OSError:
                continue
            if upstream.status == 200:
                try:
                    payload["replica"] = json.loads(upstream.body)
                    payload["replica_id"] = replica.id
                except ValueError:  # pragma: no cover - defensive
                    pass
                break
        if "router" not in payload and "replica" not in payload:
            raise _HTTPFail(
                404, "NotFound", f"no trace recorded for request id {request_id!r}"
            )
        self._send_json(200, payload)

    # ------------------------------------------------------------------ #
    # Logging plumbing
    # ------------------------------------------------------------------ #
    def log_request(self, code: object = "-", size: object = "-") -> None:
        try:
            self._response_status = int(getattr(code, "value", code))
        except (TypeError, ValueError):
            pass

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        self.server.log(format % args)  # type: ignore[attr-defined]


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #
def replica_argv(replica_id: str, extra_args: Sequence[str] = ()) -> List[str]:
    """Default argv for one replica: ``serve-http`` on an ephemeral port.

    The replica binds loopback port 0 and announces the chosen port on its
    boot line; ``--replica-id`` stamps every response with
    ``X-KPlex-Replica`` so clients (and the bench gates) can see which
    process answered.  ``extra_args`` carries the cluster-wide serve-http
    flags (``--register``, ``--cache-entries``, ``--snapshot``, ...).
    """
    return [
        sys.executable, "-m", "repro.cli", "serve-http",
        "--host", "127.0.0.1", "--port", "0",
        "--replica-id", replica_id,
        *extra_args,
    ]


def _build_cluster(
    replicas: int,
    host: str,
    port: int,
    argv_factory: Optional[Callable[[str], List[str]]],
    replica_args: Sequence[str],
    vnodes: int,
    peer_warm: bool,
    warm_queue_depth: int,
    proxy_timeout: float,
    boot_timeout: float,
    max_restarts: Optional[int],
    trace_capacity: int,
    logger,
    quiet_replicas: bool,
) -> ClusterRouter:
    if replicas < 1:
        raise ClusterError("a cluster needs at least one replica")
    ids = [f"r{index}" for index in range(replicas)]
    factory = argv_factory or (lambda rid: replica_argv(rid, replica_args))
    replica_set = ReplicaSet(
        ids,
        factory,
        boot_timeout=boot_timeout,
        restart_policy=DEFAULT_RESTART_POLICY,
        max_restarts=max_restarts,
        quiet=quiet_replicas,
    )
    replica_set.start()
    try:
        return ClusterRouter(
            (host, port),
            replica_set,
            vnodes=vnodes,
            peer_warm=peer_warm,
            warm_queue_depth=warm_queue_depth,
            proxy_timeout=proxy_timeout,
            trace_capacity=trace_capacity,
            logger=logger,
        )
    except BaseException:
        replica_set.stop(timeout=5.0)
        raise


def start_cluster(
    replicas: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    argv_factory: Optional[Callable[[str], List[str]]] = None,
    replica_args: Sequence[str] = (),
    vnodes: int = DEFAULT_VNODES,
    peer_warm: bool = True,
    warm_queue_depth: int = 256,
    proxy_timeout: float = 60.0,
    boot_timeout: float = 30.0,
    max_restarts: Optional[int] = None,
    trace_capacity: int = 256,
    logger=None,
    quiet_replicas: bool = True,
) -> ClusterRouter:
    """Boot replicas + router on a background thread (tests and benchmarks).

    Returns once every replica is ready and the router accepts requests;
    tear the whole topology down with ``router.drain()``.
    """
    router = _build_cluster(
        replicas, host, port, argv_factory, replica_args, vnodes, peer_warm,
        warm_queue_depth, proxy_timeout, boot_timeout, max_restarts,
        trace_capacity, logger, quiet_replicas,
    )
    thread = threading.Thread(
        target=router.serve_forever, name="kplex-cluster-http", daemon=True
    )
    thread.start()
    router._serve_thread = thread  # type: ignore[attr-defined]
    return router


def serve_cluster(
    replicas: int = 2,
    host: str = "127.0.0.1",
    port: int = 8080,
    argv_factory: Optional[Callable[[str], List[str]]] = None,
    replica_args: Sequence[str] = (),
    vnodes: int = DEFAULT_VNODES,
    peer_warm: bool = True,
    warm_queue_depth: int = 256,
    proxy_timeout: float = 60.0,
    boot_timeout: float = 30.0,
    max_restarts: Optional[int] = None,
    trace_capacity: int = 256,
    logger=None,
    quiet_replicas: bool = False,
    ready: Optional[Callable[[ClusterRouter], None]] = None,
    install_signal_handlers: bool = True,
) -> ClusterRouter:
    """Serve until SIGTERM/SIGINT, then drain router and replicas.

    The blocking core of ``kplex-enum serve-cluster``; mirrors
    :func:`repro.server.serve_http`'s contract (``ready`` callback before
    the first request, clean exit-0 drain on SIGTERM).
    """
    router = _build_cluster(
        replicas, host, port, argv_factory, replica_args, vnodes, peer_warm,
        warm_queue_depth, proxy_timeout, boot_timeout, max_restarts,
        trace_capacity, logger, quiet_replicas,
    )
    previous = {}
    if install_signal_handlers:

        def _handle(signum: int, _frame: object) -> None:
            router.log(f"received signal {signum}; draining cluster")
            router.initiate_shutdown()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _handle)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
    try:
        if ready is not None:
            ready(router)
        router.serve_forever()
        router.drain()  # no-op if a signal already drained; else clean stop
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return router
