"""Data-contract checks: epoch-keyed cache keys and resource cleanup.

These encode two invariants PRs 3–9 established by convention:

* every cross-request cache key embeds ``graph.epoch`` so a mutated graph
  can never serve stale artefacts (the epoch-key contract);
* every process-lifetime resource (shared memory, subprocesses, temp
  files) has a cleanup reachable on all paths — a context manager or a
  ``try/finally`` — so a crash mid-request cannot leak segments.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..finding import Finding
from ..model import Project, SourceModule
from ..registry import Check, register_check

__all__ = ["EpochKeyContract", "ResourceCleanup"]

#: Names whose presence marks a module as cache-key territory.
_CACHE_MARKERS = ("ByteBudgetLRU", "ResultCache", "SeedContextCache", "result_cache_key")


def _is_key_builder(name: str) -> bool:
    if name.startswith("test_"):
        return False  # test functions named after keys are not key builders
    return name in ("_key", "key") or "cache_key" in name or name.endswith("_key")


@register_check("epoch-key-contract")
class EpochKeyContract(Check):
    """Cache-key construction that omits the graph epoch.

    In modules that touch the byte-budgeted caches, any key-builder
    function (``_key``, ``*_cache_key``, ``*_key``) must reference
    ``.epoch`` (or take an explicit ``epoch`` parameter, or delegate to
    another key builder).  Likewise, a literal tuple passed straight into
    ``<cache>.put(...)``/``.get(...)`` must carry ``.epoch``.  Keys
    without the epoch serve results computed from a *previous* state of a
    mutated graph — the exact staleness bug the epoch token exists to
    make impossible.
    """

    description = "cache key built without graph.epoch in cache-owning modules"

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.tree is None or not self._is_cache_module(module):
                continue
            yield from self._check_key_builders(module)
            yield from self._check_inline_keys(module)

    @staticmethod
    def _is_cache_module(module: SourceModule) -> bool:
        return any(marker in module.text for marker in _CACHE_MARKERS)

    def _check_key_builders(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_key_builder(node.name):
                continue
            if self._mentions_epoch(node) or self._delegates(module, node):
                continue
            qualname = module.enclosing_function(node)
            symbol = f"{qualname}.{node.name}" if qualname else node.name
            yield Finding(
                file=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                check=self.name,
                message=(
                    f"cache key builder '{node.name}' never references "
                    f"graph.epoch (and takes no 'epoch' parameter): entries "
                    f"keyed by it survive graph mutation and serve stale results"
                ),
                symbol=symbol,
                subject=symbol,
            )

    def _check_inline_keys(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("put", "get", "peek")
                and node.args
                and isinstance(node.args[0], ast.Tuple)
            ):
                continue
            receiver = node.func.value
            receiver_name = receiver.attr if isinstance(receiver, ast.Attribute) else (
                receiver.id if isinstance(receiver, ast.Name) else ""
            )
            if not any(tag in receiver_name.lower() for tag in ("lru", "cache")):
                continue
            if self._mentions_epoch(node.args[0]):
                continue
            yield Finding(
                file=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                check=self.name,
                message=(
                    f"literal cache key passed to {receiver_name}.{node.func.attr}() "
                    f"does not include graph.epoch: the entry outlives graph "
                    f"mutation and serves stale results"
                ),
                symbol=module.enclosing_function(node),
                subject=f"{receiver_name}.{node.func.attr}",
            )

    @staticmethod
    def _mentions_epoch(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and child.attr == "epoch":
                return True
            if isinstance(child, ast.Name) and child.id == "epoch":
                return True
            if isinstance(child, ast.arg) and child.arg == "epoch":
                return True
        return False

    @staticmethod
    def _delegates(module: SourceModule, node: ast.AST) -> bool:
        """Key builder that returns another key builder's result is fine."""
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if name and _is_key_builder(name) and name != getattr(node, "name", None):
                return True
        return False


#: Call suffixes creating resources that must be cleaned up.
_CREATORS: Tuple[Tuple[str, str], ...] = (
    ("shared_memory.SharedMemory", "shared-memory segment"),
    ("SharedMemory", "shared-memory segment"),
    ("subprocess.Popen", "subprocess"),
    ("tempfile.NamedTemporaryFile", "temporary file"),
    ("tempfile.TemporaryDirectory", "temporary directory"),
    ("tempfile.mkdtemp", "temporary directory"),
)

_CLEANUP_ATTRS = frozenset(
    {"close", "unlink", "terminate", "kill", "shutdown", "stop", "cleanup",
     "release", "wait", "communicate", "join", "_reap"}
)


@register_check("resource-cleanup")
class ResourceCleanup(Check):
    """Resource creation without a cleanup reachable on all paths.

    Tracks locals bound from ``SharedMemory(...)``, ``subprocess.Popen``
    and tempfile factories.  A handle that never *escapes* the function
    (returned, yielded, stored on ``self``/a container, or passed to
    another call — all of which move cleanup responsibility elsewhere)
    must be cleaned up in-function: via a ``with`` block, or a cleanup
    call (``close``/``unlink``/``terminate``/...) that sits in a
    ``finally:`` suite when other calls between creation and cleanup can
    raise past it.
    """

    description = (
        "SharedMemory/subprocess/tempfile handle without close/unlink/"
        "terminate on all paths"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in module.walk():
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(module, node)

    def _creator_kind(self, module: SourceModule, call: ast.Call) -> Optional[str]:
        dotted = module.call_name(call)
        if dotted is None:
            return None
        for suffix, kind in _CREATORS:
            if dotted == suffix or dotted.endswith("." + suffix):
                return kind
        return None

    def _check_function(
        self, module: SourceModule, func: ast.AST
    ) -> Iterator[Finding]:
        # Creations bound to a simple local: ``var = SharedMemory(...)``.
        creations: List[Tuple[str, ast.Call, str]] = []
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            kind = self._creator_kind(module, node.value)
            if kind is None:
                continue
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                # Inside a nested function? Attribute it to the inner scope
                # only (avoid double-reporting through the outer walk).
                if self._owning_function(module, node) is not func:
                    continue
                creations.append((node.targets[0].id, node.value, kind))
        for var, call, kind in creations:
            yield from self._check_handle(module, func, var, call, kind)

    @staticmethod
    def _owning_function(module: SourceModule, node: ast.AST):
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return ancestor
        return None

    def _check_handle(
        self,
        module: SourceModule,
        func: ast.AST,
        var: str,
        creation: ast.Call,
        kind: str,
    ) -> Iterator[Finding]:
        escaped = False
        cleanup_nodes: List[ast.AST] = []
        other_calls_after_creation = False
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id == var and node is not creation:
                if node.lineno < creation.lineno:
                    continue
                parent = module.parents.get(node)
                if isinstance(node.ctx, ast.Store):
                    if isinstance(parent, ast.Assign) and parent.value is creation:
                        continue  # the creating assignment's own target
                    if self._is_with_alias(module, node, creation):
                        return  # ``with Creator(...) as var:`` — managed
                    escaped = True  # rebound; we lose track, stay quiet
                    continue
                if isinstance(parent, ast.Attribute):
                    grand = module.parents.get(parent)
                    if (
                        parent.attr in _CLEANUP_ATTRS
                        and isinstance(grand, ast.Call)
                        and grand.func is parent
                    ):
                        cleanup_nodes.append(grand)
                    continue
                # Bare use in any other position: returned, yielded, passed
                # as an argument, stored in a container/attribute — the
                # handle escapes and cleanup responsibility moves with it.
                escaped = True
        if escaped:
            return
        if not cleanup_nodes:
            yield Finding(
                file=module.relpath,
                line=creation.lineno,
                col=creation.col_offset,
                check=self.name,
                message=(
                    f"{kind} '{var}' is created here but never closed/unlinked/"
                    f"terminated and never leaves this function: it leaks on "
                    f"every call; use a context manager or try/finally"
                ),
                symbol=module.enclosing_function(creation),
                subject=var,
            )
            return
        protected = any(module.in_finally(node) for node in cleanup_nodes)
        if protected:
            return
        first_cleanup = min(node.lineno for node in cleanup_nodes)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and node is not creation
                and node not in cleanup_nodes
                and creation.lineno < node.lineno < first_cleanup
            ):
                other_calls_after_creation = True
                break
        if other_calls_after_creation:
            yield Finding(
                file=module.relpath,
                line=creation.lineno,
                col=creation.col_offset,
                check=self.name,
                message=(
                    f"{kind} '{var}' is cleaned up at line {first_cleanup}, but "
                    f"not inside try/finally: an exception raised between "
                    f"creation and cleanup leaks the resource"
                ),
                symbol=module.enclosing_function(creation),
                subject=var,
            )

    @staticmethod
    def _is_with_alias(module: SourceModule, node: ast.AST, creation: ast.Call) -> bool:
        parent = module.parents.get(node)
        return isinstance(parent, ast.withitem) and parent.context_expr is creation
