"""Task-based parallel enumeration and the deterministic scheduler model."""

from .executor import (
    DEFAULT_TIMEOUT_SECONDS,
    ParallelConfig,
    parallel_enumerate_maximal_kplexes,
)
from .scheduler import (
    SimulationReport,
    StageScheduler,
    collect_task_costs,
    speedup_curve,
    timeout_curve,
)

__all__ = [
    "ParallelConfig",
    "parallel_enumerate_maximal_kplexes",
    "DEFAULT_TIMEOUT_SECONDS",
    "StageScheduler",
    "SimulationReport",
    "collect_task_costs",
    "speedup_curve",
    "timeout_curve",
]
