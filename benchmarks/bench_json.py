"""Machine-readable micro-benchmark runner (``make bench-json``).

Runs a fixed set of hot-path micro-benchmarks several times each and writes
per-bench median wall-clock times to a JSON file (``BENCH_results.json`` by
default).  The file is the repository's performance trail: successive PRs
append comparable numbers, so regressions and wins are visible from the
diff.

Usage::

    python benchmarks/bench_json.py [--output BENCH_results.json] [--repeats 5]

Only the stdlib and :mod:`repro` are used; every workload is deterministic.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from typing import Callable, Dict, List

from repro.api import EnumerationRequest, KPlexEngine
from repro.core import enumerate_maximal_kplexes
from repro.datasets import load_dataset
from repro.experiments.workloads import service_replay_workloads
from repro.graph import (
    CSRGraph,
    Graph,
    invalidate,
    prepare,
    set_backed_core_decomposition,
    shrink_to_core,
)
from repro.service import KPlexService, ServiceConfig

REPEATED_QUERIES = 20
SERVICE_REPLAY_ROUNDS = 10


def _timed(function: Callable[[], object], repeats: int) -> Dict[str, object]:
    samples: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return {
        "median_seconds": round(statistics.median(samples), 6),
        "min_seconds": round(min(samples), 6),
        "runs": repeats,
    }


def run_benches(repeats: int) -> Dict[str, object]:
    benches: Dict[str, Dict[str, object]] = {}
    engine = KPlexEngine()

    # ---- repeated-query replay: the prepared-graph cache headline ---- #
    graph = load_dataset("enwiki-2021")

    def replay(cold: bool) -> None:
        if not cold:
            invalidate(graph)
        for _ in range(REPEATED_QUERIES):
            if cold:
                invalidate(graph)
            engine.solve(EnumerationRequest(graph=graph, k=2, q=20))

    benches["repeated_queries_uncached"] = _timed(lambda: replay(True), repeats)
    benches["repeated_queries_cached"] = _timed(lambda: replay(False), repeats)

    # ---- component micro-benchmarks ---- #
    component_graph = load_dataset("soc-epinions")

    benches["core_decomposition_cold"] = _timed(
        lambda: set_backed_core_decomposition(component_graph), repeats
    )
    prepare(component_graph).decomposition  # warm the cache once
    benches["core_decomposition_cached"] = _timed(
        lambda: prepare(component_graph).decomposition, repeats
    )
    csr = CSRGraph.from_graph(component_graph)

    sample = range(0, component_graph.num_vertices, 4)
    benches["two_hop_set_backed"] = _timed(
        lambda: [component_graph.two_hop_neighbors(v) for v in sample], repeats
    )
    benches["two_hop_csr"] = _timed(
        lambda: [csr.two_hop_neighbors(v) for v in sample], repeats
    )

    benches["csr_construction"] = _timed(
        lambda: CSRGraph.from_graph(component_graph), repeats
    )

    # ---- CSR kernel backends: full-graph sweeps (numpy vs array vs sets) ---- #
    from repro.graph.csr import available_csr_backends, csr_class

    sweep_graph = load_dataset("enwiki-2021")
    benches["two_hop_sweep_set_backed"] = _timed(
        lambda: [
            len(sweep_graph.two_hop_neighbors(v)) for v in sweep_graph.vertices()
        ],
        repeats,
    )
    array_csr = csr_class("array").from_graph(sweep_graph)
    benches["two_hop_sweep_csr_array"] = _timed(array_csr.two_hop_counts, repeats)
    if "numpy" in available_csr_backends():
        numpy_csr = csr_class("numpy").from_graph(sweep_graph)
        benches["two_hop_sweep_csr_numpy"] = _timed(numpy_csr.two_hop_counts, repeats)
        benches["core_peel_csr_numpy"] = _timed(
            lambda: [numpy_csr.k_core_alive(level) for level in (2, 4, 8)], repeats
        )
        benches["core_peel_csr_array"] = _timed(
            lambda: [array_csr.k_core_alive(level) for level in (2, 4, 8)], repeats
        )

    # ---- shared-memory worker transfer vs per-worker pickle ---- #
    from repro.graph.shared import attach_prepared, shared_memory_available

    if shared_memory_available():
        import pickle as _pickle

        transfer_prepared = prepare(sweep_graph)
        transfer_prepared.csr
        transfer_prepared.position
        payload = transfer_prepared.for_worker_transfer()
        benches["worker_transfer_pickle_roundtrip"] = _timed(
            lambda: _pickle.loads(_pickle.dumps(payload)), repeats
        )
        with transfer_prepared.share() as shared_graph:
            descriptor = shared_graph.descriptor()
            benches["worker_transfer_shm_attach"] = _timed(
                lambda: attach_prepared(descriptor), repeats
            )
            shm_bytes = {
                "pickled_bytes_per_worker": len(_pickle.dumps(payload)),
                "descriptor_bytes_per_worker": len(_pickle.dumps(descriptor)),
                "segment_bytes_total": shared_graph.nbytes,
            }
    else:  # pragma: no cover - platforms without /dev/shm
        shm_bytes = None

    edges = list(component_graph.edges())
    benches["graph_from_edges"] = _timed(lambda: Graph.from_edges(edges), repeats)

    def shrink_cold() -> None:
        invalidate(component_graph)
        shrink_to_core(component_graph, 6)

    benches["shrink_to_core_cold"] = _timed(shrink_cold, repeats)

    # ---- end-to-end enumeration (search-dominated; must not regress) ---- #
    jazz = load_dataset("jazz")

    def solve_jazz() -> None:
        invalidate(jazz)
        enumerate_maximal_kplexes(jazz, 2, 8)

    benches["end_to_end_jazz_k2_q8"] = _timed(solve_jazz, repeats)

    # ---- serving layer: repeated-workload replay (result cache) ---- #
    service_workloads = service_replay_workloads("quick", repeats=SERVICE_REPLAY_ROUNDS)
    service_graphs = {
        workload.dataset: load_dataset(workload.dataset)
        for workload in service_workloads
    }
    for service_graph in service_graphs.values():
        engine.prepare(service_graph)  # both replays start from a warm index

    def replay_bare_engine() -> None:
        for workload in service_workloads:
            engine.solve(workload.to_request(graph=service_graphs[workload.dataset]))

    def replay_service() -> None:
        # A fresh service per run: every replay pays its own fill round, so
        # the number is the honest end-to-end cost of the workload.
        with KPlexService(config=ServiceConfig(max_workers=2)) as service:
            for name, service_graph in service_graphs.items():
                service.catalog.register(name, service_graph)
            for workload in service_workloads:
                service.solve(workload.dataset, k=workload.k, q=workload.q)

    benches["service_replay_bare_engine"] = _timed(replay_bare_engine, repeats)
    benches["service_replay_cached"] = _timed(replay_service, repeats)

    # ---- HTTP front-end: cold vs warm-started restart, over the wire ---- #
    import os
    import tempfile

    from repro.server import ServiceClient, start_server, warm_start

    http_workloads = service_replay_workloads("quick", repeats=1)
    snapshot_path = os.path.join(tempfile.mkdtemp(), "bench-warm.json")

    def http_boot(path=None):
        service = KPlexService(config=ServiceConfig(max_workers=2))
        server = start_server(service, port=0, snapshot_path=path)
        client = ServiceClient(server.url)
        client.wait_ready()
        for name in {workload.dataset for workload in http_workloads}:
            client.register(name, dataset=name)
        return service, server, client

    def http_replay(client) -> None:
        for workload in http_workloads:
            client.solve(
                workload.dataset, k=workload.k, q=workload.q, include_results=False
            )

    service, server, client = http_boot(snapshot_path)
    http_replay(client)
    server.drain()  # writes the snapshot

    # Per repeat: one fresh cold server and one fresh warm-started server,
    # timing only the serving phase — the question is what the recurring
    # workload costs after each kind of restart, not what boot costs.
    cold_samples: List[float] = []
    warm_samples: List[float] = []
    for _ in range(repeats):
        _cold_service, cold_server, cold_client = http_boot()
        started = time.perf_counter()
        http_replay(cold_client)
        cold_samples.append(time.perf_counter() - started)
        cold_server.drain()

        warm_service, warm_server, warm_client = http_boot()
        warm_start(warm_service, snapshot_path)
        started = time.perf_counter()
        http_replay(warm_client)
        warm_samples.append(time.perf_counter() - started)
        warm_server.drain()

    def _sampled(samples: List[float]) -> Dict[str, object]:
        return {
            "median_seconds": round(statistics.median(samples), 6),
            "min_seconds": round(min(samples), 6),
            "runs": len(samples),
        }

    benches["http_restart_cold_serve"] = _sampled(cold_samples)
    benches["http_restart_warm_started_serve"] = _sampled(warm_samples)

    # ---- async jobs: time-to-first-result, streamed vs synchronous ---- #
    # Caches disabled so both transports pay true search cost every round;
    # the comparison is chunked NDJSON streaming vs waiting for the full
    # /v1/solve body on the same jazz k=2 q=4 workload.
    jobs_service = KPlexService(
        config=ServiceConfig(
            max_workers=2, result_cache_entries=0, seed_cache_entries=0
        )
    )
    jobs_server = start_server(jobs_service, port=0)
    jobs_client = ServiceClient(jobs_server.url)
    jobs_client.wait_ready()
    jobs_client.register("jazz", dataset="jazz")

    sync_first_samples: List[float] = []
    stream_first_samples: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        jobs_client.solve("jazz", k=2, q=4)
        sync_first_samples.append(time.perf_counter() - started)

        started = time.perf_counter()
        job_record = jobs_client.submit_job("jazz", k=2, q=4, result_buffer=10_000)
        stream = jobs_client.iter_job_results(job_record["id"])
        for item in stream:
            if "kplex" in item:
                stream_first_samples.append(time.perf_counter() - started)
                break
        stream.close()  # drop the connection; the job finishes on its own
        jobs_client.wait_job(job_record["id"])
    jobs_server.drain()

    benches["job_sync_solve_first_result"] = _sampled(sync_first_samples)
    benches["job_stream_first_result"] = _sampled(stream_first_samples)

    uncached = benches["repeated_queries_uncached"]["median_seconds"]
    cached = benches["repeated_queries_cached"]["median_seconds"]
    service_bare = benches["service_replay_bare_engine"]["median_seconds"]
    service_cached = benches["service_replay_cached"]["median_seconds"]
    http_cold = benches["http_restart_cold_serve"]["median_seconds"]
    http_warm = benches["http_restart_warm_started_serve"]["median_seconds"]
    job_sync_first = benches["job_sync_solve_first_result"]["median_seconds"]
    job_stream_first = benches["job_stream_first_result"]["median_seconds"]
    sweep_set = benches["two_hop_sweep_set_backed"]["median_seconds"]
    sweep_numpy = (
        benches["two_hop_sweep_csr_numpy"]["median_seconds"]
        if "two_hop_sweep_csr_numpy" in benches
        else None
    )
    derived = {
        "repeated_query_speedup": round(uncached / cached, 2) if cached else None,
        "requests_per_replay": REPEATED_QUERIES,
        "two_hop_sweep_numpy_speedup": (
            round(sweep_set / sweep_numpy, 2) if sweep_numpy else None
        ),
        "worker_transfer_bytes": shm_bytes,
        "service_replay_speedup": (
            round(service_bare / service_cached, 2) if service_cached else None
        ),
        "service_requests_per_replay": len(service_workloads),
        "http_warm_restart_speedup": (
            round(http_cold / http_warm, 2) if http_warm else None
        ),
        "http_requests_per_replay": len(http_workloads),
        "job_ttfr_speedup": (
            round(job_sync_first / job_stream_first, 2) if job_stream_first else None
        ),
    }
    return {
        "schema": 1,
        "python": platform.python_version(),
        "benches": benches,
        "derived": derived,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_results.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()
    payload = run_benches(args.repeats)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    speedup = payload["derived"]["repeated_query_speedup"]
    service_speedup = payload["derived"]["service_replay_speedup"]
    http_speedup = payload["derived"]["http_warm_restart_speedup"]
    job_speedup = payload["derived"]["job_ttfr_speedup"]
    print(
        f"wrote {args.output} (repeated-query speedup: {speedup}x, "
        f"service-replay speedup: {service_speedup}x, "
        f"http warm-restart speedup: {http_speedup}x, "
        f"job-stream TTFR speedup: {job_speedup}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
