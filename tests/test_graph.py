"""Unit tests for the Graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph


def test_from_edges_basic():
    graph = Graph.from_edges([(0, 1), (1, 2)])
    assert graph.num_vertices == 3
    assert graph.num_edges == 2
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 0)
    assert not graph.has_edge(0, 2)


def test_from_edges_drops_duplicates_and_self_loops():
    graph = Graph.from_edges([(0, 1), (1, 0), (0, 0), (0, 1)])
    assert graph.num_vertices == 2
    assert graph.num_edges == 1


def test_from_edges_with_labels():
    graph = Graph.from_edges([("a", "b"), ("b", "c")], vertices=["a", "b", "c", "isolated"])
    assert graph.num_vertices == 4
    assert graph.label(0) == "a"
    assert graph.index_of("c") == 2
    assert graph.degree(graph.index_of("isolated")) == 0


def test_index_of_unknown_label_raises():
    graph = Graph.from_edges([("a", "b")])
    with pytest.raises(GraphError):
        graph.index_of("zzz")


def test_duplicate_labels_rejected():
    with pytest.raises(GraphError):
        Graph([set(), set()], labels=["x", "x"])


def test_asymmetric_adjacency_rejected():
    with pytest.raises(GraphError):
        Graph([{1}, set()])


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        Graph([{0}])


def test_out_of_range_neighbour_rejected():
    with pytest.raises(GraphError):
        Graph([{5}])


def test_degrees_and_max_degree():
    graph = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
    assert graph.degrees() == [3, 1, 1, 1]
    assert graph.max_degree() == 3
    assert Graph.empty(0).max_degree() == 0


def test_edges_iteration_unique():
    graph = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
    edges = sorted(graph.edges())
    assert edges == [(0, 1), (0, 2), (1, 2)]


def test_two_hop_neighbors():
    # Path 0 - 1 - 2 - 3
    graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert graph.two_hop_neighbors(0) == frozenset({2})
    assert graph.neighborhood_within_two_hops(0) == frozenset({0, 1, 2})
    assert graph.two_hop_neighbors(1) == frozenset({3})


def test_common_neighbors():
    graph = Graph.from_edges([(0, 2), (1, 2), (0, 3), (1, 3), (0, 1)], vertices=range(4))
    assert graph.common_neighbors(0, 1) == frozenset({2, 3})


def test_induced_subgraph_preserves_labels():
    graph = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")])
    sub, mapping = graph.induced_subgraph([graph.index_of("a"), graph.index_of("b"), graph.index_of("c")])
    assert sub.num_vertices == 3
    assert sub.num_edges == 3
    assert sorted(sub.labels()) == ["a", "b", "c"]
    assert [graph.label(v) for v in mapping] == [sub.label(i) for i in range(3)]


def test_complete_and_empty_constructors():
    complete = Graph.complete(5)
    assert complete.num_edges == 10
    empty = Graph.empty(4)
    assert empty.num_edges == 0
    assert len(empty) == 4


def test_contains_and_repr():
    graph = Graph.from_edges([(0, 1)])
    assert 0 in graph
    assert 5 not in graph
    assert "Graph(n=2, m=1)" == repr(graph)


def test_equality():
    first = Graph.from_edges([(0, 1), (1, 2)])
    second = Graph.from_edges([(0, 1), (1, 2)])
    third = Graph.from_edges([(0, 1), (0, 2)])
    assert first == second
    assert first != third
