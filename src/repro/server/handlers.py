"""HTTP request handling for the k-plex serving front-end.

One :class:`KPlexRequestHandler` instance handles one connection of the
:class:`~repro.server.app.KPlexHTTPServer`.  The wire contract is plain
JSON over HTTP/1.1 (stdlib only, no framework):

=========  ===========================  =========================================
Method     Path                         Meaning
=========  ===========================  =========================================
``GET``    ``/healthz``                 liveness (``503`` while draining)
``GET``    ``/readyz``                  readiness: ``503`` while draining, the
                                        circuit breaker is open or the worker
                                        pool is degraded to serial
``GET``    ``/v1/graphs``               catalog listing
``POST``   ``/v1/graphs``               register a graph (edges / path / dataset)
``POST``   ``/v1/solve``                run one enumeration request synchronously
``GET``    ``/v1/metrics``              service metrics (``?format=prometheus``)
``POST``   ``/v1/snapshot``             write a warm-state snapshot now
``POST``   ``/v1/jobs``                 submit an async job (``202`` + job id)
``GET``    ``/v1/jobs``                 list jobs (``?state=`` filters)
``GET``    ``/v1/jobs/<id>``            poll one job's state and progress
``DELETE`` ``/v1/jobs/<id>``            cancel a job (cooperative)
``GET``    ``/v1/jobs/<id>/results``    buffered results; ``?stream=1`` streams
                                        NDJSON over chunked transfer encoding
``GET``    ``/v1/trace``                recent traces (``?min_ms=`` filters,
                                        ``?limit=`` bounds)
``GET``    ``/v1/trace/<request_id>``   one request's full span tree
=========  ===========================  =========================================

Every request runs under its own trace: the server honours a
client-supplied ``X-Request-Id`` header (and always echoes the id back in
the response), records the completed span tree into an in-memory ring
buffer served by the ``/v1/trace`` routes, and emits one structured
``http_request`` telemetry event per request.

Every error is a structured body ``{"error": {"type", "message", "status"}}``
so clients can map failures back to the library's exception types:
overload (including a full job queue) maps to ``429`` (with a
``Retry-After`` hint), a draining or closed service to ``503``, an
exceeded server-side hard deadline to ``504``, unknown catalog names and
job ids to ``404``, duplicate registrations and invalid job-state
transitions to ``409``, results evicted from a job's bounded buffer to
``410`` and every validation problem to ``400``.

The streaming route is the one place the server holds a connection open:
results are written as one NDJSON line per chunk while the enumeration
runs, a heartbeat line keeps idle streams alive, and the final line is a
``{"done": true, ...}`` record carrying the job's terminal state — so a
client always knows whether the stream ended or was cut.
"""

from __future__ import annotations

import json
import logging
import math
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..core.config import EnumerationConfig
from ..errors import (
    CatalogError,
    CircuitOpenError,
    JobError,
    JobNotFoundError,
    JobResultsTruncatedError,
    JobStateError,
    ParameterError,
    ReproError,
    ResilienceError,
    ServiceClosedError,
    ServiceOverloadError,
    SnapshotError,
)
from ..jobs import READ_END, READ_ITEM
from ..obs import Trace, activate, log_event, new_request_id
from ..resilience import fault_injector, resilience_stats
from .persistence import save_snapshot

#: Largest accepted request body; registering a graph inline dominates.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Longest accepted client-supplied ``X-Request-Id`` (longer ids are cut).
MAX_REQUEST_ID_CHARS = 128


class _HTTPFail(Exception):
    """Internal short-circuit carrying a ready-to-send structured error."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind


def _classify(exc: Exception) -> Tuple[int, str]:
    """Map a library exception to an HTTP status and error-type label."""
    if isinstance(exc, ServiceOverloadError):
        # Includes JobQueueFullError: a full job table is the same
        # load-shedding signal as a full sync queue.
        return 429, type(exc).__name__
    if isinstance(exc, CircuitOpenError):
        # The breaker sheds load while the backend is unhealthy; the
        # exception carries the remaining cooldown for Retry-After.
        return 503, "CircuitOpenError"
    if isinstance(exc, ServiceClosedError):
        return 503, "ServiceClosedError"
    if isinstance(exc, ResilienceError):
        # Poison tasks / unrecoverable worker crashes are backend failures,
        # not client mistakes.
        return 500, type(exc).__name__
    if isinstance(exc, JobNotFoundError):
        return 404, "JobNotFoundError"
    if isinstance(exc, JobStateError):
        return 409, "JobStateError"
    if isinstance(exc, JobResultsTruncatedError):
        return 410, "JobResultsTruncatedError"
    if isinstance(exc, JobError):
        return 400, type(exc).__name__
    if isinstance(exc, CatalogError):
        text = str(exc)
        if "unknown catalog graph" in text:
            return 404, "CatalogError"
        if "already registered" in text:
            return 409, "CatalogError"
        return 400, "CatalogError"
    if isinstance(exc, SnapshotError):
        return 500, "SnapshotError"
    if isinstance(exc, ParameterError):
        return 400, "ParameterError"
    if isinstance(exc, ReproError):
        return 400, type(exc).__name__
    return 500, type(exc).__name__


class KPlexRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`KPlexService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"kplex-enum/{__version__}"
    # The status/header flush and the body are separate writes; with Nagle
    # on, the body segment stalls behind the client's delayed ACK (~40ms
    # per response on Linux loopback).
    disable_nagle_algorithm = True
    # Socket inactivity bound so a stalled client cannot wedge the
    # drain-time handler join forever.
    timeout = 60.0
    # Per-request state (set by _dispatch; class defaults keep log_message
    # safe on connections that never reach a route).
    _request_id: Optional[str] = None
    _response_status: int = 0

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(
            {
                "/healthz": self._get_health,
                "/readyz": self._get_ready,
                "/v1/graphs": self._get_graphs,
                "/v1/metrics": self._get_metrics,
                "/v1/jobs": self._get_jobs,
                "/v1/trace": self._get_traces,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(
            {
                "/v1/solve": self._post_solve,
                "/v1/graphs": self._post_graphs,
                "/v1/snapshot": self._post_snapshot,
                "/v1/jobs": self._post_jobs,
            }
        )

    def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch({})

    def _job_route(self, path: str):
        """Resolve ``/v1/jobs/<id>[/results]`` to a bound sub-handler.

        Returns ``None`` for paths outside the jobs subtree so the exact
        routes keep their 404/405 behaviour.
        """
        parts = path.rstrip("/").split("/")
        if parts[:3] != ["", "v1", "jobs"] or len(parts) < 4 or not parts[3]:
            return None
        job_id = parts[3]
        if len(parts) == 4:
            by_method = {
                "GET": self._get_job,
                "DELETE": self._delete_job,
            }
        elif len(parts) == 5 and parts[4] == "results":
            by_method = {"GET": self._get_job_results}
        else:
            raise _HTTPFail(404, "NotFound", f"no route for {path}")
        handler = by_method.get(self.command)
        if handler is None:
            raise _HTTPFail(
                405, "MethodNotAllowed", f"{self.command} not allowed on {path}"
            )
        return lambda query: handler(query, job_id)

    def _trace_route(self, path: str):
        """Resolve ``/v1/trace/<request_id>`` to a bound sub-handler."""
        parts = path.rstrip("/").split("/")
        if parts[:3] != ["", "v1", "trace"] or len(parts) != 4 or not parts[3]:
            return None
        if self.command != "GET":
            raise _HTTPFail(
                405, "MethodNotAllowed", f"{self.command} not allowed on {path}"
            )
        request_id = parts[3]
        return lambda query: self._get_trace(query, request_id)

    def _dispatch(self, routes: Dict[str, object]) -> None:
        parsed = urlparse(self.path)
        started = time.time()
        supplied = (self.headers.get("X-Request-Id") or "").strip()
        self._request_id = (
            supplied[:MAX_REQUEST_ID_CHARS] if supplied else new_request_id()
        )
        self._response_status = 0
        recorder = getattr(self.server, "recorder", None)
        if recorder is not None:
            trace: Optional[Trace] = Trace(request_id=self._request_id)
            root = trace.span("http", method=self.command, path=parsed.path)
            # Registered live, not on completion: a client may fetch its own
            # trace the instant it has the response, which can beat a
            # post-send record on a fresh connection; this also makes
            # still-running requests visible under /v1/trace.
            recorder.record(trace)
        else:
            # Tracing disabled (trace_capacity=0): every span() downstream
            # degrades to the shared no-op, keeping the hot path span-free.
            trace = None
            root = None
        handler = routes.get(parsed.path)
        try:
            with activate(root):
                try:
                    if handler is None:
                        handler = self._job_route(parsed.path)
                    if handler is None:
                        handler = self._trace_route(parsed.path)
                    if handler is None:
                        known = {"/healthz", "/readyz", "/v1/graphs", "/v1/metrics",
                                 "/v1/solve", "/v1/snapshot", "/v1/jobs", "/v1/trace"}
                        if parsed.path in known:
                            raise _HTTPFail(
                                405, "MethodNotAllowed", f"{self.command} not allowed on {parsed.path}"
                            )
                        raise _HTTPFail(404, "NotFound", f"no route for {parsed.path}")
                    handler(parse_qs(parsed.query))  # type: ignore[operator]
                except _HTTPFail as fail:
                    self._send_error_body(fail.status, fail.kind, str(fail))
                except Exception as exc:  # noqa: BLE001 - every error becomes a body
                    status, kind = _classify(exc)
                    if root is not None:
                        root.set(error=kind)
                    self._send_error_body(
                        status, kind, str(exc),
                        retry_after=getattr(exc, "retry_after", None),
                    )
        finally:
            self._finish_request(trace, root, parsed.path, started)

    #: Exact routes whose paths are safe as a metric label as-is.
    _EXACT_ROUTES = frozenset({
        "/healthz", "/readyz", "/v1/graphs", "/v1/metrics",
        "/v1/solve", "/v1/snapshot", "/v1/jobs", "/v1/trace",
    })

    @classmethod
    def _route_label(cls, path: str) -> str:
        """Bounded-cardinality route label: ids collapse to placeholders."""
        if path in cls._EXACT_ROUTES:
            return path
        parts = path.rstrip("/").split("/")
        if parts[:3] == ["", "v1", "jobs"] and len(parts) >= 4:
            if len(parts) == 5 and parts[4] == "results":
                return "/v1/jobs/<id>/results"
            if len(parts) == 4:
                return "/v1/jobs/<id>"
        if parts[:3] == ["", "v1", "trace"] and len(parts) == 4:
            return "/v1/trace/<id>"
        return "<other>"

    def _finish_request(
        self, trace: Optional[Trace], root, path: str, started: float
    ) -> None:
        """Close the request trace, record it, and emit access telemetry."""
        status = self._response_status
        duration = time.time() - started
        server = self.server
        if trace is not None:
            # Already in the recorder (registered at dispatch); only close.
            root.set(status=status)
            root.finish("error" if status >= 500 else "ok")
            trace.finish()
        route = self._route_label(path)
        service = getattr(server, "service", None)
        if service is not None:
            telemetry = service.telemetry
            telemetry.counter(
                "http_requests_total",
                labels={"route": route, "status": str(status)},
                help_text="HTTP requests by route and status code.",
            ).inc()
            telemetry.histogram(
                "http_request_duration_seconds",
                labels={"route": route},
                help_text="Wall-clock HTTP request duration by route.",
            ).observe(duration)
        record: Dict[str, object] = {
            "method": self.command,
            "path": path,
            "status": status,
            "duration_ms": round(duration * 1000.0, 3),
            "request_id": self._request_id,
            "client": self.client_address[0] if self.client_address else None,
        }
        log_event("http_request", **record)
        threshold = getattr(server, "slow_request_threshold", None)
        if threshold is not None and duration >= threshold:
            log_event(
                "slow_request",
                level=logging.WARNING,
                threshold_seconds=threshold,
                spans=trace.tree() if trace is not None else None,
                **record,
            )
        if getattr(server, "access_log_format", "plain") == "json":
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            line = (
                f'{record["client"] or "-"} "{self.command} {path}" {status} '
                f'{record["duration_ms"]}ms {self._request_id}'
            )
        server.log(line)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _get_health(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        if self.server.draining or service.closed:  # type: ignore[attr-defined]
            self._send_json(
                503,
                {"status": "draining"},
                headers={"Retry-After": str(self._retry_after_hint())},
            )
            return
        self._send_json(
            200,
            {
                "status": "ok",
                "graphs": len(service.catalog),
                "in_flight": service.metrics()["in_flight"],
            },
        )

    def _get_ready(self, _query: Dict[str, list]) -> None:
        """Readiness, distinct from liveness: should a router send traffic?

        ``503`` while draining/closed, while the circuit breaker is *open*
        (half-open stays ready — the probe request has to get through), and
        while the parallel worker pool is degraded to serial execution.
        The body always explains why.
        """
        service = self.server.service  # type: ignore[attr-defined]
        breaker = service.breaker
        stats = resilience_stats()
        body: Dict[str, object] = {
            "breaker": breaker.snapshot() if breaker is not None else None,
            "pool_degraded": stats.pool_degraded,
            "recoveries_total": stats.get("pool_recoveries"),
        }
        if self.server.draining or service.closed:  # type: ignore[attr-defined]
            body["status"] = "draining"
        elif breaker is not None and breaker.state == "open":
            body["status"] = "breaker_open"
        elif stats.pool_degraded:
            body["status"] = "degraded"
        else:
            body["status"] = "ready"
            self._send_json(200, body)
            return
        self._send_json(
            503, body, headers={"Retry-After": str(self._retry_after_hint())}
        )

    def _get_graphs(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        self._send_json(200, {"graphs": service.catalog.info()})

    def _get_metrics(self, query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        fmt = (query.get("format") or ["json"])[0].lower()
        metrics = service.metrics()
        jobs = getattr(self.server, "jobs", None)
        if jobs is not None:
            metrics["jobs"] = jobs.metrics()
        if fmt == "prometheus":
            from ..service.service import render_prometheus

            metrics.pop("telemetry", None)
            text = render_prometheus(metrics)
            text += service.telemetry.render_prometheus()
            self._send_text(200, text)
        elif fmt == "json":
            self._send_json(200, metrics)
        else:
            raise _HTTPFail(400, "BadRequest", f"unknown metrics format {fmt!r}")

    def _parse_enum_spec(
        self, body: Dict[str, object]
    ) -> Tuple[str, int, int, Dict[str, object]]:
        """Pop the shared enumeration keys of ``/v1/solve`` and ``/v1/jobs``.

        Returns ``(graph_name, k, q, request_kwargs)``; leftover-key
        validation stays with the caller, which pops its own extras first.
        """
        service = self.server.service  # type: ignore[attr-defined]
        name = self._require(body, "graph", str)
        k = self._require(body, "k", int)
        q = self._require(body, "q", int)
        kwargs: Dict[str, object] = {}
        if body.get("solver") is not None:
            kwargs["solver"] = self._expect(body, "solver", str)
        if body.get("variant") is not None:
            kwargs["variant"] = self._expect(body, "variant", str)
        if body.get("config") is not None:
            config = self._expect(body, "config", dict)
            try:
                kwargs["config"] = EnumerationConfig(**config)
            except (TypeError, ValueError) as exc:
                raise _HTTPFail(400, "BadRequest", f"invalid config: {exc}") from exc
        if body.get("timeout") is not None:
            kwargs["timeout_seconds"] = self._expect(body, "timeout", (int, float))
        if body.get("max_results") is not None:
            kwargs["max_results"] = self._expect(body, "max_results", int)
        if body.get("sort_results") is not None:
            kwargs["sort_results"] = self._expect(body, "sort_results", bool)
        if body.get("options") is not None:
            kwargs["options"] = self._expect(body, "options", dict)
        if body.get("query") is not None:
            labels = self._expect(body, "query", list)
            graph = service.catalog.get(name)
            try:
                kwargs["query_vertices"] = tuple(
                    graph.index_of(label) for label in labels
                )
            except ReproError as exc:
                raise _HTTPFail(400, "GraphError", str(exc)) from exc
        for key in ("graph", "k", "q", "solver", "variant", "config", "timeout",
                    "max_results", "sort_results", "options", "query"):
            body.pop(key, None)
        return name, k, q, kwargs

    def _post_solve(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        body = self._read_json_body()
        include_results = body.pop("include_results", True)
        name, k, q, kwargs = self._parse_enum_spec(body)
        if body:
            raise _HTTPFail(
                400, "BadRequest", f"unknown request keys {sorted(body)}"
            )
        request = service.request(name, k, q, **kwargs)
        # Peek (no stats, no recency) before submitting: the answer header
        # tells the cluster router whether this solve was new work worth
        # warming the backup replica with.
        cache = service.result_cache
        cache_state: Optional[str] = None
        if cache is not None:
            cache_state = "hit" if cache.peek(request) else "miss"
        future = service.submit(request)
        deadline = self.server.request_deadline  # type: ignore[attr-defined]
        try:
            response = future.result(timeout=deadline)
        except FutureTimeoutError:
            future.cancel()
            raise _HTTPFail(
                504,
                "DeadlineExceeded",
                f"request exceeded the server-side deadline of {deadline}s",
            ) from None
        payload: Dict[str, object] = {"graph": name}
        payload.update(response.as_dict(include_results=bool(include_results)))
        headers = {"X-KPlex-Cache": cache_state} if cache_state is not None else None
        self._send_json(200, payload, headers=headers)

    def _post_graphs(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        body = self._read_json_body()
        name = self._require(body, "name", str)
        sources = [key for key in ("edges", "path", "dataset") if body.get(key) is not None]
        if len(sources) != 1:
            raise _HTTPFail(
                400,
                "BadRequest",
                "provide exactly one of 'edges', 'path' or 'dataset'",
            )
        if sources[0] == "edges":
            from ..graph import Graph

            edges = [tuple(edge) for edge in self._expect(body, "edges", list)]
            try:
                source: object = Graph.from_edges(edges, vertices=body.get("vertices"))
            except ReproError as exc:
                raise _HTTPFail(400, "GraphError", str(exc)) from exc
        elif sources[0] == "path":
            source = self._expect(body, "path", str)
        else:
            source = f"dataset:{self._expect(body, 'dataset', str)}"
        prewarm = None
        if body.get("prewarm") is not None:
            prewarm = [tuple(pair) for pair in self._expect(body, "prewarm", list)]
        entry = service.catalog.register(
            name,
            source,
            fmt=body.get("fmt", "auto"),
            prewarm=prewarm,
            replace=bool(body.get("replace", False)),
        )
        self._send_json(201, entry.describe())

    def _post_snapshot(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        body = self._read_json_body(optional=True)
        path = body.get("path") or self.server.snapshot_path  # type: ignore[attr-defined]
        if not path:
            raise _HTTPFail(
                400,
                "BadRequest",
                "no snapshot path: configure --snapshot or pass {'path': ...}",
            )
        # Serialise with the server's other snapshot writers (periodic
        # thread, drain): an endpoint write still in flight must not publish
        # after — and thereby clobber — a fresher drain-time snapshot.
        with self.server._snapshot_lock:  # type: ignore[attr-defined]
            snapshot = save_snapshot(
                service,
                path,
                max_requests=getattr(self.server, "snapshot_max_specs", None),
            )
        self._send_json(
            200,
            {
                "path": str(path),
                "graphs": len(snapshot["graphs"]),
                "hot_requests": len(snapshot["hot_requests"]),
                "seed_specs": len(snapshot["seed_specs"]),
            },
        )

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #
    def _trace_recorder(self):
        recorder = getattr(self.server, "recorder", None)
        if recorder is None:
            raise _HTTPFail(
                503, "ServiceClosedError", "this server records no traces"
            )
        return recorder

    def _get_traces(self, query: Dict[str, list]) -> None:
        recorder = self._trace_recorder()
        min_ms = None
        if query.get("min_ms"):
            try:
                min_ms = float(query["min_ms"][0])
            except ValueError as exc:
                raise _HTTPFail(400, "BadRequest", "'min_ms' must be a number") from exc
        limit = 50
        if query.get("limit"):
            try:
                limit = int(query["limit"][0])
            except ValueError as exc:
                raise _HTTPFail(400, "BadRequest", "'limit' must be an integer") from exc
            if limit < 0:
                raise _HTTPFail(400, "BadRequest", "'limit' must be >= 0")
        records = []
        for trace in recorder.list(min_ms=min_ms, limit=limit):
            root = trace.root
            entry: Dict[str, object] = {
                "request_id": trace.request_id,
                "created_at": round(trace.created_at, 6),
                "spans": len(trace.spans),
                "root": root.name if root is not None else None,
            }
            duration = trace.duration_ms
            if duration is not None:
                entry["duration_ms"] = round(duration, 3)
            records.append(entry)
        self._send_json(
            200,
            {"traces": records, "count": len(records), "recorded": len(recorder)},
        )

    def _get_trace(self, _query: Dict[str, list], request_id: str) -> None:
        trace = self._trace_recorder().get(request_id)
        if trace is None:
            raise _HTTPFail(
                404, "NotFound", f"no trace recorded for request id {request_id!r}"
            )
        payload = trace.to_dict()
        payload["tree"] = trace.tree()
        self._send_json(200, payload)

    # ------------------------------------------------------------------ #
    # Async jobs
    # ------------------------------------------------------------------ #
    def _jobs_manager(self):
        jobs = getattr(self.server, "jobs", None)
        if jobs is None:
            raise _HTTPFail(
                503, "ServiceClosedError", "this server has no job manager"
            )
        return jobs

    def _post_jobs(self, _query: Dict[str, list]) -> None:
        jobs = self._jobs_manager()
        if self.server.draining:  # type: ignore[attr-defined]
            raise _HTTPFail(
                503, "ServiceClosedError", "server is draining; no new jobs"
            )
        body = self._read_json_body()
        result_buffer = None
        if body.get("result_buffer") is not None:
            result_buffer = self._expect(body, "result_buffer", int)
        ttl_seconds = None
        if body.get("ttl") is not None:
            ttl_seconds = self._expect(body, "ttl", (int, float))
        body.pop("result_buffer", None)
        body.pop("ttl", None)
        name, k, q, kwargs = self._parse_enum_spec(body)
        if body:
            raise _HTTPFail(
                400, "BadRequest", f"unknown request keys {sorted(body)}"
            )
        job = jobs.submit(
            name,
            k,
            q,
            result_buffer=result_buffer,
            ttl_seconds=ttl_seconds,
            **kwargs,
        )
        self._send_json(202, job.describe())

    def _get_jobs(self, query: Dict[str, list]) -> None:
        jobs = self._jobs_manager()
        states = None
        raw = query.get("state") or []
        if raw:
            states = [
                state.strip().lower()
                for chunk in raw
                for state in chunk.split(",")
                if state.strip()
            ]
        records = [job.describe() for job in jobs.jobs(states=states)]
        self._send_json(200, {"jobs": records, "count": len(records)})

    def _get_job(self, _query: Dict[str, list], job_id: str) -> None:
        self._send_json(200, self._jobs_manager().get(job_id).describe())

    def _delete_job(self, _query: Dict[str, list], job_id: str) -> None:
        jobs = self._jobs_manager()
        cancelled = jobs.cancel(job_id)
        job = jobs.get(job_id)
        self._send_json(
            200, {"id": job_id, "cancelled": cancelled, "state": job.state}
        )

    def _get_job_results(self, query: Dict[str, list], job_id: str) -> None:
        jobs = self._jobs_manager()
        job = jobs.get(job_id)
        start = 0
        if query.get("start"):
            try:
                start = int(query["start"][0])
            except ValueError as exc:
                raise _HTTPFail(400, "BadRequest", "'start' must be an integer") from exc
            if start < 0:
                raise _HTTPFail(400, "BadRequest", "'start' must be >= 0")
        stream = (query.get("stream") or ["0"])[0].lower() in ("1", "true", "yes")
        if stream:
            heartbeat = 15.0
            if query.get("heartbeat"):
                try:
                    heartbeat = float(query["heartbeat"][0])
                except ValueError as exc:
                    raise _HTTPFail(
                        400, "BadRequest", "'heartbeat' must be a number"
                    ) from exc
                if heartbeat <= 0:
                    raise _HTTPFail(400, "BadRequest", "'heartbeat' must be > 0")
            self._stream_job_results(job, start, heartbeat)
            return
        # ``first > start`` tells the client its window was truncated out
        # of the bounded buffer (re-read from ``first``).
        first, entries, closed = job.results.snapshot(start)
        self._send_json(
            200,
            {
                "job": job.id,
                "state": job.state,
                "start": first,
                "results": entries,
                "complete": closed,
                "dropped": job.results.dropped,
            },
        )

    def _stream_job_results(self, job, start: int, heartbeat: float) -> None:
        """Stream a job's results as NDJSON over chunked transfer encoding.

        One result per line, written as it is produced; the reader cursor
        participates in the job's backpressure, so a slow consumer pauses
        the solver instead of growing the buffer.  Heartbeat lines keep
        idle connections distinguishable from dead ones.  The last line is
        always a ``done`` record (or a truncation error record), after
        which the terminating zero-length chunk closes the stream.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        if self._request_id is not None:
            # Before Cache-Control: an id ending in "0" as the *last* header
            # would put a literal b"0\r\n\r\n" on the wire, which naive
            # chunked-stream readers mistake for the terminating chunk.
            self.send_header("X-Request-Id", self._request_id)
        replica_id = getattr(self.server, "replica_id", None)
        if replica_id:
            self.send_header("X-KPlex-Replica", replica_id)
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        reader = job.results.attach(start)
        truncated: Optional[str] = None
        try:
            while True:
                try:
                    kind, _index, item = job.results.read(reader, timeout=heartbeat)
                except JobResultsTruncatedError as exc:
                    truncated = str(exc)
                    break
                if kind == READ_END:
                    break
                if kind == READ_ITEM:
                    if fault_injector().fire("http_drop"):
                        # Chaos: pretend the connection died mid-stream.  The
                        # existing client-went-away path closes the socket
                        # without the final record or terminating chunk, so
                        # the client sees a truncated chunked stream.
                        raise BrokenPipeError("injected connection drop")
                    self._write_ndjson_chunk(item)
                else:  # READ_TIMEOUT -> heartbeat keeps the connection alive
                    self._write_ndjson_chunk(
                        {"heartbeat": True, "job": job.id, "state": job.state}
                    )
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return  # client went away; detach below unblocks the producer
        finally:
            job.results.detach(reader)
        try:
            if truncated is not None:
                self._write_ndjson_chunk(
                    {
                        "done": False,
                        "job": job.id,
                        "state": job.state,
                        "error": {
                            "type": "JobResultsTruncatedError",
                            "message": truncated,
                        },
                    }
                )
            else:
                self._write_ndjson_chunk(job.final_record())
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            self.close_connection = True

    def _write_ndjson_chunk(self, record: Dict[str, object]) -> None:
        payload = json.dumps(record, default=str).encode("utf-8") + b"\n"
        self.wfile.write(f"{len(payload):x}\r\n".encode("ascii"))
        self.wfile.write(payload)
        self.wfile.write(b"\r\n")

    # ------------------------------------------------------------------ #
    # Body / response plumbing
    # ------------------------------------------------------------------ #
    def _read_json_body(self, optional: bool = False) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            if optional:
                return {}
            raise _HTTPFail(400, "BadRequest", "a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise _HTTPFail(
                413, "PayloadTooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPFail(400, "BadRequest", f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HTTPFail(400, "BadRequest", "the JSON body must be an object")
        return body

    @staticmethod
    def _require(body: Dict[str, object], key: str, kind) -> object:
        if key not in body:
            raise _HTTPFail(400, "BadRequest", f"missing required key {key!r}")
        return KPlexRequestHandler._expect(body, key, kind)

    @staticmethod
    def _expect(body: Dict[str, object], key: str, kind) -> object:
        value = body[key]
        if kind is int and isinstance(value, bool):
            raise _HTTPFail(400, "BadRequest", f"{key!r} must be an integer")
        if not isinstance(value, kind):
            expected = getattr(kind, "__name__", None) or "/".join(
                k.__name__ for k in kind
            )
            raise _HTTPFail(
                400, "BadRequest", f"{key!r} must be of type {expected}"
            )
        return value

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        encoded = json.dumps(payload, default=str).encode("utf-8")
        self._send_bytes(status, encoded, "application/json", headers)

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _retry_after_hint(self) -> int:
        """Derived Retry-After seconds: breaker cooldown or queue-drain ETA."""
        service = getattr(self.server, "service", None)
        if service is None:
            return 1
        try:
            return service.retry_after_hint()
        except Exception:  # pragma: no cover - the hint must never 500 a reply
            return 1

    def _send_error_body(
        self,
        status: int,
        kind: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        encoded = json.dumps(
            {"error": {"type": kind, "message": message, "status": status}}
        ).encode("utf-8")
        headers = None
        if status in (429, 503):
            # Derived, not hardcoded: breaker rejections carry their
            # remaining cooldown; overload rejections get the queue-drain
            # estimate; drain/closed 503s get the same service hint.
            if retry_after is None:
                retry_after = self._retry_after_hint()
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
        self._send_bytes(status, encoded, "application/json", headers)

    def _send_bytes(
        self,
        status: int,
        payload: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if self._request_id is not None:
                self.send_header("X-Request-Id", self._request_id)
            replica_id = getattr(self.server, "replica_id", None)
            if replica_id:
                self.send_header("X-KPlex-Replica", replica_id)
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def log_request(self, code: object = "-", size: object = "-") -> None:
        """Capture the response status; the access line is emitted once per
        request by :meth:`_finish_request` (with duration and request id),
        not per ``send_response`` call."""
        try:
            self._response_status = int(getattr(code, "value", code))
        except (TypeError, ValueError):
            pass

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Route handler diagnostics through the server's logger."""
        self.server.log(format % args)  # type: ignore[attr-defined]
