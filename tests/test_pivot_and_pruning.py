"""Unit tests for pivot selection (Example 4.1) and the pruning rules."""

import itertools

from repro.core.kplex import is_kplex
from repro.core.pivot import repick_pivot_from_candidates, select_pivot
from repro.core.pruning import build_pair_matrix, corollary_52_keep, pairs_allowed
from repro.graph import generators
from repro.graph.bitset import contains, mask_from_indices
from repro.graph.dense import DenseSubgraph


def _figure3_subgraph():
    graph = generators.paper_figure3_graph()
    order = [graph.index_of(f"v{i}") for i in range(1, 8)]
    return graph, DenseSubgraph(graph, order)


# --------------------------------------------------------------------------- #
# Pivot selection
# --------------------------------------------------------------------------- #
def test_example_41_initial_pivot_is_v3():
    """Example 4.1: with P = {v1, v3}, C = {v2, v5, v7} the pivot is v3 ∈ P."""
    _, dense = _figure3_subgraph()
    p_mask = mask_from_indices([0, 2])  # v1, v3
    c_mask = mask_from_indices([1, 4, 6])  # v2, v5, v7
    pivot, in_p, degree = select_pivot(dense, p_mask, c_mask)
    assert pivot == 2  # v3
    assert in_p
    assert degree == 1  # v3 touches only v2 inside P ∪ C


def test_example_41_repicked_pivot_is_v7():
    """Example 4.1: the re-picked pivot comes from \\bar N_C(v3) = {v5, v7} and is v7."""
    _, dense = _figure3_subgraph()
    p_mask = mask_from_indices([0, 2])
    c_mask = mask_from_indices([1, 4, 6])
    new_pivot = repick_pivot_from_candidates(dense, p_mask, c_mask, old_pivot=2)
    assert new_pivot == 6  # v7


def test_repick_returns_none_when_no_non_neighbor():
    graph = generators.complete_graph(5)
    dense = DenseSubgraph(graph, list(range(5)))
    p_mask = mask_from_indices([0])
    c_mask = mask_from_indices([1, 2, 3])
    assert repick_pivot_from_candidates(dense, p_mask, c_mask, old_pivot=0) is None


def test_select_pivot_prefers_most_saturated_on_ties():
    # Star: centre 0 adjacent to everyone; leaves mutually non-adjacent.
    graph = generators.star_graph(3)
    dense = DenseSubgraph(graph, list(range(4)))
    p_mask = mask_from_indices([0, 1])
    c_mask = mask_from_indices([2, 3])
    pivot, in_p, _ = select_pivot(dense, p_mask, c_mask)
    # Leaves 1, 2, 3 all have degree 1 in P ∪ C; vertex 1 ∈ P has the most
    # non-neighbours in P among them, so a P-member is selected.
    assert in_p
    assert pivot == 1


def test_select_pivot_minimum_degree_rule():
    graph = generators.path_graph(4)  # 0-1-2-3
    dense = DenseSubgraph(graph, list(range(4)))
    p_mask = mask_from_indices([1])
    c_mask = mask_from_indices([0, 2, 3])
    pivot, _, degree = select_pivot(dense, p_mask, c_mask)
    assert degree == 1
    assert pivot in (0, 3)


# --------------------------------------------------------------------------- #
# Corollary 5.2 seed subgraph pruning
# --------------------------------------------------------------------------- #
def test_corollary52_never_prunes_members_of_valid_kplexes():
    """Soundness: vertices co-occurring with the seed in a valid result survive."""
    for seed_graph in range(5):
        graph = generators.erdos_renyi(11, 0.5, seed=40 + seed_graph)
        k, q = 2, 4
        for seed_vertex in range(graph.num_vertices):
            vertices = set(graph.neighborhood_within_two_hops(seed_vertex))
            kept = corollary_52_keep(graph, seed_vertex, vertices, k, q)
            # Enumerate all q-sized k-plexes containing the seed by brute force
            # and check none of their members were pruned.
            for members in itertools.combinations(sorted(vertices), q):
                if seed_vertex not in members:
                    continue
                if is_kplex(graph, members, k):
                    assert set(members) <= kept


def test_corollary52_prunes_distant_low_overlap_vertices():
    # Path 0-1-2-3-4: with q = 3, k = 1 a clique of size 3 is required; vertex
    # 2 shares no common neighbour with 0, so it is pruned from 0's subgraph.
    graph = generators.path_graph(5)
    kept = corollary_52_keep(graph, 0, {0, 1, 2}, k=1, q=3)
    assert 2 not in kept
    assert 0 in kept


def test_corollary52_keeps_seed_always():
    graph = generators.star_graph(4)
    kept = corollary_52_keep(graph, 0, {0, 1, 2, 3, 4}, k=2, q=10)
    assert 0 in kept


# --------------------------------------------------------------------------- #
# Vertex-pair pruning (Theorems 5.13 - 5.15)
# --------------------------------------------------------------------------- #
def _pair_matrix_for(graph, seed_vertex, k, q):
    neighbors = sorted(graph.neighbors(seed_vertex))
    two_hop = sorted(graph.two_hop_neighbors(seed_vertex))
    order = [seed_vertex] + neighbors + two_hop
    dense = DenseSubgraph(graph, order)
    candidate_mask = dense.mask_of_parents(neighbors)
    two_hop_mask = dense.mask_of_parents(two_hop)
    pair_ok = build_pair_matrix(dense, 0, candidate_mask, two_hop_mask, k, q)
    return dense, pair_ok


def test_pair_matrix_is_symmetric_and_seed_row_full():
    graph = generators.erdos_renyi(14, 0.4, seed=77)
    dense, pair_ok = _pair_matrix_for(graph, 0, k=2, q=5)
    assert pair_ok[0] == dense.full_mask
    for u in range(dense.size):
        for v in range(dense.size):
            assert contains(pair_ok[u], v) == contains(pair_ok[v], u) or u == 0 or v == 0


def test_pair_matrix_soundness_against_brute_force():
    """A pair marked forbidden never co-occurs in a k-plex of size >= q with the seed."""
    for trial in range(6):
        graph = generators.erdos_renyi(11, 0.55, seed=300 + trial)
        k, q = 2, 5
        seed_vertex = 0
        dense, pair_ok = _pair_matrix_for(graph, seed_vertex, k, q)
        vertices = dense.vertices
        forbidden = [
            (dense.parent_of(u), dense.parent_of(v))
            for u in range(dense.size)
            for v in range(u + 1, dense.size)
            if not contains(pair_ok[u], v)
        ]
        if not forbidden:
            continue
        for members in itertools.combinations(sorted(vertices), q):
            if seed_vertex not in members:
                continue
            if not is_kplex(graph, members, k):
                continue
            member_set = set(members)
            for u, v in forbidden:
                assert not (u in member_set and v in member_set), (
                    f"forbidden pair {(u, v)} appears in valid k-plex {members}"
                )


def test_pairs_allowed_without_matrix_is_identity():
    assert pairs_allowed(None, 3, 0b1011) == 0b1011


def test_pairs_allowed_filters_with_matrix():
    matrix = [0b111, 0b101, 0b111]
    assert pairs_allowed(matrix, 1, 0b111) == 0b101
