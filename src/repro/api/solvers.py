"""Built-in solver adapters.

Each adapter wraps one existing implementation — the configurable
branch-and-bound engine (``ours`` and its ablation variants, ``listplex``),
the FP-style baseline, the Bron–Kerbosch reference, the brute-force oracle,
and the task-parallel executor — behind the :class:`~repro.api.registry.Solver`
interface and registers it by name.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..baselines.bron_kerbosch import BronKerboschKPlex
from ..baselines.brute_force import MAX_BRUTE_FORCE_VERTICES, brute_force_maximal_kplexes
from ..baselines.fp import FPLike
from ..baselines.listplex import listplex_config
from ..core.config import EnumerationConfig, config_by_name
from ..core.enumerator import KPlexEnumerator
from ..core.kplex import KPlex, validate_parameters
from ..core.query import enumerate_kplexes_containing
from ..core.stats import SearchStatistics
from ..errors import ParameterError
from ..parallel.executor import ParallelConfig, _enumerate_parallel
from .registry import Solver, SolverRun, register_solver
from .request import EnumerationRequest


def _reject_config_override(request: EnumerationRequest, solver_name: str) -> None:
    """Fixed-strategy solvers must not silently ignore variant/config."""
    if request.resolved_config() is not None:
        raise ParameterError(
            f"solver {solver_name!r} has a fixed configuration and does not accept "
            f"variant/config overrides; use the 'ours' solver for variants"
        )


class _ConfigurableSolver(Solver):
    """Base adapter for the shared branch-and-bound engine.

    Subclasses fix a default :class:`EnumerationConfig`; the request's
    ``variant`` / ``config`` override it, so ``solver="ours"`` +
    ``variant="basic"`` runs the Basic ablation through the same adapter.
    """

    requires_diameter_bound = True
    supports_query = True
    incremental = True

    #: Name of the default configuration variant.
    default_variant: str = "ours"

    def _effective_config(self, request: EnumerationRequest) -> EnumerationConfig:
        return request.resolved_config() or config_by_name(self.default_variant)

    def start(self, request: EnumerationRequest) -> SolverRun:
        validate_parameters(request.k, request.q)
        config = self._effective_config(request)
        if request.query_vertices is not None:
            return self._start_query(request, config)
        enumerator = KPlexEnumerator(
            request.graph,
            request.k,
            request.q,
            config,
            # Serving-layer option: a cross-request SeedContextCache injected
            # by KPlexService (see repro.service); plain requests leave it
            # unset and behave exactly as before.
            seed_context_cache=request.options.get("seed_context_cache"),
        )
        return SolverRun(
            results=enumerator.iter_results(),
            statistics=lambda: enumerator.statistics,
            metadata={"variant": config.label},
        )

    def _start_query(
        self, request: EnumerationRequest, config: EnumerationConfig
    ) -> SolverRun:
        stats = SearchStatistics()

        def generate() -> Iterator[KPlex]:
            results = enumerate_kplexes_containing(
                request.graph,
                request.query_vertices,
                request.k,
                request.q,
                config,
            )
            stats.outputs = len(results)
            yield from results

        return SolverRun(
            results=generate(),
            statistics=lambda: stats,
            metadata={"variant": config.label, "query": list(request.query_vertices)},
        )


@register_solver("ours", aliases=("paper", "default"))
class OursSolver(_ConfigurableSolver):
    description = "The paper's algorithm with every pruning technique (Ours)."
    default_variant = "ours"


@register_solver("ours_p")
class OursPSolver(_ConfigurableSolver):
    description = "Ours with FaPlexen-style multi-branching (Ours_P)."
    default_variant = "ours_p"


@register_solver("basic")
class BasicSolver(_ConfigurableSolver):
    description = "Ours without the R1/R2 pruning rules (Basic ablation)."
    default_variant = "basic"


@register_solver("listplex")
class ListPlexSolver(_ConfigurableSolver):
    description = "ListPlex-style baseline (FaPlexen branching, no upper bounds)."

    def _effective_config(self, request: EnumerationRequest) -> EnumerationConfig:
        return request.resolved_config() or listplex_config()


@register_solver("fp")
class FPSolver(Solver):
    description = "FP-style baseline (single task per seed, sorting upper bound)."
    requires_diameter_bound = True
    supports_query = False
    incremental = True

    def start(self, request: EnumerationRequest) -> SolverRun:
        _reject_config_override(request, self.name)
        baseline = FPLike(request.graph, request.k, request.q)
        return SolverRun(
            results=baseline.iter_results(),
            statistics=lambda: baseline.statistics,
            metadata={"variant": "FP"},
        )


@register_solver("bron-kerbosch", aliases=("bk",))
class BronKerboschSolver(Solver):
    description = "Bron-Kerbosch reference (Algorithm 1); accepts any q >= 1."
    requires_diameter_bound = False
    supports_query = False
    incremental = False

    def start(self, request: EnumerationRequest) -> SolverRun:
        _reject_config_override(request, self.name)
        baseline = BronKerboschKPlex(request.graph, request.k, request.q)

        def generate() -> Iterator[KPlex]:
            yield from baseline.run()

        return SolverRun(
            results=generate(),
            statistics=lambda: baseline.statistics,
            metadata={"variant": "Bron-Kerbosch"},
        )


@register_solver("brute-force", aliases=("oracle",))
class BruteForceSolver(Solver):
    description = (
        f"Exhaustive oracle for tiny graphs (n <= {MAX_BRUTE_FORCE_VERTICES})."
    )
    requires_diameter_bound = False
    supports_query = False
    incremental = False

    def start(self, request: EnumerationRequest) -> SolverRun:
        _reject_config_override(request, self.name)
        stats = SearchStatistics()

        def generate() -> Iterator[KPlex]:
            results = brute_force_maximal_kplexes(request.graph, request.k, request.q)
            stats.outputs = len(results)
            yield from results

        return SolverRun(
            results=generate(),
            statistics=lambda: stats,
            metadata={"variant": "BruteForce"},
        )


@register_solver("parallel", aliases=("ours-parallel",))
class ParallelSolver(Solver):
    description = "Task-parallel executor (Section 6): process or thread pool."
    requires_diameter_bound = True
    supports_query = False
    incremental = False

    @staticmethod
    def _parallel_config(request: EnumerationRequest) -> ParallelConfig:
        options = dict(request.options)
        explicit = options.pop("parallel", None)
        if explicit is not None:
            if not isinstance(explicit, ParallelConfig):
                raise ParameterError(
                    "options['parallel'] must be a ParallelConfig, got "
                    f"{type(explicit).__name__}"
                )
            return explicit
        kwargs = {}
        for option, target in (
            ("num_workers", "num_workers"),
            ("use_processes", "use_processes"),
            ("stage_size", "stage_size"),
            ("straggler_timeout", "timeout_seconds"),
        ):
            if option in options:
                kwargs[target] = options.pop(option)
        if options:
            raise ParameterError(
                f"unknown parallel solver options {sorted(options)}; expected "
                f"'parallel', 'num_workers', 'use_processes', 'stage_size', "
                f"'straggler_timeout'"
            )
        config = request.resolved_config()
        if config is not None:
            kwargs["enumeration"] = config
        return ParallelConfig(**kwargs)

    def start(self, request: EnumerationRequest) -> SolverRun:
        validate_parameters(request.k, request.q)
        parallel = self._parallel_config(request)
        stats_holder: List[Optional[SearchStatistics]] = [None]

        def generate() -> Iterator[KPlex]:
            result = _enumerate_parallel(request.graph, request.k, request.q, parallel)
            stats_holder[0] = result.statistics
            yield from result.kplexes

        return SolverRun(
            results=generate(),
            statistics=lambda: stats_holder[0] or SearchStatistics(),
            metadata={
                "variant": parallel.enumeration.label,
                "num_workers": parallel.num_workers,
                "use_processes": parallel.use_processes,
            },
        )
