"""Unit tests for the surrogate dataset registry."""

import pytest

from repro.core import enumerate_maximal_kplexes
from repro.datasets import all_datasets, dataset_names, get_dataset, load_dataset
from repro.errors import DatasetError
from repro.graph.core_decomposition import degeneracy


def test_registry_covers_all_table2_networks():
    expected = {
        "jazz",
        "wiki-vote",
        "lastfm",
        "as-caida",
        "soc-epinions",
        "soc-slashdot",
        "email-euall",
        "com-dblp",
        "amazon0505",
        "soc-pokec",
        "as-skitter",
        "enwiki-2021",
        "arabic-2005",
        "uk-2005",
        "it-2004",
        "webbase-2001",
    }
    assert set(dataset_names()) == expected


def test_categories_partition_registry():
    small = set(dataset_names("small"))
    medium = set(dataset_names("medium"))
    large = set(dataset_names("large"))
    assert small and medium and large
    assert not (small & medium) and not (medium & large) and not (small & large)
    assert small | medium | large == set(dataset_names())


def test_get_dataset_unknown_raises():
    with pytest.raises(DatasetError):
        get_dataset("does-not-exist")


def test_load_is_deterministic():
    first = load_dataset("jazz")
    second = load_dataset("jazz")
    assert first == second


def test_specs_carry_paper_statistics():
    spec = get_dataset("wiki-vote")
    assert spec.paper_n == 7115
    assert spec.paper_m == 100762
    assert spec.paper_degeneracy == 53
    row = spec.paper_row()
    assert row["n"] == 7115
    assert spec.description


def test_surrogates_are_mineable_small_graphs():
    for spec in all_datasets():
        graph = spec.load()
        assert 0 < graph.num_vertices <= 2000, spec.name
        assert graph.num_edges > 0, spec.name
        summary = spec.summary()
        assert summary.num_vertices == graph.num_vertices
        assert summary.degeneracy == degeneracy(graph)


def test_small_surrogates_contain_large_kplexes():
    # The surrogate of every small/medium dataset used by the sequential
    # experiments must actually contain 2-plexes of at least six vertices,
    # otherwise the Table 3 reproduction would be vacuous.
    for name in ("jazz", "wiki-vote", "soc-epinions", "as-caida"):
        graph = load_dataset(name)
        results = enumerate_maximal_kplexes(graph, 2, 6)
        assert results, name
