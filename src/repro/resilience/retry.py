"""Retry policy: bounded attempts with jittered exponential backoff.

One policy object is shared by every layer that retries — the pool
supervisor (lost seed batches), the HTTP client (429/503 and reconnects)
and the job-stream resume loop — so the failure-handling defaults live in
exactly one place.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first one; ``1`` means "never retry".
    backoff_seconds:
        Base delay before the first retry.
    backoff_multiplier:
        Exponential growth factor applied per subsequent retry.
    max_backoff_seconds:
        Upper clamp on any single computed delay (before jitter).
    jitter:
        Fraction of the delay randomised away (``0.25`` → the actual sleep
        is uniform in ``[0.75 * delay, delay]``), decorrelating retry storms
        across workers/clients.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """Whether another attempt is allowed after ``attempt`` failures."""
        return attempt < self.max_attempts

    def backoff(self, attempt: int, rng: Optional[Callable[[], float]] = None) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        if attempt < 1:
            return 0.0
        delay = self.backoff_seconds * self.backoff_multiplier ** (attempt - 1)
        delay = min(delay, self.max_backoff_seconds)
        if self.jitter and delay > 0:
            draw = (rng or random.random)()
            delay *= 1.0 - self.jitter * draw
        return delay

    def sleep(
        self,
        attempt: int,
        *,
        retry_after: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[Callable[[], float]] = None,
    ) -> float:
        """Sleep before retry ``attempt``, honouring a server ``Retry-After`` hint.

        The hint wins when it is longer than the local backoff (the server
        knows its own cooldown — e.g. a circuit breaker's remaining window);
        it is still clamped to 60s so a hostile header cannot hang the client.
        """
        delay = self.backoff(attempt, rng=rng)
        if retry_after is not None and retry_after > delay:
            delay = min(float(retry_after), 60.0)
        if delay > 0:
            sleep(delay)
        return delay
