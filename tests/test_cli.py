"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph import generators
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(generators.ring_of_cliques(2, 6), path)
    return path


def test_enumerate_from_file(graph_file, capsys):
    exit_code = main(["enumerate", str(graph_file), "-k", "2", "-q", "5"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "maximal 2-plexes" in captured.out
    assert "size=" in captured.out


def test_enumerate_json_output(graph_file, capsys):
    exit_code = main(["enumerate", str(graph_file), "-k", "1", "-q", "6", "--json"])
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.out)
    assert payload["count"] == 2
    assert payload["k"] == 1
    assert all(len(plex) == 6 for plex in payload["kplexes"])


def test_enumerate_with_variant_stats_and_limit(graph_file, capsys):
    exit_code = main(
        [
            "enumerate",
            str(graph_file),
            "-k",
            "2",
            "-q",
            "5",
            "--variant",
            "basic",
            "--stats",
            "--limit",
            "1",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "SearchStatistics" in captured.out


def test_enumerate_bundled_dataset(capsys):
    exit_code = main(["enumerate", "dataset:jazz", "-k", "2", "-q", "9", "--limit", "2"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "maximal 2-plexes" in captured.out


def test_datasets_listing(capsys):
    exit_code = main(["datasets"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "jazz" in captured.out
    assert "webbase-2001" in captured.out


def test_experiment_table2(capsys):
    exit_code = main(["experiment", "table2"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Table 2" in captured.out
    assert "surrogate_n" in captured.out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "table99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_variant_rejected(graph_file):
    with pytest.raises(SystemExit):
        main(["enumerate", str(graph_file), "-k", "2", "-q", "5", "--variant", "bogus"])


def test_enumerate_writes_output_file(graph_file, tmp_path, capsys):
    output = tmp_path / "results.csv"
    exit_code = main(
        ["enumerate", str(graph_file), "-k", "2", "-q", "5", "--output", str(output)]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert output.exists()
    assert "wrote" in captured.out


def test_query_command(graph_file, capsys):
    exit_code = main(["query", str(graph_file), "0", "-k", "2", "-q", "5"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "containing" in captured.out
    assert "size=" in captured.out


def test_query_unknown_label_is_clean_error(graph_file, capsys):
    """An unknown vertex label exits 1 with a message, not a traceback.

    Regression: the int-fallback in ``_parse_query_labels`` used to let a
    raw ``ValueError`` escape ``main`` for non-numeric unknown labels.
    """
    exit_code = main(["query", str(graph_file), "nope", "-k", "2", "-q", "5"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "error:" in captured.err
    assert "nope" in captured.err


def test_query_numeric_string_label_falls_back_to_int(graph_file, capsys):
    exit_code = main(["query", str(graph_file), "0", "-k", "1", "-q", "6"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "containing" in captured.out


def test_lint_subcommand_runs_clean_against_baseline(capsys):
    exit_code = main(["lint", "src", "tests"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "0 new findings" in captured.out


def test_solvers_listing(capsys):
    exit_code = main(["solvers"])
    captured = capsys.readouterr()
    assert exit_code == 0
    for solver in ("ours", "fp", "listplex", "bron-kerbosch", "brute-force", "parallel"):
        assert solver in captured.out


def test_enumerate_with_solver_flag(graph_file, capsys):
    exit_code = main(
        ["enumerate", str(graph_file), "-k", "2", "-q", "5", "--solver", "bron-kerbosch"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "solver: bron-kerbosch" in captured.out


def test_enumerate_json_reports_termination(graph_file, capsys):
    exit_code = main(
        ["enumerate", str(graph_file), "-k", "2", "-q", "5", "--json", "--max-results", "1"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.out)
    assert payload["count"] == 1
    assert payload["termination"] == "result-limit"
    assert payload["solver"] == "ours"


def test_parameter_errors_are_reported_not_raised(graph_file, capsys):
    # q < 2k - 1 for the decomposed solver: a clean error message, exit code 1.
    exit_code = main(["enumerate", str(graph_file), "-k", "3", "-q", "2"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "error:" in captured.err


@pytest.fixture
def workload_file(tmp_path):
    path = tmp_path / "workload.jsonl"
    lines = [
        {"graph": "ring", "k": 2, "q": 5},
        {"graph": "ring", "k": 2, "q": 5},
        {"graph": "ring", "k": 2, "q": 5, "max_results": 1},
        {"graph": "dataset:jazz", "k": 2, "q": 9},
    ]
    path.write_text(
        "# comment lines and blanks are skipped\n\n"
        + "".join(json.dumps(line) + "\n" for line in lines)
    )
    return path


def test_serve_replays_workload(graph_file, workload_file, tmp_path, capsys):
    metrics_file = tmp_path / "metrics.json"
    exit_code = main(
        [
            "serve",
            str(workload_file),
            "--register",
            f"ring={graph_file}",
            "--no-results",
            "--metrics",
            str(metrics_file),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payloads = [json.loads(line) for line in captured.out.splitlines()]
    assert [p["id"] for p in payloads] == [3, 4, 5, 6]  # workload line numbers
    assert payloads[0]["count"] == payloads[1]["count"]
    assert payloads[0]["graph"] == "ring"
    assert payloads[2]["termination"] == "result-limit"
    assert payloads[2]["count"] == 1
    assert payloads[3]["graph"] == "dataset:jazz"  # auto-registered
    assert "kplexes" not in payloads[0]
    assert "served 4 requests" in captured.err
    metrics = json.loads(metrics_file.read_text())
    assert metrics["completed"] == 4
    # The identical requests 1 and 2 were served once: hit or coalesced.
    assert metrics["cache_hits"] + metrics["coalesced"] >= 1


def test_serve_results_included_by_default(graph_file, workload_file, capsys):
    exit_code = main(["serve", str(workload_file), "--register", f"ring={graph_file}"])
    captured = capsys.readouterr()
    assert exit_code == 0
    first = json.loads(captured.out.splitlines()[0])
    assert first["kplexes"] and all(len(p) >= 5 for p in first["kplexes"])


def test_serve_writes_output_file(graph_file, workload_file, tmp_path, capsys):
    out = tmp_path / "responses.jsonl"
    exit_code = main(
        [
            "serve",
            str(workload_file),
            "--register",
            f"ring={graph_file}",
            "--output",
            str(out),
            "--no-results",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert captured.out == ""
    assert len(out.read_text().splitlines()) == 4


def test_serve_reports_unknown_graph(workload_file, capsys):
    exit_code = main(["serve", str(workload_file)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "error:" in captured.err
    assert "ring" in captured.err


def test_serve_rejects_malformed_lines(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"graph": "dataset:jazz", "k": 2}\n')
    exit_code = main(["serve", str(bad)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "missing the 'q' key" in captured.err

    bad.write_text("not-json\n")
    exit_code = main(["serve", str(bad)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "invalid JSON" in captured.err

    bad.write_text('{"graph": "dataset:jazz", "k": 2, "q": 6, "bogus": 1}\n')
    exit_code = main(["serve", str(bad)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "unknown workload keys" in captured.err


def test_serve_rejects_bad_register_spec(workload_file, capsys):
    exit_code = main(["serve", str(workload_file), "--register", "just-a-name"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "NAME=SPEC" in captured.err


def test_serve_snapshot_and_warm_start_share_format(graph_file, workload_file, tmp_path, capsys):
    snapshot_file = tmp_path / "snap.json"
    exit_code = main(
        [
            "serve", str(workload_file),
            "--register", f"ring={graph_file}",
            "--no-results", "--snapshot", str(snapshot_file),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert snapshot_file.exists()
    assert "snapshot:" in captured.err

    # a second batch run warm-starts from the same file: every workload
    # request is now answered from the replayed cache
    metrics_file = tmp_path / "metrics.json"
    exit_code = main(
        [
            "serve", str(workload_file),
            "--register", f"ring={graph_file}",
            "--no-results", "--snapshot", str(snapshot_file),
            "--warm-start", "--metrics", str(metrics_file),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "warm start:" in captured.err
    metrics = json.loads(metrics_file.read_text())
    assert metrics["cache_hits"] >= 4  # all four workload lines were warm


def test_serve_warm_start_requires_snapshot_path(workload_file, capsys):
    exit_code = main(["serve", str(workload_file), "--warm-start"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "--warm-start requires --snapshot" in captured.err


def test_serve_warm_start_tolerates_missing_snapshot(graph_file, workload_file, tmp_path, capsys):
    snapshot_file = tmp_path / "never-written.json"
    exit_code = main(
        [
            "serve", str(workload_file),
            "--register", f"ring={graph_file}",
            "--no-results", "--snapshot", str(snapshot_file),
            "--warm-start",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "starting cold" in captured.err


def test_enumerate_csr_backend_flag_and_stats_visibility(graph_file, capsys):
    from repro.graph.csr import available_csr_backends, set_default_csr_backend

    try:
        for backend in available_csr_backends():
            exit_code = main(
                [
                    "enumerate", str(graph_file), "-k", "2", "-q", "5",
                    "--csr-backend", backend, "--stats",
                ]
            )
            captured = capsys.readouterr()
            assert exit_code == 0
            assert f"csr backend: {backend}" in captured.out
    finally:
        set_default_csr_backend(None)


def test_enumerate_rejects_unknown_csr_backend(graph_file):
    with pytest.raises(SystemExit):
        main(["enumerate", str(graph_file), "-k", "2", "-q", "5",
              "--csr-backend", "cuda"])
