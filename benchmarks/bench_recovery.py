"""Fault-tolerance gates: recover bit-identically at bounded overhead.

Boots nothing — this bench drives the parallel executor directly, the
layer where worker deaths actually land.  The jazz ``k=2, q=4`` workload
(3455 maximal k-plexes) runs three ways:

* **clean** — the baseline: no faults armed;
* **recovery** — ``worker_kill:1@40`` kills one worker process mid-run
  (after 40 seed submissions); the pool supervisor must rebuild the pool,
  re-attach the shared-memory segment and replay only the lost seeds;
* **poison** — ``seed_crash:0`` makes one seed crash its worker
  deterministically; the supervisor must isolate it and fail *fast* with
  a structured :class:`~repro.errors.PoisonTaskError`.

Gates:

* **bit-identical**: every recovery round returns exactly the clean
  result set, with ``pool_recoveries >= 1`` proving the kill landed;
* **<= 2x overhead**: median recovery wall-clock stays within 2x of the
  clean median (plus a 250ms absolute allowance for the pool respawn, so
  sub-second baselines do not flake the ratio);
* **fast structured failure**: the poison run raises ``PoisonTaskError``
  (mode ``crash``, the culprit seed attached) in under 30s — no retry
  loop, no hung pool.
"""

import statistics
import time

import pytest

from repro.analysis.reporting import render_table
from repro.datasets import load_dataset
from repro.errors import PoisonTaskError
from repro.graph import invalidate
from repro.parallel import ParallelConfig, parallel_enumerate_maximal_kplexes
from repro.resilience import fault_injector, resilience_stats

GATE_OVERHEAD = 2.0
OVERHEAD_ALLOWANCE_SECONDS = 0.25
GATE_POISON_SECONDS = 30.0
ROUNDS = 3
DATASET = "jazz"
K, Q = 2, 4
KILL_SPEC = "worker_kill:1@40"


def _config():
    return ParallelConfig(num_workers=2, use_processes=True)


def _run(graph):
    started = time.perf_counter()
    result = parallel_enumerate_maximal_kplexes(graph, K, Q, _config())
    elapsed = time.perf_counter() - started
    return elapsed, {p.as_set() for p in result.kplexes}, result.statistics


def test_bench_recovery_overhead_and_fidelity(benchmark):
    def run():
        graph = load_dataset(DATASET)
        invalidate(graph)
        fault_injector().clear()
        resilience_stats().reset()

        clean_seconds = []
        expected = None
        for _ in range(ROUNDS):
            elapsed, kplexes, _stats = _run(graph)
            clean_seconds.append(elapsed)
            expected = kplexes

        recovery_seconds = []
        recoveries = 0
        identical = True
        for _ in range(ROUNDS):
            fault_injector().configure(KILL_SPEC)
            elapsed, kplexes, stats = _run(graph)
            fault_injector().clear()
            recovery_seconds.append(elapsed)
            recoveries += stats.pool_recoveries
            identical = identical and kplexes == expected

        fault_injector().configure("seed_crash:0")
        poison_started = time.perf_counter()
        try:
            parallel_enumerate_maximal_kplexes(graph, K, Q, _config())
            poison_error = None
        except PoisonTaskError as exc:
            poison_error = exc
        poison_seconds = time.perf_counter() - poison_started
        fault_injector().clear()

        clean_median = statistics.median(clean_seconds)
        recovery_median = statistics.median(recovery_seconds)
        return {
            "dataset": f"{DATASET} k={K} q={Q}",
            "results": len(expected),
            "clean_ms": round(clean_median * 1e3, 1),
            "recovery_ms": round(recovery_median * 1e3, 1),
            "overhead_x": round(recovery_median / clean_median, 2),
            "recoveries": recoveries,
            "bit_identical": identical,
            "poison_ms": round(poison_seconds * 1e3, 1),
            "_poison_error": poison_error,
            "_clean_median": clean_median,
            "_recovery_median": recovery_median,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    poison_error = row.pop("_poison_error")
    clean_median = row.pop("_clean_median")
    recovery_median = row.pop("_recovery_median")
    print()
    print(render_table([row], title="Recovery: worker kill mid-enumeration"))

    assert row["bit_identical"], "recovered run diverged from the clean result set"
    assert row["recoveries"] >= ROUNDS, (
        f"expected every injected round to recover a pool "
        f"(got {row['recoveries']} recoveries over {ROUNDS} rounds)"
    )
    budget = GATE_OVERHEAD * clean_median + OVERHEAD_ALLOWANCE_SECONDS
    assert recovery_median <= budget, (
        f"recovery run took {recovery_median:.3f}s vs clean "
        f"{clean_median:.3f}s — over the {GATE_OVERHEAD}x gate"
    )
    assert isinstance(poison_error, PoisonTaskError), (
        "deterministic crasher did not surface as PoisonTaskError"
    )
    assert poison_error.mode == "crash" and poison_error.item == 0
    assert row["poison_ms"] <= GATE_POISON_SECONDS * 1e3, (
        f"poison task took {row['poison_ms']}ms to fail — retry loop suspected"
    )


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
