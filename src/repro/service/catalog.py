"""Named-graph catalog with lifecycle and pre-warming (the serving registry).

A service answering many queries over the same graphs needs those graphs to
be *resources with names and a lifecycle*, not objects re-supplied on every
call.  :class:`GraphCatalog` provides exactly that:

* ``register()`` accepts a :class:`~repro.graph.graph.Graph`, a raw edge
  iterable, a graph file readable by :func:`repro.graph.io.load_graph`, or a
  ``dataset:<name>`` entry of :mod:`repro.datasets.registry`;
* registration **pre-warms** the graph's
  :class:`~repro.graph.prepared.PreparedGraph` index (CSR form, and the
  ``(q-k)``-core plus ordering for every ``(k, q)`` pair the caller expects
  to serve), so the first request pays no preprocessing latency;
* every entry tracks an estimated memory footprint (graph + materialised
  index) for capacity planning;
* ``invalidate()`` / ``unregister()`` retire an entry: the graph's epoch is
  bumped, so every serving-layer cache entry derived from it is dead on
  arrival (see :mod:`repro.service.cache`).

The catalog is thread-safe; entries are immutable snapshots.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.kplex import validate_parameters
from ..errors import CatalogError
from ..graph import Graph
from ..graph.io import load_graph
from ..graph.prepared import PreparedGraph
from ..graph.prepared import invalidate as invalidate_prepared
from ..graph.prepared import prepare
from .sizing import estimate_graph_bytes, estimate_prepared_bytes

#: Accepted ``source`` types for :meth:`GraphCatalog.register`.
GraphSource = Union[Graph, str, Iterable[Tuple[Hashable, Hashable]]]

#: Prefix selecting a bundled dataset instead of a file path.
DATASET_PREFIX = "dataset:"


@dataclass(frozen=True)
class CatalogEntry:
    """Immutable snapshot of one registered graph."""

    name: str
    graph: Graph = field(repr=False)
    source: str
    registered_at: float
    prewarmed_levels: Tuple[int, ...]
    fmt: str = "auto"

    @property
    def num_vertices(self) -> int:
        """Vertex count of the registered graph."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the registered graph."""
        return self.graph.num_edges

    @property
    def epoch(self) -> int:
        """Current epoch of the registered graph (live, not a snapshot)."""
        return self.graph.epoch

    def memory_bytes(self) -> int:
        """Estimated bytes held by the graph plus its materialised index."""
        total = estimate_graph_bytes(self.graph)
        prepared = self.graph._prepared
        if prepared is not None:
            total += estimate_prepared_bytes(prepared)
        return total

    def describe(self) -> Dict[str, object]:
        """Loggable summary row (used by ``catalog.info()`` and the CLI)."""
        return {
            "name": self.name,
            "source": self.source,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "epoch": self.epoch,
            "prewarmed_levels": list(self.prewarmed_levels),
            "memory_bytes": self.memory_bytes(),
        }


class GraphCatalog:
    """Registry of named graphs shared by every request of a service.

    Parameters
    ----------
    prepared_core_budget:
        Optional per-graph cap on retained ``core(level)`` subgraphs — the
        ROADMAP's *prepared-index memory budget* — applied to every graph on
        registration (see :meth:`PreparedGraph.set_core_budget`).
    csr_backend:
        CSR kernel backend (``"array"``/``"numpy"``/``"auto"``) pinned on
        every registered graph's prepared index; ``None`` keeps the process
        default (numpy when importable).
    """

    def __init__(
        self,
        prepared_core_budget: Optional[int] = None,
        csr_backend: Optional[str] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._entries: Dict[str, CatalogEntry] = {}
        self.prepared_core_budget = prepared_core_budget
        self.csr_backend = csr_backend

    # ------------------------------------------------------------------ #
    # Registration and resolution
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        source: GraphSource,
        *,
        fmt: str = "auto",
        prewarm: Optional[Sequence[Tuple[int, int]]] = None,
        replace: bool = False,
    ) -> CatalogEntry:
        """Register a graph under ``name`` and pre-warm its prepared index.

        ``source`` may be a :class:`Graph`, a ``dataset:<name>`` string, a
        path to a graph file (``fmt`` as in :func:`load_graph`), or an
        iterable of edges.  ``prewarm`` lists the ``(k, q)`` pairs the
        service expects; each warms the ``(q-k)``-core and its degeneracy
        ordering so the first matching request starts at the search proper.
        Re-registering an existing name requires ``replace=True`` and bumps
        the old graph's epoch (its cached results must not be served for the
        newcomer).
        """
        if not isinstance(name, str) or not name.strip():
            raise CatalogError("catalog names must be non-empty strings")
        name = name.strip()
        graph, source_label = self._materialise(source, fmt)
        levels = self._prewarm(graph, prewarm)
        entry = CatalogEntry(
            name=name,
            graph=graph,
            source=source_label,
            registered_at=time.time(),
            prewarmed_levels=levels,
            fmt=fmt,
        )
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None:
                if not replace:
                    raise CatalogError(
                        f"graph {name!r} is already registered; pass replace=True "
                        f"to swap it"
                    )
                if previous.graph is not graph:
                    previous.graph.bump_epoch()
            self._entries[name] = entry
        return entry

    def _materialise(self, source: GraphSource, fmt: str) -> Tuple[Graph, str]:
        if isinstance(source, Graph):
            return source, "graph"
        if isinstance(source, str):
            if source.startswith(DATASET_PREFIX):
                from ..datasets import load_dataset  # local: heavy module

                dataset = source[len(DATASET_PREFIX) :]
                try:
                    return load_dataset(dataset), source
                except Exception as exc:
                    raise CatalogError(
                        f"cannot build dataset {dataset!r}: {exc}"
                    ) from exc
            try:
                return load_graph(source, fmt=fmt), f"file:{source}"
            except OSError as exc:
                raise CatalogError(f"cannot read graph file {source!r}: {exc}") from exc
        try:
            edges = list(source)
        except TypeError as exc:
            raise CatalogError(
                f"unsupported graph source of type {type(source).__name__}; expected "
                f"a Graph, a 'dataset:<name>' / file path string, or an edge iterable"
            ) from exc
        return Graph.from_edges(edges), f"edges:{len(edges)}"

    def _prewarm(
        self, graph: Graph, prewarm: Optional[Sequence[Tuple[int, int]]]
    ) -> Tuple[int, ...]:
        prepared: PreparedGraph = prepare(
            graph,
            max_core_levels=self.prepared_core_budget,
            csr_backend=self.csr_backend,
        )
        prepared.csr  # every solver's first step runs on the CSR form
        levels: List[int] = []
        for pair in prewarm or ():
            try:
                k, q = pair
            except (TypeError, ValueError) as exc:
                raise CatalogError(
                    f"prewarm entries must be (k, q) pairs, got {pair!r}"
                ) from exc
            validate_parameters(k, q, enforce_diameter_bound=False)
            prepared_core, _ = prepared.prepared_core(q - k)
            prepared_core.position
            if q - k not in levels:
                levels.append(q - k)
        return tuple(levels)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Graph:
        """Return the graph registered under ``name``."""
        return self.entry(name).graph

    def entry(self, name: str) -> CatalogEntry:
        """Return the catalog entry for ``name``."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = ", ".join(sorted(self._entries)) or "<empty catalog>"
                raise CatalogError(
                    f"unknown catalog graph {name!r}; registered: {known}"
                ) from None

    def resolve(self, graph: Union[str, Graph]) -> Graph:
        """Accept either a catalog name or a graph object (service front door)."""
        if isinstance(graph, Graph):
            return graph
        return self.get(graph)

    def names(self) -> List[str]:
        """Registered names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def invalidate(self, name: str) -> int:
        """Drop the graph's cached artefacts and bump its epoch.

        Returns the new epoch.  Subsequent requests re-run the preprocessing
        and can never be answered from results computed before the call.
        """
        entry = self.entry(name)
        invalidate_prepared(entry.graph)
        return entry.graph.epoch

    def unregister(self, name: str) -> CatalogEntry:
        """Remove ``name`` from the catalog and retire its cache entries."""
        with self._lock:
            entry = self.entry(name)
            del self._entries[name]
        entry.graph.bump_epoch()
        return entry

    def clear(self) -> None:
        """Unregister every graph."""
        with self._lock:
            names = list(self._entries)
        for name in names:
            try:
                self.unregister(name)
            except CatalogError:  # pragma: no cover - concurrent removal
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def total_memory_bytes(self) -> int:
        """Estimated bytes across all registered graphs and their indexes."""
        with self._lock:
            entries = list(self._entries.values())
        return sum(entry.memory_bytes() for entry in entries)

    def info(self) -> List[Dict[str, object]]:
        """Summary rows for every entry (CLI / metrics endpoints)."""
        with self._lock:
            entries = [self._entries[name] for name in sorted(self._entries)]
        return [entry.describe() for entry in entries]

    def __repr__(self) -> str:
        with self._lock:
            return f"GraphCatalog(graphs={sorted(self._entries)})"
