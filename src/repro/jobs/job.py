"""Job records: the explicit, table-backed state machine of one async run.

A :class:`Job` is the unit the serving layer can place, poll, stream,
cancel, retry and shed.  Its lifecycle is a small, explicitly validated
state machine

    PENDING ──> RUNNING ──> {SUCCEEDED, FAILED, CANCELLED}
       │                             │
       └───────> CANCELLED           └──(TTL)──> EXPIRED

rather than a future hidden inside an executor: every transition is
timestamped under the job's lock, invalid transitions raise
:class:`~repro.errors.JobStateError`, and the whole table is serialisable
for status endpoints and drain-time snapshots.

Results flow through a :class:`ResultLog` — a bounded, append-only buffer
bridging the producing solver thread and any number of streaming readers:

* the log retains at most ``limit`` entries; with no reader attached the
  oldest entries are discarded (``dropped`` counts them) so an unconsumed
  job can never buffer unboundedly or wedge its worker;
* a reader that still needs the oldest retained entry **pauses the
  producer** instead (backpressure): slow consumers throttle the search,
  they do not grow the buffer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..api.engine import CancellationToken
from ..api.response import TERMINATION_CANCELLED
from ..api.request import EnumerationRequest
from ..errors import JobResultsTruncatedError, JobStateError

#: Lifecycle states.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_SUCCEEDED = "succeeded"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_EXPIRED = "expired"

JOB_STATES = (
    JOB_PENDING,
    JOB_RUNNING,
    JOB_SUCCEEDED,
    JOB_FAILED,
    JOB_CANCELLED,
    JOB_EXPIRED,
)

#: States in which a job will never run again.
TERMINAL_STATES = frozenset(
    {JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED, JOB_EXPIRED}
)

_TRANSITIONS: Dict[str, frozenset] = {
    JOB_PENDING: frozenset({JOB_RUNNING, JOB_CANCELLED}),
    JOB_RUNNING: frozenset({JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED}),
    JOB_SUCCEEDED: frozenset({JOB_EXPIRED}),
    JOB_FAILED: frozenset({JOB_EXPIRED}),
    JOB_CANCELLED: frozenset({JOB_EXPIRED}),
    JOB_EXPIRED: frozenset(),
}

#: ``read()`` outcome kinds.
READ_ITEM = "item"
READ_END = "end"
READ_TIMEOUT = "timeout"


class ResultLog:
    """Bounded producer/consumer bridge between a solver and its readers.

    One producer appends; readers attach with a cursor and read
    independently.  The buffer retains at most ``limit`` entries:

    * no attached reader needs the oldest entry → it is discarded
      (counted in :attr:`dropped`) and the producer continues;
    * an attached reader still needs it → the producer **blocks** until
      that reader advances, detaches, or the append is aborted — the
      backpressure contract of streaming jobs.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"result buffer limit must be >= 1, got {limit}")
        self._lock = threading.Lock()
        self._data = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._entries: "deque[object]" = deque()
        self._base = 0  # index of _entries[0]
        self._next = 0  # index the next append receives
        self._limit = limit
        self._readers: Dict[int, int] = {}  # reader id -> cursor
        self._next_reader = 0
        self._closed = False
        self.dropped = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def append(
        self,
        item: object,
        should_abort: Optional[Callable[[], bool]] = None,
        poll_seconds: float = 0.05,
    ) -> bool:
        """Append one entry; returns ``False`` if closed or aborted.

        While the buffer is full *and* an attached reader still needs the
        oldest entry, the call blocks (checking ``should_abort`` every
        ``poll_seconds`` so a cancellation is honoured promptly).
        """
        with self._lock:
            while not self._closed:
                if should_abort is not None and should_abort():
                    return False
                if self._limit is None or (self._next - self._base) < self._limit:
                    self._entries.append(item)
                    self._next += 1
                    self._data.notify_all()
                    return True
                if any(cursor <= self._base for cursor in self._readers.values()):
                    # A reader would lose the oldest entry: pause the
                    # producer until it catches up or detaches.
                    self._space.wait(poll_seconds)
                    continue
                self._entries.popleft()
                self._base += 1
                if not self._readers:
                    # With readers attached, eviction only happens once all
                    # of them consumed the entry — normal trimming, not
                    # data loss; unobserved evictions are real drops.
                    self.dropped += 1
            return False

    def close(self) -> None:
        """No more entries will arrive; wake every blocked reader/producer."""
        with self._lock:
            self._closed = True
            self._data.notify_all()
            self._space.notify_all()

    def clear(self) -> int:
        """Drop every retained entry (TTL expiry); returns the count dropped."""
        with self._lock:
            cleared = len(self._entries)
            self.dropped += cleared
            self._base = self._next
            self._entries.clear()
            self._closed = True
            self._data.notify_all()
            self._space.notify_all()
            return cleared

    # ------------------------------------------------------------------ #
    # Reader side
    # ------------------------------------------------------------------ #
    def attach(self, start: int = 0) -> int:
        """Register a reader cursor at ``start``; returns the reader id."""
        with self._lock:
            reader_id = self._next_reader
            self._next_reader += 1
            self._readers[reader_id] = max(0, start)
            return reader_id

    def detach(self, reader_id: int) -> None:
        """Unregister a reader; a producer it was throttling resumes."""
        with self._lock:
            self._readers.pop(reader_id, None)
            self._space.notify_all()

    def read(
        self, reader_id: int, timeout: Optional[float] = None
    ) -> Tuple[str, Optional[int], Optional[object]]:
        """Read the reader's next entry, blocking until one is available.

        Returns ``(kind, index, item)`` where ``kind`` is ``"item"`` (a
        result), ``"end"`` (closed and fully consumed) or ``"timeout"``
        (nothing arrived within ``timeout`` — the stream handler uses this
        to emit heartbeats).  Raises
        :class:`~repro.errors.JobResultsTruncatedError` when the cursor
        points below the retained window.
        """
        with self._lock:
            while True:
                cursor = self._readers[reader_id]
                if cursor < self._base:
                    raise JobResultsTruncatedError(
                        f"results [{cursor}, {self._base}) were dropped from the "
                        f"bounded buffer (limit {self._limit}, {self.dropped} "
                        f"dropped in total); re-read from index {self._base}"
                    )
                if cursor < self._next:
                    item = self._entries[cursor - self._base]
                    self._readers[reader_id] = cursor + 1
                    self._space.notify_all()
                    return READ_ITEM, cursor, item
                if self._closed:
                    return READ_END, None, None
                if not self._data.wait(timeout):
                    return READ_TIMEOUT, None, None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self, start: int = 0) -> Tuple[int, List[object], bool]:
        """Return ``(first_index, entries from max(start, base), closed)``."""
        with self._lock:
            first = max(start, self._base)
            offset = first - self._base
            return first, list(self._entries)[offset:] if offset < len(self._entries) else [], self._closed

    @property
    def next_index(self) -> int:
        """Total number of entries ever appended."""
        with self._lock:
            return self._next

    @property
    def buffered(self) -> int:
        """Entries currently retained in memory."""
        with self._lock:
            return len(self._entries)

    @property
    def readers(self) -> int:
        """Number of attached readers."""
        with self._lock:
            return len(self._readers)


class Job:
    """One asynchronous enumeration: spec, state machine, progress, results.

    All mutation goes through the transition helpers, which validate
    against the state machine and timestamp the change; reads of the
    composite record go through :meth:`describe`.
    """

    def __init__(
        self,
        job_id: str,
        request: EnumerationRequest,
        spec: Dict[str, object],
        result_buffer: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        request_id: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.request = request
        # The trace id of the job's own run; submitting over HTTP links it
        # to the submit request via the trace's parent_request_id attribute.
        self.request_id = request_id or job_id
        self.spec = dict(spec)
        self.ttl_seconds = ttl_seconds
        self.results = ResultLog(limit=result_buffer)
        self.cancel_token = CancellationToken()
        self._clock = clock
        self._lock = threading.Lock()
        self.state = JOB_PENDING
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._created_mono = clock()
        self._finished_mono: Optional[float] = None
        self.termination: Optional[str] = None
        self.error: Optional[str] = None
        self.result_count = 0
        self.first_result_seconds: Optional[float] = None
        self.elapsed_seconds: Optional[float] = None
        self.statistics: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #
    def _transition_locked(self, new_state: str) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.id}: invalid transition {self.state} -> {new_state}"
            )
        self.state = new_state

    def try_start(self) -> bool:
        """PENDING → RUNNING; ``False`` when cancelled before it could run."""
        with self._lock:
            if self.state != JOB_PENDING or self.cancel_token.cancelled:
                return False
            self._transition_locked(JOB_RUNNING)
            self.started_at = time.time()
            return True

    def finish(
        self,
        state: str,
        termination: Optional[str] = None,
        error: Optional[str] = None,
        elapsed_seconds: Optional[float] = None,
        statistics: Optional[Dict[str, object]] = None,
    ) -> None:
        """RUNNING → one of the terminal states (idempotence not allowed)."""
        with self._lock:
            self._transition_locked(state)
            self.termination = termination
            self.error = error
            self.elapsed_seconds = elapsed_seconds
            self.statistics = statistics
            self.finished_at = time.time()
            self._finished_mono = self._clock()
        self.results.close()

    def cancel(self) -> bool:
        """Request cancellation; ``True`` if the job was still cancellable.

        A PENDING job transitions immediately; a RUNNING one has its
        cooperative token set — the engine's streaming loop observes it
        between results (stopping the solver's work, not just the record)
        and the runner finalises the state.
        """
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.cancel_token.cancel()
            if self.state == JOB_PENDING:
                self._transition_locked(JOB_CANCELLED)
                self.termination = TERMINATION_CANCELLED
                self.finished_at = time.time()
                self._finished_mono = self._clock()
            else:
                return True
        self.results.close()
        return True

    def expire(self) -> bool:
        """Terminal → EXPIRED; drops the buffered results.  ``False`` if not terminal."""
        with self._lock:
            if self.state not in (JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED):
                return False
            self._transition_locked(JOB_EXPIRED)
        self.results.clear()
        return True

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    def note_result(self) -> None:
        """Record one solver-produced result in the progress counters."""
        with self._lock:
            self.result_count += 1
            if self.first_result_seconds is None:
                self.first_result_seconds = self._clock() - self._created_mono

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def age_since_finish(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the job reached a terminal state (``None`` if live)."""
        if self._finished_mono is None:
            return None
        return (now if now is not None else self._clock()) - self._finished_mono

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """JSON-ready job record for status endpoints and snapshots."""
        with self._lock:
            record: Dict[str, object] = {
                "id": self.id,
                "state": self.state,
                "request_id": self.request_id,
                "spec": dict(self.spec),
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "termination": self.termination,
                "error": self.error,
                "elapsed_seconds": self.elapsed_seconds,
                "ttl_seconds": self.ttl_seconds,
                "progress": {
                    "results": self.result_count,
                    "first_result_seconds": self.first_result_seconds,
                    "buffered": self.results.buffered,
                    "dropped": self.results.dropped,
                },
            }
            if self.statistics is not None:
                record["statistics"] = self.statistics
            return record

    def final_record(self) -> Dict[str, object]:
        """The terminating NDJSON record of a result stream."""
        with self._lock:
            record: Dict[str, object] = {
                "done": True,
                "job": self.id,
                "state": self.state,
                "termination": self.termination,
                "count": self.result_count,
                "dropped": self.results.dropped,
            }
            if self.elapsed_seconds is not None:
                record["elapsed_seconds"] = self.elapsed_seconds
            if self.error is not None:
                record["error"] = {"type": "JobError", "message": self.error}
            return record

    def iter_results(self, start: int = 0) -> Iterator[Tuple[int, object]]:
        """Yield ``(index, entry)`` pairs, blocking until the job finishes.

        The embedding-side equivalent of the NDJSON stream: attaches a
        reader (participating in backpressure) and detaches it even when
        the consumer abandons the generator early.
        """
        reader = self.results.attach(start)
        try:
            while True:
                kind, index, item = self.results.read(reader)
                if kind == READ_END:
                    return
                if kind == READ_ITEM:
                    yield index, item
        finally:
            self.results.detach(reader)
