"""Reproduction drivers for the paper's tables.

Each ``table*`` function returns a list of row dictionaries that mirror the
columns of the corresponding table in the paper (plus, where relevant, the
paper's original parameter so the scaling substitution is visible).  The
benchmark harness renders them with
:func:`repro.analysis.reporting.render_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import render_table
from ..datasets import all_datasets, get_dataset
from ..graph.properties import summarize
from .parallel_model import best_timeout, measure_parallel_workload
from .runner import (
    ALGORITHM_FP,
    ALGORITHM_LISTPLEX,
    ALGORITHM_OURS,
    PRUNING_ABLATION,
    SEQUENTIAL_ALGORITHMS,
    UPPER_BOUND_ABLATION,
    RunRecord,
    run_algorithm,
)
from .workloads import (
    SCALE_QUICK,
    Workload,
    ablation_workloads,
    memory_workloads,
    parallel_workloads,
    sequential_workloads,
    timeout_values,
)


# --------------------------------------------------------------------------- #
# Table 2: dataset statistics
# --------------------------------------------------------------------------- #
def table2_datasets(scale: str = SCALE_QUICK) -> List[Dict[str, object]]:
    """Table 2: ``n``, ``m``, max degree and degeneracy of every dataset.

    Each row shows the paper's statistics for the original SNAP/LAW graph next
    to the statistics of the deterministic surrogate actually mined here.
    """
    rows: List[Dict[str, object]] = []
    for spec in all_datasets():
        summary = summarize(spec.load(), name=spec.name)
        rows.append(
            {
                "network": spec.name,
                "category": spec.category,
                "paper_n": spec.paper_n,
                "paper_m": spec.paper_m,
                "paper_max_degree": spec.paper_max_degree,
                "paper_D": spec.paper_degeneracy,
                "surrogate_n": summary.num_vertices,
                "surrogate_m": summary.num_edges,
                "surrogate_max_degree": summary.max_degree,
                "surrogate_D": summary.degeneracy,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table 3: sequential comparison
# --------------------------------------------------------------------------- #
def table3_sequential(
    scale: str = SCALE_QUICK,
    workloads: Optional[Sequence[Workload]] = None,
    algorithms: Sequence[str] = SEQUENTIAL_ALGORITHMS,
) -> List[Dict[str, object]]:
    """Table 3: running time of FP, ListPlex, Ours_P and Ours plus result counts."""
    rows: List[Dict[str, object]] = []
    for workload in workloads if workloads is not None else sequential_workloads(scale):
        graph = workload.load()
        row: Dict[str, object] = dict(workload.describe())
        counts = set()
        for algorithm in algorithms:
            record = run_algorithm(algorithm, graph, workload.dataset, workload.k, workload.q)
            row[f"{algorithm}_seconds"] = round(record.seconds, 4)
            counts.add(record.num_kplexes)
            row["kplexes"] = record.num_kplexes
        row["all_algorithms_agree"] = len(counts) == 1
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 4: parallel comparison (16 workers)
# --------------------------------------------------------------------------- #
def table4_parallel(
    scale: str = SCALE_QUICK,
    num_workers: int = 16,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Dict[str, object]]:
    """Table 4: predicted 16-worker running time of FP, ListPlex, Ours, Ours(τ_best).

    Each algorithm's sequential run is measured for real; the parallel
    makespan is predicted by the deterministic stage scheduler fed with that
    run's per-task costs (see DESIGN.md §5, substitution 2).
    """
    default_timeout = 16.0  # cost units (branch calls); stands in for τ = 0.1 ms
    rows: List[Dict[str, object]] = []
    for workload in workloads if workloads is not None else parallel_workloads(scale):
        graph = workload.load()
        row: Dict[str, object] = dict(workload.describe())
        for algorithm in (ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS):
            measurement = measure_parallel_workload(algorithm, graph, workload.k, workload.q)
            row["kplexes"] = measurement.num_kplexes
            if algorithm == ALGORITHM_OURS:
                row["Ours_seconds"] = round(
                    measurement.makespan_seconds(
                        num_workers, timeout_cost=default_timeout, split_overhead=0.5
                    ),
                    4,
                )
                tuned = best_timeout(
                    measurement,
                    num_workers,
                    [default_timeout, *timeout_values(scale)],
                    split_overhead=0.5,
                )
                row["Ours_best_timeout_seconds"] = round(tuned["seconds"], 4)
                row["best_timeout_cost_units"] = tuned["timeout"]
                row["Ours_sequential_seconds"] = round(measurement.sequential_seconds, 4)
            else:
                row[f"{algorithm}_seconds"] = round(
                    measurement.makespan_seconds(num_workers, timeout_cost=None), 4
                )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 5: upper-bound ablation
# --------------------------------------------------------------------------- #
def table5_upper_bound_ablation(
    scale: str = SCALE_QUICK,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Dict[str, object]]:
    """Table 5: Ours without upper bound, with FP's bound, and the full Ours."""
    rows: List[Dict[str, object]] = []
    for workload in workloads if workloads is not None else ablation_workloads(scale):
        graph = workload.load()
        row: Dict[str, object] = dict(workload.describe())
        for algorithm in UPPER_BOUND_ABLATION:
            record = run_algorithm(algorithm, graph, workload.dataset, workload.k, workload.q)
            row[f"{algorithm}_seconds"] = round(record.seconds, 4)
            row[f"{algorithm}_branches"] = record.branch_calls
            row["kplexes"] = record.num_kplexes
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 6: pruning-rule ablation
# --------------------------------------------------------------------------- #
def table6_pruning_ablation(
    scale: str = SCALE_QUICK,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Dict[str, object]]:
    """Table 6: Basic, Basic+R1, Basic+R2 and Ours."""
    rows: List[Dict[str, object]] = []
    for workload in workloads if workloads is not None else ablation_workloads(scale):
        graph = workload.load()
        row: Dict[str, object] = dict(workload.describe())
        for algorithm in PRUNING_ABLATION:
            record = run_algorithm(algorithm, graph, workload.dataset, workload.k, workload.q)
            row[f"{algorithm}_seconds"] = round(record.seconds, 4)
            row[f"{algorithm}_branches"] = record.branch_calls
            row["kplexes"] = record.num_kplexes
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 7 (appendix B.2): peak memory
# --------------------------------------------------------------------------- #
def table7_memory(
    scale: str = SCALE_QUICK,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Dict[str, object]]:
    """Table 7: peak memory consumption of FP, ListPlex and Ours."""
    rows: List[Dict[str, object]] = []
    for workload in workloads if workloads is not None else memory_workloads(scale):
        graph = workload.load()
        row: Dict[str, object] = dict(workload.describe())
        for algorithm in (ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS):
            record = run_algorithm(
                algorithm, graph, workload.dataset, workload.k, workload.q, measure_memory=True
            )
            row[f"{algorithm}_peak_mib"] = round(record.peak_memory_bytes / (1024 * 1024), 3)
            row["kplexes"] = record.num_kplexes
        rows.append(row)
    return rows


def render_any_table(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Convenience wrapper used by the benches to print a driver's rows."""
    return render_table(rows, title=title)
