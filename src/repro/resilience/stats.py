"""Process-wide resilience counters.

The supervised executor runs deep inside the engine, far from any
:class:`~repro.service.service.ServiceMetrics` instance, so recovery
events are recorded here — one thread-safe, process-wide sink — and the
service layer folds a snapshot into its metrics (``kplex_recoveries_total``
et al. in the Prometheus rendering).  Counters only ever increase;
``pool_degraded`` is a gauge: set on serial fallback, cleared by the next
healthy pooled run.
"""

from __future__ import annotations

import threading
from typing import Dict

#: Stable counter set — always present in snapshots so scrapes never see
#: keys appear/disappear.
_COUNTERS = (
    "pool_failures",        # worker deaths / broken pools observed
    "pool_recoveries",      # pools successfully rebuilt mid-run
    "serial_fallbacks",     # runs degraded to in-process serial enumeration
    "task_retries",         # individual seed tasks resubmitted
    "poison_tasks",         # tasks that exhausted their retry budget
    "shm_fallbacks",        # shared-memory publish failures → pickled transfer
    "snapshots_quarantined",  # corrupt snapshot files renamed aside on load
)


class ResilienceStats:
    """Thread-safe monotonic counters plus the ``pool_degraded`` gauge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._pool_degraded = 0

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def set_pool_degraded(self, degraded: bool) -> None:
        with self._lock:
            self._pool_degraded = 1 if degraded else 0

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    @property
    def pool_degraded(self) -> bool:
        with self._lock:
            return bool(self._pool_degraded)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self._counts)
            out["pool_degraded"] = self._pool_degraded
            return out

    def reset(self) -> None:
        """Zero everything — test isolation only."""
        with self._lock:
            self._counts = {name: 0 for name in _COUNTERS}
            self._pool_degraded = 0


_GLOBAL = ResilienceStats()


def resilience_stats() -> ResilienceStats:
    """The process-wide sink the executor and persistence layers record into."""
    return _GLOBAL
