"""Parallel enumeration and scalability analysis (Section 6 of the paper).

Two views of the same workload:

1. a *real* parallel run with :func:`parallel_enumerate_maximal_kplexes`
   (process pool, timeout-based straggler splitting), cross-checked against
   the sequential result;
2. the *deterministic scheduler model* used by the Figure 8 / Figure 13
   reproductions, predicting speedup for 2–16 workers and showing the effect
   of the straggler timeout.

Run with::

    python examples/parallel_scaling.py [dataset] [k] [q]
"""

import sys

from repro import EnumerationRequest, KPlexEngine
from repro.datasets import load_dataset
from repro.experiments import measure_parallel_workload
from repro.parallel import ParallelConfig

def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "enwiki-2021"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    q = int(sys.argv[3]) if len(sys.argv) > 3 else 10

    graph = load_dataset(dataset)
    print(f"Dataset {dataset}: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"k={k}, q={q}\n")

    # Same engine, two solvers: sequential "ours" and the task-parallel
    # executor, dispatched by registry name.
    engine = KPlexEngine()
    sequential = engine.solve(EnumerationRequest(graph=graph, k=k, q=q, solver="ours"))
    print(f"Sequential:        {sequential.count:>7} k-plexes "
          f"in {sequential.elapsed_seconds:.2f}s")

    parallel = engine.solve(
        EnumerationRequest(
            graph=graph, k=k, q=q, solver="parallel",
            options={"parallel": ParallelConfig(num_workers=4, use_processes=True)},
        )
    )
    same = {p.as_set() for p in sequential} == {p.as_set() for p in parallel.kplexes}
    print(f"Parallel (4 proc): {parallel.count:>7} k-plexes "
          f"in {parallel.elapsed_seconds:.2f}s (results identical: {same})\n")

    measurement = measure_parallel_workload("Ours", graph, k, q)
    print("Deterministic scheduler model (measured task costs):")
    for workers in (1, 2, 4, 8, 16):
        predicted = measurement.makespan_seconds(workers, timeout_cost=16.0, split_overhead=0.5)
        baseline = measurement.makespan_seconds(1, timeout_cost=16.0, split_overhead=0.5)
        print(f"  {workers:>2} workers: predicted {predicted:.3f}s "
              f"(speedup {baseline / predicted:.1f}x)")

    print("\nEffect of the straggler timeout (16 workers):")
    for timeout in (1.0, 8.0, 64.0, 512.0, None):
        label = "inf" if timeout is None else f"{timeout:g}"
        predicted = measurement.makespan_seconds(16, timeout_cost=timeout, split_overhead=0.5)
        print(f"  tau = {label:>5} cost units: predicted {predicted:.3f}s")


if __name__ == "__main__":
    main()
