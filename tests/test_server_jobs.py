"""Tests for the async /v1/jobs HTTP surface: lifecycle, streaming, drain."""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.errors import (
    JobNotFoundError,
    JobQueueFullError,
    RemoteServiceError,
)
from repro.graph import generators
from repro.jobs import JobManagerConfig
from repro.server import ServiceClient, start_server
from repro.service import KPlexService, ServiceConfig

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]


def make_service(**config_kwargs) -> KPlexService:
    service = KPlexService(config=ServiceConfig(max_workers=2, **config_kwargs))
    service.catalog.register("toy", EDGES)
    service.catalog.register("busy", generators.gnm_random(60, 400, seed=5))
    return service


@pytest.fixture()
def served():
    """A booted server + ready client with toy and busy graphs registered."""
    service = make_service()
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        yield service, server, client
    finally:
        server.drain()


# --------------------------------------------------------------------------- #
# Lifecycle round trips over the wire
# --------------------------------------------------------------------------- #
def test_job_submit_poll_stream_roundtrip(served):
    _service, _server, client = served
    record = client.submit_job("toy", k=2, q=3)
    assert record["state"] in ("pending", "running", "succeeded")
    assert record["spec"]["k"] == 2 and record["spec"]["graph"] == "toy"
    job_id = record["id"]

    done = client.wait_job(job_id)
    assert done["state"] == "succeeded"
    assert done["termination"] == "completed"
    assert done["progress"]["results"] == 1
    assert done["progress"]["first_result_seconds"] is not None

    records = list(client.iter_job_results(job_id))
    assert [sorted(r["kplex"]) for r in records[:-1]] == [[0, 1, 2, 3]]
    final = records[-1]
    assert final["done"] is True and final["state"] == "succeeded"
    assert final["count"] == 1 and final["termination"] == "completed"

    window = client.job_results(job_id)
    assert window["complete"] is True and len(window["results"]) == 1

    listed = client.jobs(states=["succeeded"])
    assert job_id in [job["id"] for job in listed]
    assert client.jobs(states=["failed"]) == []


def test_job_error_statuses(served):
    _service, server, client = served
    with pytest.raises(JobNotFoundError):
        client.job("nope")
    with pytest.raises(JobNotFoundError):
        client.cancel_job("nope")

    # Missing required keys -> 400 before anything is admitted.
    with pytest.raises(Exception) as info:
        client._call("POST", "/v1/jobs", {"graph": "toy"})
    assert "missing required key" in str(info.value)

    # Unknown state filter -> 400.
    with pytest.raises(Exception) as info:
        client._call("GET", "/v1/jobs?state=bogus")
    assert "unknown job states" in str(info.value)

    # Unknown subroute and bad methods.
    with pytest.raises(RemoteServiceError) as info:
        client._call("GET", "/v1/jobs/abc/bogus")
    assert info.value.status == 404
    with pytest.raises(RemoteServiceError) as info:
        client._call("POST", "/v1/jobs/abc")
    assert info.value.status == 405
    with pytest.raises(RemoteServiceError) as info:
        client._call("DELETE", "/v1/solve")
    assert info.value.status == 405


def test_job_queue_budget_maps_to_429():
    service = make_service()
    server = start_server(
        service,
        port=0,
        job_config=JobManagerConfig(max_concurrent=1, max_queue_depth=1),
    )
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        first = client.submit_job("busy", k=2, q=4, result_buffer=8)
        second = client.submit_job("busy", k=2, q=4)
        with pytest.raises(JobQueueFullError):
            client.submit_job("busy", k=2, q=4)
        for job_id in (first["id"], second["id"]):
            client.cancel_job(job_id)
            client.wait_job(job_id)
    finally:
        server.drain()


def test_job_cancellation_stops_solver_over_http(served):
    _service, _server, client = served
    record = client.submit_job("busy", k=2, q=4, result_buffer=50_000)
    job_id = record["id"]
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        progress = client.job(job_id)["progress"]["results"]
        if progress > 0:
            break
        time.sleep(0.002)
    assert progress > 0, "job never produced a result"

    outcome = client.cancel_job(job_id)
    assert outcome["cancelled"] is True
    done = client.wait_job(job_id)
    assert done["state"] == "cancelled" and done["termination"] == "cancelled"
    frozen = done["progress"]["results"]
    time.sleep(0.1)
    assert client.job(job_id)["progress"]["results"] == frozen

    # The stream of a cancelled job ends with a well-formed final record.
    final = list(client.iter_job_results(job_id))[-1]
    assert final["done"] is True and final["state"] == "cancelled"


def test_job_streaming_applies_backpressure():
    # A single job worker lets us attach the stream reader while the target
    # job is still queued behind a blocker, so backpressure (not ring
    # dropping) governs it from its very first result.
    service = make_service()
    server = start_server(
        service,
        port=0,
        job_config=JobManagerConfig(max_concurrent=1, max_queue_depth=4),
    )
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        blocker = client.submit_job("busy", k=2, q=4)["id"]
        record = client.submit_job("busy", k=2, q=4, result_buffer=8)
        job_id = record["id"]
        stream = client.iter_job_results(job_id)
        # Attaching blocks until the queued job produces; the reader is
        # registered before the first result exists.
        first = next(stream)
        assert "kplex" in first
        # The producer cannot run ahead: at most `result_buffer` results
        # are held even though we read almost nothing yet.
        job = server.jobs.get(job_id)
        assert job.results.buffered <= 8
        consumed = [first] + list(stream)
        assert consumed[-1]["done"] is True
        assert consumed[-1]["state"] == "succeeded"
        expected = sorted(
            tuple(sorted(p.labels))
            for p in service.solve("busy", k=2, q=4).kplexes
        )
        streamed = sorted(
            tuple(sorted(r["kplex"])) for r in consumed if "kplex" in r
        )
        assert streamed == expected
        assert consumed[-1]["dropped"] == 0  # backpressure, not dropping
        client.wait_job(blocker)
    finally:
        server.drain()


# --------------------------------------------------------------------------- #
# Hammering: concurrent jobs are bit-identical to the sync path
# --------------------------------------------------------------------------- #
def test_concurrent_job_streams_match_sync_results(served):
    service, _server, client = served
    expected = sorted(
        tuple(sorted(p.labels)) for p in service.solve("busy", k=2, q=4).kplexes
    )
    failures = []

    def hammer(worker: int) -> None:
        try:
            own = ServiceClient(client.base_url, keep_alive=worker % 2 == 0)
            record = own.submit_job("busy", k=2, q=4, result_buffer=10_000)
            records = list(own.iter_job_results(record["id"]))
            final = records[-1]
            assert final["done"] is True and final["state"] == "succeeded", final
            streamed = sorted(
                tuple(sorted(r["kplex"])) for r in records if "kplex" in r
            )
            assert streamed == expected
            assert final["count"] == len(expected)
            own.close()
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            failures.append(f"worker {worker}: {exc}")

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures


# --------------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------------- #
def test_stream_uses_chunked_ndjson_wire_format(served):
    _service, server, client = served
    job_id = client.submit_job("toy", k=2, q=3)["id"]
    client.wait_job(job_id)

    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(
            f"GET /v1/jobs/{job_id}/results?stream=1 HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n\r\n".encode("ascii")
        )
        raw = b""
        while b"0\r\n\r\n" not in raw:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    headers, _, body = raw.partition(b"\r\n\r\n")
    text = headers.decode("latin-1")
    assert "Transfer-Encoding: chunked" in text
    assert "Content-Type: application/x-ndjson" in text
    assert "Content-Length" not in text

    # De-chunk by the HTTP/1.1 framing and parse every NDJSON line.
    lines = []
    rest = body
    while rest:
        size_text, _, rest = rest.partition(b"\r\n")
        size = int(size_text, 16)
        if size == 0:
            break
        payload, rest = rest[:size], rest[size + 2:]  # strip trailing CRLF
        assert payload.endswith(b"\n")
        lines.append(json.loads(payload))
    assert [sorted(line["kplex"]) for line in lines[:-1]] == [[0, 1, 2, 3]]
    assert lines[-1]["done"] is True and lines[-1]["state"] == "succeeded"


def test_stream_emits_heartbeats_while_idle(served):
    _service, _server, client = served
    # A pending-forever stream: submit against the busy graph with a tiny
    # heartbeat so the idle connection ticks instead of blocking silently.
    job_id = client.submit_job("toy", k=2, q=3)["id"]
    client.wait_job(job_id)
    records = list(
        client.iter_job_results(job_id, include_heartbeats=True, heartbeat=0.01)
    )
    # A finished job streams its buffer and final record without needing
    # heartbeats; the option must at least pass through cleanly.
    assert records[-1]["done"] is True

    # Force one real heartbeat: hold a stream open on a job that produces
    # nothing for a while (cancelled before it starts running).
    service_record = client.submit_job("busy", k=2, q=4)
    client.cancel_job(service_record["id"])
    records = list(
        client.iter_job_results(
            service_record["id"], include_heartbeats=True, heartbeat=0.01
        )
    )
    assert records[-1]["done"] is True


# --------------------------------------------------------------------------- #
# Metrics and snapshots
# --------------------------------------------------------------------------- #
def test_metrics_include_job_table_json_and_prometheus(served):
    _service, _server, client = served
    job_id = client.submit_job("toy", k=2, q=3)["id"]
    client.wait_job(job_id)

    metrics = client.metrics()
    assert metrics["jobs"]["submitted"] >= 1
    assert metrics["jobs"]["by_state"]["succeeded"] >= 1
    assert "time_to_first_result_p50_seconds" in metrics["jobs"]
    assert metrics["queued"] == 0  # the sync-path gauge is exported too

    text = client.metrics(fmt="prometheus")
    assert "kplex_jobs_by_state_succeeded 1" in text
    assert "kplex_jobs_queue_depth 0" in text
    assert "kplex_jobs_time_to_first_result_p50_seconds" in text
    assert "kplex_queued 0" in text


def test_drain_snapshot_records_job_summary(tmp_path):
    service = make_service()
    snapshot_path = str(tmp_path / "state.json")
    server = start_server(service, port=0, snapshot_path=snapshot_path)
    client = ServiceClient(server.url)
    client.wait_ready()
    job_id = client.submit_job("toy", k=2, q=3)["id"]
    client.wait_job(job_id)
    server.drain()
    with open(snapshot_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["jobs"]["jobs_total"] == 1
    assert document["jobs"]["by_state"]["succeeded"] == 1


# --------------------------------------------------------------------------- #
# Keep-alive transport
# --------------------------------------------------------------------------- #
def test_keep_alive_client_reuses_and_recovers_connection(served):
    _service, _server, client = served
    kept = ServiceClient(client.base_url, keep_alive=True)
    try:
        kept.health()
        conn = kept._conn
        assert conn is not None
        kept.graphs()
        kept.metrics()
        assert kept._conn is conn  # same socket across calls

        # Kill the socket under the client: the next call reconnects once.
        kept._conn.sock.close()
        assert kept.health()["status"] == "ok"
        assert kept._conn is not conn

        # Streaming composes with keep-alive (dedicated connection).
        job_id = kept.submit_job("toy", k=2, q=3)["id"]
        kept.wait_job(job_id)
        records = list(kept.iter_job_results(job_id))
        assert records[-1]["done"] is True
        kept.health()  # the reused connection is still healthy
    finally:
        kept.close()


def test_per_request_timeout_is_accepted(served):
    _service, _server, client = served
    assert client.health(request_timeout=5.0)["status"] == "ok"
    record = client.submit_job("toy", k=2, q=3, request_timeout=5.0)
    assert client.job(record["id"], request_timeout=5.0)["id"] == record["id"]


# --------------------------------------------------------------------------- #
# In-process drain while a stream is mid-flight
# --------------------------------------------------------------------------- #
def test_drain_cancel_terminates_midflight_stream_cleanly():
    # Stream a job that is still queued behind blockers on a single job
    # worker: the heartbeat proves the stream is attached and live, and the
    # drain then cancels the job before it ever runs — a deterministic
    # "drain while a stream is mid-flight" scenario.
    service = make_service()
    server = start_server(
        service,
        port=0,
        drain_jobs="cancel",
        job_config=JobManagerConfig(max_concurrent=1, max_queue_depth=8),
    )
    client = ServiceClient(server.url)
    client.wait_ready()
    for _ in range(5):
        client.submit_job("busy", k=2, q=4)
    record = client.submit_job("busy", k=2, q=4)
    stream = client.iter_job_results(
        record["id"], include_heartbeats=True, heartbeat=0.02
    )
    first = next(stream)  # the job is pending, so this is a heartbeat
    assert first.get("heartbeat") is True
    drainer = threading.Thread(target=server.drain)
    drainer.start()
    consumed = [r for r in stream if "heartbeat" not in r]
    drainer.join(timeout=60)
    assert not drainer.is_alive()
    final = consumed[-1]
    assert final["done"] is True
    assert final["state"] == "cancelled"
    assert final["termination"] == "cancelled"
    # Whether the cancel landed while the job was still queued or already
    # producing, the final record's count matches what was streamed.
    assert final["count"] == sum(1 for r in consumed if "kplex" in r)


# --------------------------------------------------------------------------- #
# SIGTERM drain in a real subprocess (satellite: streaming job mid-flight)
# --------------------------------------------------------------------------- #
def _boot_serve_http(*extra_args: str) -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-http",
            "--port", "0", "--register", "busy=dataset:jazz", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"serving on (http://\S+)", line)
    assert match, f"no boot line from serve-http (got {line!r})"
    return process, match.group(1)


@pytest.mark.parametrize("policy", ["wait", "cancel"])
def test_sigterm_drain_with_stream_midflight_exits_cleanly(policy):
    process, url = _boot_serve_http("--drain-jobs", policy)
    try:
        client = ServiceClient(url)
        client.wait_ready()
        # A buffer larger than the full result set: no ring-dropping, so the
        # stream is byte-complete no matter when the reader attaches.
        record = client.submit_job("busy", k=2, q=4, result_buffer=10_000)
        stream = client.iter_job_results(record["id"])
        consumed = [next(stream)]  # first result lands in milliseconds
        assert "kplex" in consumed[0]

        # The job needs ~300ms for all 3455 results; signalling right after
        # the first one means the drain almost always catches it mid-flight.
        process.send_signal(signal.SIGTERM)
        # Keep consuming: under "wait" the stream runs to completion, under
        # "cancel" it ends early — either way the final record is a
        # well-formed done marker, never a cut connection.
        consumed.extend(stream)
        final = consumed[-1]
        assert final["done"] is True
        assert final["termination"] in ("completed", "cancelled")
        if policy == "wait":
            assert final["state"] == "succeeded"
            assert final["count"] == 3455  # jazz k=2 q=4, bit-complete
        else:
            assert final["state"] in ("cancelled", "succeeded")

        _stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr
        assert "drained cleanly" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=30)
