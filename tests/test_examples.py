"""Smoke tests: the example applications run end to end and tell the story they claim."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, capsys, argv=None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    output = _run_example("quickstart.py", capsys)
    assert "Maximal 2-plexes" in output
    assert "alice" in output
    assert "all maximal k-plexes" in output  # verification passed


def test_community_detection_example(capsys):
    output = _run_example("community_detection.py", capsys)
    assert "k=1" in output and "k=2" in output and "k=3" in output
    assert "communities recovered" in output


def test_protein_complexes_example(capsys):
    output = _run_example("protein_complexes.py", capsys)
    assert "Candidate complexes" in output
    assert "Planted complexes fully contained in some candidate: 4/4" in output


def test_compare_algorithms_example(capsys):
    output = _run_example("compare_algorithms.py", capsys, argv=["jazz", "2", "8"])
    assert "All algorithms report the same number of k-plexes: True" in output
    assert "Ours" in output and "ListPlex" in output and "FP" in output


def test_http_demo_example(capsys):
    # Boots two real serve-http subprocesses, drives them over the wire and
    # asserts SIGTERM drains cleanly — the deployment story end to end.
    output = _run_example("http_demo.py", capsys)
    assert "SIGTERM -> drained, exit code 0" in output
    assert "warm restart: same 6 results" in output
    assert "demo complete: restart was warm, shutdown was clean" in output


def test_examples_directory_contains_required_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "community_detection.py", "protein_complexes.py",
            "compare_algorithms.py", "parallel_scaling.py", "maximum_kplex.py",
            "service_demo.py", "http_demo.py"} <= names
