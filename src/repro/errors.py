"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation refers to unknown vertices."""


class ParameterError(ReproError):
    """Raised when enumeration parameters (``k``, ``q``, thresholds) are invalid."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be found or constructed."""


class FormatError(ReproError):
    """Raised when a graph file cannot be parsed in the requested format."""


class SharedMemoryError(ReproError):
    """Raised when a shared-memory graph segment cannot be created or attached."""


class ResilienceError(ReproError):
    """Base class for errors raised by the fault-tolerance layer (:mod:`repro.resilience`)."""


class WorkerCrashError(ResilienceError):
    """Raised when worker processes keep dying and the run cannot be recovered."""


class PoisonTaskError(ResilienceError):
    """Raised when one task deterministically crashes or fails past the retry budget.

    Carries enough diagnostics to identify the task instead of looping: the
    offending item, the number of attempts made, and the failure mode
    (``"crash"`` for a worker death attributed to the task, ``"error"`` for a
    repeatedly-raised exception, preserved as ``__cause__``).
    """

    def __init__(self, message: str, item=None, attempts: int = 0, mode: str = "error"):
        super().__init__(message)
        self.item = item
        self.attempts = attempts
        self.mode = mode


class FaultInjectedError(ResilienceError):
    """Raised by an injected ``seed_exception`` fault point (testing only)."""


class ServiceError(ReproError):
    """Base class for errors raised by the serving layer (:mod:`repro.service`)."""


class CatalogError(ServiceError):
    """Raised for graph-catalog lifecycle problems (unknown/duplicate names, bad sources)."""


class ServiceOverloadError(ServiceError):
    """Raised when admission control rejects a request (worker pool and queue full)."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that is draining or closed."""


class CircuitOpenError(ServiceError):
    """Raised when the circuit breaker is open and the service sheds load.

    ``retry_after`` is the breaker's remaining cooldown in seconds, surfaced
    over HTTP as a 503 with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SnapshotError(ServiceError):
    """Raised when a service snapshot cannot be written, read or validated."""


class JobError(ServiceError):
    """Base class for errors raised by the async job subsystem (:mod:`repro.jobs`)."""


class JobNotFoundError(JobError):
    """Raised when a job id names no live job record (unknown or already evicted)."""


class JobStateError(JobError):
    """Raised when an operation is invalid in the job's current state."""


class JobQueueFullError(JobError, ServiceOverloadError):
    """Raised when the job manager's concurrency + queue budget is exhausted.

    Inherits :class:`ServiceOverloadError` so existing overload handling
    (HTTP 429 + Retry-After, client-side backoff) applies unchanged.
    """


class JobResultsTruncatedError(JobError):
    """Raised when a reader asks for job results the bounded buffer has dropped."""


class ClusterError(ServiceError):
    """Base class for errors raised by the multi-replica layer (:mod:`repro.cluster`)."""


class ReplicaUnavailableError(ClusterError):
    """Raised when no live replica can serve a routed request.

    Carries a ``retry_after`` hint (seconds) so the router can answer with
    HTTP 503 + ``Retry-After`` while supervision restarts the replica.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RemoteServiceError(ServiceError):
    """An HTTP server answered with an error the client cannot map locally.

    Attributes
    ----------
    status:
        The HTTP status code of the response.
    kind:
        The ``error.type`` label from the structured error body (or the
        raw reason phrase when the body was not structured).
    """

    def __init__(self, message: str, status: int = 0, kind: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
