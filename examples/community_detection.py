"""Community detection with k-plexes on a planted-partition social network.

The paper motivates k-plexes as a noise-tolerant community model: real
communities are rarely cliques because a few links are always missing.  This
example plants communities with missing internal edges, shows that maximal
*clique* enumeration (k = 1) shatters them, and that 2-plex / 3-plex
enumeration recovers each planted community as a single cohesive subgraph.

Run with::

    python examples/community_detection.py
"""

from repro import EnumerationRequest, KPlexEngine
from repro.analysis import jaccard_similarity, size_histogram
from repro.graph.generators import planted_partition


def planted_communities(num_communities: int, size: int):
    """Ground-truth communities of the planted-partition graph."""
    return [
        frozenset(range(community * size, (community + 1) * size))
        for community in range(num_communities)
    ]


def best_recovery(results, community):
    """Best Jaccard overlap between a planted community and any mined k-plex."""
    best = 0.0
    for plex in results:
        best = max(best, jaccard_similarity(plex.as_set(), community))
    return best


def main() -> None:
    num_communities, size = 6, 9
    graph = planted_partition(num_communities, size, p_in=0.9, p_out=0.015, seed=42)
    communities = planted_communities(num_communities, size)
    print(f"Planted-partition graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"Ground truth: {num_communities} communities of {size} vertices\n")

    # One batched engine call covers the whole k sweep; responses come back
    # in request order.
    engine = KPlexEngine()
    ks = (1, 2, 3)
    requests = [
        EnumerationRequest(graph=graph, k=k, q=max(2 * k - 1, 6)) for k in ks
    ]
    responses = engine.solve_batch(requests)

    for k, request, response in zip(ks, requests, responses):
        q = request.q
        results = response.kplexes
        recoveries = [best_recovery(results, community) for community in communities]
        histogram = size_histogram(results)
        recovered = sum(1 for score in recoveries if score >= 0.9)
        print(f"k={k}, q={q}: {len(results)} maximal k-plexes, sizes {dict(histogram)}")
        print(
            f"  communities recovered with >=90% overlap: {recovered}/{num_communities} "
            f"(mean best overlap {sum(recoveries) / len(recoveries):.2f})"
        )

    print(
        "\nCliques (k=1) fragment the noisy communities; relaxing to 2- and 3-plexes "
        "recovers far more of the planted communities as single cohesive subgraphs — "
        "the motivation for mining k-plexes in the first place."
    )


if __name__ == "__main__":
    main()
