"""Pure-Python ``array``-module CSR backend (the portable fallback).

This is the reference implementation of the CSR kernel: every other backend
(currently :mod:`repro.graph.csr_backend_numpy`) must produce bit-identical
results.  Storage typecodes come from :mod:`repro.graph.csr_types`, never
from hardcoded letters — ``array("l")`` is 4 bytes on LLP64 platforms, which
silently overflowed the offsets array for graphs beyond 2^31 directed edges.

Two implementation notes from measuring on the bundled datasets (pure
CPython; see ``BENCH_results.json``):

* two-hop expansion feeds whole row slices to C-level ``set.update`` /
  ``set.difference_update`` instead of marking vertices one by one in an
  interpreted loop — the slice path is ~2.5x faster;
* induced-row extraction uses a per-thread visited/position scratch array
  (reset after use, so repeated extractions allocate nothing beyond their
  output), which avoids building a dictionary per projection.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, List, Sequence

from ..errors import GraphError
from .csr_types import (
    Scratch,
    neighbor_typecode,
    normalize_adjacency,
    offset_typecode,
)
from .graph import Graph


class CSRGraph:
    """Flat sorted-adjacency-array view of an undirected simple graph.

    Vertex ids are the same contiguous ``0 .. n-1`` space as the source
    :class:`Graph`; only the storage differs.  Instances are immutable and
    safe to share across threads (scratch buffers are thread-local) and to
    pickle into worker processes.

    ``offsets[v] .. offsets[v+1]`` delimits the neighbour row of ``v``
    inside ``neighbors``; every row is sorted, so ``has_edge`` is a binary
    search and induced subgraph rows come out already sorted.  ``offsets``
    and ``neighbors`` may be any flat integer sequences supporting slicing
    (``array``, ``memoryview`` over a shared segment, numpy arrays in the
    subclass).
    """

    #: Registry name of this backend (subclasses override).
    backend = "array"

    __slots__ = ("num_vertices", "num_edges", "offsets", "neighbors", "_scratch")

    def __init__(self, offsets, neighbors) -> None:
        self.offsets = offsets
        self.neighbors = neighbors
        self.num_vertices = len(offsets) - 1
        self.num_edges = len(neighbors) // 2
        self._scratch = Scratch()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Build the CSR form of ``graph`` (rows sorted ascending).

        ``Graph`` already guarantees symmetric, loop-free, deduplicated
        adjacency, so this is the trusted fast path.
        """
        return cls._from_rows(
            (sorted(graph.neighbors(vertex)) for vertex in range(graph.num_vertices)),
            graph.num_vertices,
        )

    @classmethod
    def from_adjacency(
        cls, adjacency: Sequence[Iterable[int]], validate: bool = True
    ) -> "CSRGraph":
        """Build from a sequence of neighbour collections.

        Rows are sorted and validated by default (self-loops, out-of-range
        ids, duplicate edges and asymmetric input raise or are repaired —
        see :func:`repro.graph.csr_types.normalize_adjacency`); trusted
        callers whose rows already satisfy the invariants can pass
        ``validate=False`` to skip everything but the sort.
        """
        rows, _total = normalize_adjacency(adjacency, validate=validate)
        return cls._from_rows(rows, len(rows))

    @classmethod
    def _from_rows(cls, rows: Iterable[Sequence[int]], n: int) -> "CSRGraph":
        offsets = array(offset_typecode(), [0]) * (n + 1)
        neighbors = array(neighbor_typecode())
        total = 0
        for vertex, row in enumerate(rows):
            neighbors.extend(row)
            total += len(row)
            offsets[vertex + 1] = total
        return cls(offsets, neighbors)

    # ------------------------------------------------------------------ #
    # Pickling (scratch buffers are per-process, never shipped)
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        offsets, neighbors = self.offsets, self.neighbors
        if isinstance(offsets, memoryview):  # shared-memory views: own a copy
            offsets = array(offset_typecode(), offsets)
            neighbors = array(neighbor_typecode(), neighbors)
        return (self.__class__, (offsets, neighbors))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        """Return the degree of ``vertex``."""
        return self.offsets[vertex + 1] - self.offsets[vertex]

    def degrees(self) -> List[int]:
        """Return all vertex degrees indexed by vertex id."""
        offsets = self.offsets
        return [offsets[v + 1] - offsets[v] for v in range(self.num_vertices)]

    def neighbors_list(self, vertex: int) -> List[int]:
        """Return the sorted neighbour list of ``vertex`` (a fresh list)."""
        return list(self.neighbors[self.offsets[vertex] : self.offsets[vertex + 1]])

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ``u`` and ``v`` are adjacent (binary search)."""
        lo = self.offsets[u]
        hi = self.offsets[u + 1]
        index = bisect_left(self.neighbors, v, lo, hi)
        return index < hi and self.neighbors[index] == v

    # ------------------------------------------------------------------ #
    # Neighbourhood expansion (C-level set fills over flat row slices)
    # ------------------------------------------------------------------ #
    def two_hop_neighbors(self, vertex: int) -> List[int]:
        """Return the sorted vertices at distance exactly two from ``vertex``.

        Each first-hop row is fed to ``set.update`` as one contiguous array
        slice, so the whole expansion runs in C; no per-vertex Python-level
        membership tests happen.
        """
        offsets = self.offsets
        neighbors = self.neighbors
        start = offsets[vertex]
        stop = offsets[vertex + 1]
        second: set = set()
        update = second.update
        for index in range(start, stop):
            middle = neighbors[index]
            update(neighbors[offsets[middle] : offsets[middle + 1]])
        second.discard(vertex)
        second.difference_update(neighbors[start:stop])
        return sorted(second)

    def neighborhood_within_two_hops(self, vertex: int) -> List[int]:
        """Return the sorted closed two-hop ball ``{v} ∪ N(v) ∪ N²(v)``."""
        offsets = self.offsets
        neighbors = self.neighbors
        start = offsets[vertex]
        stop = offsets[vertex + 1]
        closed: set = {vertex}
        closed.update(neighbors[start:stop])
        update = closed.update
        for index in range(start, stop):
            middle = neighbors[index]
            update(neighbors[offsets[middle] : offsets[middle + 1]])
        return sorted(closed)

    def two_hop_counts(self) -> List[int]:
        """``|N²(v)|`` for every vertex — the full-graph two-hop sweep.

        The generic implementation loops :meth:`two_hop_neighbors`; the
        numpy backend replaces it with a blocked vectorised sweep (this is
        one of the gated kernel microbenches).
        """
        return [len(self.two_hop_neighbors(v)) for v in range(self.num_vertices)]

    # ------------------------------------------------------------------ #
    # Core peeling
    # ------------------------------------------------------------------ #
    def k_core_alive(self, k: int) -> bytearray:
        """Alive flags of the ``k``-core (the unique maximal min-degree-k subgraph)."""
        n = self.num_vertices
        offsets = self.offsets
        neighbors = self.neighbors
        degrees = self.degrees()
        alive = bytearray(b"\x01") * n
        stack = [vertex for vertex in range(n) if degrees[vertex] < k]
        for vertex in stack:
            alive[vertex] = 0
        while stack:
            vertex = stack.pop()
            for index in range(offsets[vertex], offsets[vertex + 1]):
                other = neighbors[index]
                if alive[other]:
                    degrees[other] -= 1
                    if degrees[other] < k:
                        alive[other] = 0
                        stack.append(other)
        return alive

    # ------------------------------------------------------------------ #
    # Subgraph extraction
    # ------------------------------------------------------------------ #
    def _check_in_range(self, vertices: Sequence[int], role: str) -> None:
        n = self.num_vertices
        for vertex in vertices:
            if not 0 <= vertex < n:
                raise GraphError(f"{role} vertex {vertex} is out of range")

    def rows_onto(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[int]:
        """Project the adjacency of ``sources`` onto local bitset rows.

        ``targets`` defines the local index space (``targets[i]`` gets bit
        ``i``); the result has one bitset row per source vertex.  With
        ``sources == targets`` this is exactly the adjacency-row construction
        of :class:`~repro.graph.dense.DenseSubgraph`.
        """
        self._check_in_range(targets, "target")
        self._check_in_range(sources, "source")
        offsets = self.offsets
        neighbors = self.neighbors
        position = self._scratch.position_array(self.num_vertices)
        try:
            for local, vertex in enumerate(targets):
                position[vertex] = local
            rows: List[int] = []
            for vertex in sources:
                row = 0
                for index in range(offsets[vertex], offsets[vertex + 1]):
                    local = position[neighbors[index]]
                    if local >= 0:
                        row |= 1 << local
                rows.append(row)
        finally:
            # The scratch array is shared by every projection on this thread;
            # restore it even on error so later calls stay correct.
            for vertex in targets:
                position[vertex] = -1
        return rows

    def induced_rows(self, vertices: Sequence[int]) -> List[int]:
        """Bitset adjacency rows of the induced subgraph on ``vertices``."""
        return self.rows_onto(vertices, vertices)

    def induced_adjacency(self, kept: Sequence[int]) -> List[List[int]]:
        """Sorted adjacency lists of the induced subgraph on ``kept``.

        ``kept`` must be sorted ascending; local ids then preserve the vertex
        order, so each output row is already sorted.
        """
        self._check_in_range(kept, "kept")
        offsets = self.offsets
        neighbors = self.neighbors
        position = self._scratch.position_array(self.num_vertices)
        try:
            for local, vertex in enumerate(kept):
                position[vertex] = local
            adjacency: List[List[int]] = []
            for vertex in kept:
                row: List[int] = []
                for index in range(offsets[vertex], offsets[vertex + 1]):
                    local = position[neighbors[index]]
                    if local >= 0:
                        row.append(local)
                adjacency.append(row)
        finally:
            for vertex in kept:
                position[vertex] = -1
        return adjacency

    def __repr__(self) -> str:
        return (
            f"{self.__class__.__name__}(n={self.num_vertices}, "
            f"m={self.num_edges}, backend={self.backend!r})"
        )
