"""Unit tests for verification, metrics and reporting utilities."""

import pytest

from repro.analysis import (
    cohesion_metrics,
    compare_algorithm_outputs,
    coverage,
    diameter_within_bound,
    jaccard_similarity,
    overlap_matrix,
    rank_by_density,
    render_ratio_row,
    render_series,
    render_table,
    results_as_sets,
    size_histogram,
    verify_results,
)
from repro.core import enumerate_maximal_kplexes
from repro.core.kplex import KPlex
from repro.graph import Graph, generators


@pytest.fixture
def mined():
    graph = generators.relaxed_caveman(3, 6, 0.25, seed=60)
    results = enumerate_maximal_kplexes(graph, 2, 5)
    return graph, results


# --------------------------------------------------------------------------- #
# Verification
# --------------------------------------------------------------------------- #
def test_verify_results_accepts_valid_output(mined):
    graph, results = mined
    report = verify_results(graph, results, 2, 5)
    assert report.ok
    assert report.total == len(results)
    assert "verified" in report.summary()


def test_verify_results_detects_problems(diamond):
    valid = KPlex.from_vertices(diamond, [0, 1, 2, 3], 2)
    not_plex = KPlex.from_vertices(diamond, [0, 3], 1)
    not_maximal = KPlex.from_vertices(diamond, [1, 2, 3], 2)
    report = verify_results(diamond, [valid, valid, not_plex, not_maximal], k=2, q=4)
    assert not report.ok
    assert report.duplicates
    assert report.non_maximal
    assert report.too_small
    summary = report.summary()
    assert "not maximal" in summary


def test_verify_results_flags_non_kplex(diamond):
    bogus = KPlex.from_vertices(diamond, [0, 3], 1)  # 0 and 3 are not adjacent
    report = verify_results(diamond, [bogus], k=1, q=1)
    assert report.invalid_kplexes


def test_compare_algorithm_outputs_agreement(mined):
    graph, results = mined
    outputs = {"a": results, "b": list(results)}
    assert compare_algorithm_outputs(outputs) == {}
    assert results_as_sets(results)


def test_compare_algorithm_outputs_disagreement(mined):
    _, results = mined
    outputs = {"full": results, "truncated": results[:-1]}
    disagreements = compare_algorithm_outputs(outputs)
    assert "truncated" in disagreements
    assert len(disagreements["truncated"]) == 1


def test_diameter_within_bound(mined):
    graph, results = mined
    assert diameter_within_bound(graph, results, 2)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_cohesion_metrics_on_clique():
    graph = Graph.complete(5)
    metrics = cohesion_metrics(graph, range(5))
    assert metrics.size == 5
    assert metrics.density == pytest.approx(1.0)
    assert metrics.internal_edges == 10
    assert metrics.minimum_internal_degree == 4
    assert metrics.diameter == 1
    assert metrics.boundary_edges == 0
    assert metrics.boundary_ratio == 0.0
    assert set(metrics.as_row()) >= {"size", "density", "diameter"}


def test_cohesion_metrics_boundary():
    graph = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    metrics = cohesion_metrics(graph, [0, 1, 2])
    assert metrics.boundary_edges == 1
    assert metrics.boundary_ratio == pytest.approx(1 / 7)


def test_rank_by_density_orders_densest_first(mined):
    graph, results = mined
    ranked = rank_by_density(graph, results, top=3)
    densities = [metrics.density for _, metrics in ranked]
    assert densities == sorted(densities, reverse=True)
    assert len(ranked) <= 3


def test_jaccard_and_overlap_matrix(diamond):
    first = KPlex.from_vertices(diamond, [0, 1, 2], 2)
    second = KPlex.from_vertices(diamond, [1, 2, 3], 2)
    assert jaccard_similarity(first.as_set(), second.as_set()) == pytest.approx(0.5)
    assert jaccard_similarity(frozenset(), frozenset()) == 1.0
    matrix = overlap_matrix([first, second])
    assert matrix[0][0] == 1.0
    assert matrix[0][1] == pytest.approx(0.5)


def test_coverage_and_size_histogram(mined):
    graph, results = mined
    assert 0.0 < coverage(graph, results) <= 1.0
    assert coverage(Graph.empty(0), []) == 0.0
    histogram = size_histogram(results)
    assert sum(histogram.values()) == len(results)
    assert all(size >= 5 for size in histogram)


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #
def test_render_table_alignment():
    rows = [{"name": "a", "value": 1.23456}, {"name": "bbb", "value": 2}]
    text = render_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.235" in text  # floats use three decimals
    assert len({len(line) for line in lines[2:]}) <= 2  # consistent width


def test_render_table_infers_columns_and_handles_missing():
    rows = [{"a": 1}, {"b": True}]
    text = render_table(rows)
    assert "a" in text and "b" in text and "yes" in text


def test_render_series():
    series = {"Ours": {5: 1.0, 6: 2.0}, "FP": {5: 3.0}}
    text = render_series(series, x_label="q", title="figure")
    assert "figure" in text
    assert "q" in text
    assert "Ours" in text and "FP" in text


def test_render_ratio_row():
    assert render_ratio_row("speedup", 10.0, 2.0).endswith("5.00x")
    assert render_ratio_row("speedup", 10.0, 0.0).endswith("n/a")
