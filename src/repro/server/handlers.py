"""HTTP request handling for the k-plex serving front-end.

One :class:`KPlexRequestHandler` instance handles one connection of the
:class:`~repro.server.app.KPlexHTTPServer`.  The wire contract is plain
JSON over HTTP/1.1 (stdlib only, no framework):

=========  ==========================  ==========================================
Method     Path                        Meaning
=========  ==========================  ==========================================
``GET``    ``/healthz``                liveness (``503`` while draining)
``GET``    ``/v1/graphs``              catalog listing
``POST``   ``/v1/graphs``              register a graph (edges / path / dataset)
``POST``   ``/v1/solve``               run one enumeration request
``GET``    ``/v1/metrics``             service metrics (``?format=prometheus``)
``POST``   ``/v1/snapshot``            write a warm-state snapshot now
=========  ==========================  ==========================================

Every error is a structured body ``{"error": {"type", "message", "status"}}``
so clients can map failures back to the library's exception types:
overload maps to ``429`` (with a ``Retry-After`` hint), a draining or
closed service to ``503``, an exceeded server-side hard deadline to
``504``, unknown catalog names to ``404``, duplicate registrations to
``409`` and every validation problem to ``400``.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..core.config import EnumerationConfig
from ..errors import (
    CatalogError,
    ParameterError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadError,
    SnapshotError,
)
from .persistence import save_snapshot

#: Largest accepted request body; registering a graph inline dominates.
MAX_BODY_BYTES = 32 * 1024 * 1024


class _HTTPFail(Exception):
    """Internal short-circuit carrying a ready-to-send structured error."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind


def _classify(exc: Exception) -> Tuple[int, str]:
    """Map a library exception to an HTTP status and error-type label."""
    if isinstance(exc, ServiceOverloadError):
        return 429, "ServiceOverloadError"
    if isinstance(exc, ServiceClosedError):
        return 503, "ServiceClosedError"
    if isinstance(exc, CatalogError):
        text = str(exc)
        if "unknown catalog graph" in text:
            return 404, "CatalogError"
        if "already registered" in text:
            return 409, "CatalogError"
        return 400, "CatalogError"
    if isinstance(exc, SnapshotError):
        return 500, "SnapshotError"
    if isinstance(exc, ParameterError):
        return 400, "ParameterError"
    if isinstance(exc, ReproError):
        return 400, type(exc).__name__
    return 500, type(exc).__name__


class KPlexRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`KPlexService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"kplex-enum/{__version__}"
    # Socket inactivity bound so a stalled client cannot wedge the
    # drain-time handler join forever.
    timeout = 60.0

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(
            {
                "/healthz": self._get_health,
                "/v1/graphs": self._get_graphs,
                "/v1/metrics": self._get_metrics,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(
            {
                "/v1/solve": self._post_solve,
                "/v1/graphs": self._post_graphs,
                "/v1/snapshot": self._post_snapshot,
            }
        )

    def _dispatch(self, routes: Dict[str, object]) -> None:
        parsed = urlparse(self.path)
        handler = routes.get(parsed.path)
        try:
            if handler is None:
                known = {"/healthz", "/v1/graphs", "/v1/metrics", "/v1/solve", "/v1/snapshot"}
                if parsed.path in known:
                    raise _HTTPFail(
                        405, "MethodNotAllowed", f"{self.command} not allowed on {parsed.path}"
                    )
                raise _HTTPFail(404, "NotFound", f"no route for {parsed.path}")
            handler(parse_qs(parsed.query))  # type: ignore[operator]
        except _HTTPFail as fail:
            self._send_error_body(fail.status, fail.kind, str(fail))
        except Exception as exc:  # noqa: BLE001 - every error becomes a body
            status, kind = _classify(exc)
            self._send_error_body(status, kind, str(exc))

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _get_health(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        if self.server.draining or service.closed:  # type: ignore[attr-defined]
            self._send_json(503, {"status": "draining"})
            return
        self._send_json(
            200,
            {
                "status": "ok",
                "graphs": len(service.catalog),
                "in_flight": service.metrics()["in_flight"],
            },
        )

    def _get_graphs(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        self._send_json(200, {"graphs": service.catalog.info()})

    def _get_metrics(self, query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        fmt = (query.get("format") or ["json"])[0].lower()
        if fmt == "prometheus":
            self._send_text(200, service.metrics_prometheus_text())
        elif fmt == "json":
            self._send_json(200, service.metrics())
        else:
            raise _HTTPFail(400, "BadRequest", f"unknown metrics format {fmt!r}")

    def _post_solve(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        body = self._read_json_body()
        name = self._require(body, "graph", str)
        k = self._require(body, "k", int)
        q = self._require(body, "q", int)
        include_results = body.pop("include_results", True)
        kwargs: Dict[str, object] = {}
        if body.get("solver") is not None:
            kwargs["solver"] = self._expect(body, "solver", str)
        if body.get("variant") is not None:
            kwargs["variant"] = self._expect(body, "variant", str)
        if body.get("config") is not None:
            config = self._expect(body, "config", dict)
            try:
                kwargs["config"] = EnumerationConfig(**config)
            except (TypeError, ValueError) as exc:
                raise _HTTPFail(400, "BadRequest", f"invalid config: {exc}") from exc
        if body.get("timeout") is not None:
            kwargs["timeout_seconds"] = self._expect(body, "timeout", (int, float))
        if body.get("max_results") is not None:
            kwargs["max_results"] = self._expect(body, "max_results", int)
        if body.get("sort_results") is not None:
            kwargs["sort_results"] = self._expect(body, "sort_results", bool)
        if body.get("options") is not None:
            kwargs["options"] = self._expect(body, "options", dict)
        if body.get("query") is not None:
            labels = self._expect(body, "query", list)
            graph = service.catalog.get(name)
            try:
                kwargs["query_vertices"] = tuple(
                    graph.index_of(label) for label in labels
                )
            except ReproError as exc:
                raise _HTTPFail(400, "GraphError", str(exc)) from exc
        for key in ("graph", "k", "q", "solver", "variant", "config", "timeout",
                    "max_results", "sort_results", "options", "query"):
            body.pop(key, None)
        if body:
            raise _HTTPFail(
                400, "BadRequest", f"unknown request keys {sorted(body)}"
            )
        request = service.request(name, k, q, **kwargs)
        future = service.submit(request)
        deadline = self.server.request_deadline  # type: ignore[attr-defined]
        try:
            response = future.result(timeout=deadline)
        except FutureTimeoutError:
            future.cancel()
            raise _HTTPFail(
                504,
                "DeadlineExceeded",
                f"request exceeded the server-side deadline of {deadline}s",
            ) from None
        payload: Dict[str, object] = {"graph": name}
        payload.update(response.as_dict(include_results=bool(include_results)))
        self._send_json(200, payload)

    def _post_graphs(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        body = self._read_json_body()
        name = self._require(body, "name", str)
        sources = [key for key in ("edges", "path", "dataset") if body.get(key) is not None]
        if len(sources) != 1:
            raise _HTTPFail(
                400,
                "BadRequest",
                "provide exactly one of 'edges', 'path' or 'dataset'",
            )
        if sources[0] == "edges":
            from ..graph import Graph

            edges = [tuple(edge) for edge in self._expect(body, "edges", list)]
            try:
                source: object = Graph.from_edges(edges, vertices=body.get("vertices"))
            except ReproError as exc:
                raise _HTTPFail(400, "GraphError", str(exc)) from exc
        elif sources[0] == "path":
            source = self._expect(body, "path", str)
        else:
            source = f"dataset:{self._expect(body, 'dataset', str)}"
        prewarm = None
        if body.get("prewarm") is not None:
            prewarm = [tuple(pair) for pair in self._expect(body, "prewarm", list)]
        entry = service.catalog.register(
            name,
            source,
            fmt=body.get("fmt", "auto"),
            prewarm=prewarm,
            replace=bool(body.get("replace", False)),
        )
        self._send_json(201, entry.describe())

    def _post_snapshot(self, _query: Dict[str, list]) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        body = self._read_json_body(optional=True)
        path = body.get("path") or self.server.snapshot_path  # type: ignore[attr-defined]
        if not path:
            raise _HTTPFail(
                400,
                "BadRequest",
                "no snapshot path: configure --snapshot or pass {'path': ...}",
            )
        # Serialise with the server's other snapshot writers (periodic
        # thread, drain): an endpoint write still in flight must not publish
        # after — and thereby clobber — a fresher drain-time snapshot.
        with self.server._snapshot_lock:  # type: ignore[attr-defined]
            snapshot = save_snapshot(service, path)
        self._send_json(
            200,
            {
                "path": str(path),
                "graphs": len(snapshot["graphs"]),
                "hot_requests": len(snapshot["hot_requests"]),
                "seed_specs": len(snapshot["seed_specs"]),
            },
        )

    # ------------------------------------------------------------------ #
    # Body / response plumbing
    # ------------------------------------------------------------------ #
    def _read_json_body(self, optional: bool = False) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            if optional:
                return {}
            raise _HTTPFail(400, "BadRequest", "a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise _HTTPFail(
                413, "PayloadTooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPFail(400, "BadRequest", f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise _HTTPFail(400, "BadRequest", "the JSON body must be an object")
        return body

    @staticmethod
    def _require(body: Dict[str, object], key: str, kind) -> object:
        if key not in body:
            raise _HTTPFail(400, "BadRequest", f"missing required key {key!r}")
        return KPlexRequestHandler._expect(body, key, kind)

    @staticmethod
    def _expect(body: Dict[str, object], key: str, kind) -> object:
        value = body[key]
        if kind is int and isinstance(value, bool):
            raise _HTTPFail(400, "BadRequest", f"{key!r} must be an integer")
        if not isinstance(value, kind):
            expected = getattr(kind, "__name__", None) or "/".join(
                k.__name__ for k in kind
            )
            raise _HTTPFail(
                400, "BadRequest", f"{key!r} must be of type {expected}"
            )
        return value

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        encoded = json.dumps(payload, default=str).encode("utf-8")
        self._send_bytes(status, encoded, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_error_body(self, status: int, kind: str, message: str) -> None:
        encoded = json.dumps(
            {"error": {"type": kind, "message": message, "status": status}}
        ).encode("utf-8")
        headers = {"Retry-After": "1"} if status == 429 else None
        self._send_bytes(status, encoded, "application/json", headers)

    def _send_bytes(
        self,
        status: int,
        payload: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Route access logs through the server's logger (quiet by default)."""
        self.server.log(format % args)  # type: ignore[attr-defined]
