"""Unit tests for the enumeration configuration and search statistics."""

import pytest

from repro.core.config import (
    BRANCHING_FAPLEXEN,
    BRANCHING_PIVOT,
    UPPER_BOUND_FP,
    EnumerationConfig,
    config_by_name,
)
from repro.core.stats import SearchStatistics


def test_default_config_is_ours():
    config = EnumerationConfig()
    assert config.branching == BRANCHING_PIVOT
    assert config.use_upper_bound
    assert config.use_seed_upper_bound
    assert config.use_pair_pruning
    assert config.label == "Ours"


def test_named_variants_match_paper_labels():
    assert EnumerationConfig.ours().label == "Ours"
    assert EnumerationConfig.ours_p().label == "Ours_P"
    assert EnumerationConfig.basic().label == "Basic"
    assert EnumerationConfig.basic_with_r1().label == "Basic+R1"
    assert EnumerationConfig.basic_with_r2().label == "Basic+R2"
    assert EnumerationConfig.without_upper_bound().label == "Ours\\ub"
    assert EnumerationConfig.with_fp_upper_bound().label == "Ours\\ub+fp"


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        EnumerationConfig(branching="something")
    with pytest.raises(ValueError):
        EnumerationConfig(upper_bound_method="something")


def test_with_changes_returns_new_config():
    base = EnumerationConfig.ours()
    changed = base.with_changes(use_pair_pruning=False)
    assert changed is not base
    assert not changed.use_pair_pruning
    assert base.use_pair_pruning


def test_config_by_name():
    assert config_by_name("ours") == EnumerationConfig.ours()
    assert config_by_name("OURS_P").branching == BRANCHING_FAPLEXEN
    assert config_by_name("ours-fp-ub").upper_bound_method == UPPER_BOUND_FP
    with pytest.raises(ValueError):
        config_by_name("does-not-exist")


def test_statistics_record_and_merge():
    first = SearchStatistics()
    first.record_seed(7, 10)
    first.record_branch(7)
    first.record_branch(7)
    first.outputs = 3
    second = SearchStatistics()
    second.record_seed(9, 4)
    second.record_branch(9)
    second.elapsed_seconds = 1.5
    first.merge(second)
    assert first.seeds == 2
    assert first.branch_calls == 3
    assert first.per_seed_branch_calls == {7: 2, 9: 1}
    assert first.elapsed_seconds == 1.5
    assert first.outputs == 3


def test_statistics_as_dict_and_str():
    stats = SearchStatistics()
    stats.record_branch(1)
    payload = stats.as_dict()
    assert payload["branch_calls"] == 1
    assert "branch_calls=1" in str(stats)


def test_record_branch_without_seed_registration():
    stats = SearchStatistics()
    stats.record_branch(42)
    assert stats.per_seed_branch_calls == {42: 1}
