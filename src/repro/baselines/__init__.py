"""Baseline algorithms: brute force, Bron–Kerbosch, ListPlex-style, FP-style."""

from .bron_kerbosch import (
    BronKerboschKPlex,
    bron_kerbosch_maximal_kplexes,
    bron_kerbosch_vertex_sets,
)
from .brute_force import (
    MAX_BRUTE_FORCE_VERTICES,
    brute_force_maximal_kplexes,
    brute_force_vertex_sets,
)
from .fp import FPLike, build_fp_seed_context, fp_config, fp_maximal_kplexes, fp_vertex_sets
from .listplex import (
    ListPlexLike,
    listplex_config,
    listplex_maximal_kplexes,
    listplex_vertex_sets,
)
from .maximum import find_maximum_kplex, maximum_kplex_size, maximum_kplex_with_witness

__all__ = [
    "BronKerboschKPlex",
    "bron_kerbosch_maximal_kplexes",
    "bron_kerbosch_vertex_sets",
    "MAX_BRUTE_FORCE_VERTICES",
    "brute_force_maximal_kplexes",
    "brute_force_vertex_sets",
    "FPLike",
    "fp_config",
    "fp_maximal_kplexes",
    "fp_vertex_sets",
    "build_fp_seed_context",
    "ListPlexLike",
    "listplex_config",
    "listplex_maximal_kplexes",
    "listplex_vertex_sets",
    "find_maximum_kplex",
    "maximum_kplex_size",
    "maximum_kplex_with_witness",
]
