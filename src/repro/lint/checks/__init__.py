"""Built-in checks — importing this package performs all registrations."""

from . import contracts, determinism, exceptions, locks  # noqa: F401

__all__ = ["contracts", "determinism", "exceptions", "locks"]
