"""Equivalence tests for the CSR graph kernel and the prepared-graph cache.

The CSR kernel (:mod:`repro.graph.csr`) and the prepared index
(:mod:`repro.graph.prepared`) are pure performance substrates: every result
they produce must be bit-identical to the set-backed reference
implementations.  These tests assert that on randomized graphs, and that
enumeration output is unchanged by prepared-graph cache hits.
"""

import pickle
import random

import pytest

from repro.api import EnumerationRequest, KPlexEngine
from repro.core import EnumerationConfig
from repro.core.stats import SearchStatistics
from repro.graph import (
    CSRGraph,
    Graph,
    core_decomposition,
    invalidate,
    k_core_subgraph,
    prepare,
    set_backed_core_decomposition,
    shrink_to_core,
)
from repro.graph.dense import DenseSubgraph
from repro.graph.generators import erdos_renyi, relaxed_caveman, star_graph


def random_graphs():
    """A deterministic mix of random and degenerate graphs."""
    graphs = [
        Graph.empty(0),
        Graph.empty(5),
        Graph.complete(6),
        star_graph(7),
    ]
    rng = random.Random(20250731)
    for trial in range(12):
        n = rng.randint(1, 48)
        p = rng.random() * 0.35
        graphs.append(erdos_renyi(n, p, seed=trial))
    return graphs


# --------------------------------------------------------------------------- #
# CSR kernel vs the set-backed Graph
# --------------------------------------------------------------------------- #
def test_csr_matches_set_backed_adjacency():
    for graph in random_graphs():
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges
        assert csr.degrees() == graph.degrees()
        for v in graph.vertices():
            assert csr.degree(v) == graph.degree(v)
            assert csr.neighbors_list(v) == sorted(graph.neighbors(v))
            for u in graph.vertices():
                assert csr.has_edge(v, u) == graph.has_edge(v, u)


def test_csr_two_hop_matches_set_backed():
    for graph in random_graphs():
        csr = CSRGraph.from_graph(graph)
        for v in graph.vertices():
            assert csr.two_hop_neighbors(v) == sorted(graph.two_hop_neighbors(v))
            assert csr.neighborhood_within_two_hops(v) == sorted(
                graph.neighborhood_within_two_hops(v)
            )


def test_csr_induced_rows_match_dense_subgraph():
    rng = random.Random(7)
    for graph in random_graphs():
        if graph.num_vertices == 0:
            continue
        csr = CSRGraph.from_graph(graph)
        vertices = rng.sample(
            range(graph.num_vertices), rng.randint(1, graph.num_vertices)
        )
        with_csr = DenseSubgraph(graph, vertices, csr=csr)
        invalidate(graph)  # make sure the plain path cannot pick a CSR up
        plain = DenseSubgraph(graph, vertices)
        assert with_csr.adjacency == plain.adjacency
        assert with_csr.vertices == plain.vertices


def test_csr_projection_rejects_out_of_range_vertices():
    from repro.errors import GraphError

    graph = erdos_renyi(30, 0.2, seed=6)
    csr = CSRGraph.from_graph(graph)
    expected = csr.rows_onto([0], [1, 2])
    with pytest.raises(GraphError):
        csr.rows_onto([0], [5, 999])
    with pytest.raises(GraphError):
        csr.rows_onto([0], [5, -7])  # must not wrap via negative indexing
    with pytest.raises(GraphError):
        csr.induced_adjacency([0, 999])
    # The shared scratch array is untouched by rejected calls.
    assert csr.rows_onto([0], [1, 2]) == expected


def test_csr_induced_adjacency_matches_induced_subgraph():
    for graph in random_graphs():
        csr = CSRGraph.from_graph(graph)
        kept = [v for v in graph.vertices() if v % 2 == 0]
        reference, _ = graph.induced_subgraph(kept)
        adjacency = csr.induced_adjacency(kept)
        assert [sorted(reference.neighbors(v)) for v in reference.vertices()] == adjacency


# --------------------------------------------------------------------------- #
# Core decomposition and core shrinking
# --------------------------------------------------------------------------- #
def test_cached_core_decomposition_is_bit_identical_to_reference():
    for graph in random_graphs():
        reference = set_backed_core_decomposition(graph)
        cached = core_decomposition(graph)
        assert cached.order == reference.order
        assert cached.core_numbers == reference.core_numbers
        assert cached.degeneracy == reference.degeneracy
        # The underlying cache entry is computed once and reused ...
        assert prepare(graph).decomposition is prepare(graph).decomposition
        # ... while the public function hands out defensive copies, so a
        # caller mutating its result cannot corrupt later requests.
        copy = core_decomposition(graph)
        assert copy is not cached
        copy.order.reverse()
        assert core_decomposition(graph).order == reference.order


def test_shrink_to_core_vertex_map_is_mutation_safe():
    graph = erdos_renyi(30, 0.3, seed=8)
    _, vertex_map = shrink_to_core(graph, 2)
    expected = list(vertex_map)
    vertex_map.reverse()
    _, again = shrink_to_core(graph, 2)
    assert list(again) == expected


def test_shrink_to_core_matches_reference_subgraph():
    for graph in random_graphs():
        for level in range(0, 6):
            reference, reference_map = k_core_subgraph(graph, level)
            cached, cached_map = shrink_to_core(graph, level)
            assert cached == reference
            assert list(cached_map) == list(reference_map)


def test_shrink_to_core_identity_when_nothing_peeled():
    graph = Graph.complete(5)
    core, vertex_map = shrink_to_core(graph, 2)
    assert core is graph
    assert vertex_map == [0, 1, 2, 3, 4]


def test_prepared_core_chains_cache_entries():
    graph = relaxed_caveman(4, 5, 0.2, seed=9)
    prepared = prepare(graph)
    prepared_core, _ = prepared.prepared_core(3)
    assert prepare(prepared_core.graph) is prepared_core


# --------------------------------------------------------------------------- #
# The prepared-graph cache itself
# --------------------------------------------------------------------------- #
def test_prepare_returns_same_index_until_invalidated():
    graph = erdos_renyi(30, 0.2, seed=1)
    prepared = prepare(graph)
    assert prepare(graph) is prepared
    invalidate(graph)
    assert prepare(graph) is not prepared


def test_prepared_graph_cache_info_tracks_materialisation():
    graph = erdos_renyi(20, 0.3, seed=2)
    invalidate(graph)
    prepared = prepare(graph)
    assert prepared.cache_info() == {
        "csr": False,
        "csr_backend": None,
        "decomposition": False,
        "core_levels": [],
    }
    prepared.decomposition
    prepared.core(2)
    info = prepared.cache_info()
    assert info["csr"] and info["decomposition"] and info["core_levels"] == [2]
    assert info["csr_backend"] in ("array", "numpy")


def test_prepared_graph_pickle_roundtrip_keeps_artifacts():
    graph = erdos_renyi(40, 0.15, seed=3)
    prepared = prepare(graph)
    prepared.decomposition
    prepared.position
    prepared.core(2)
    restored = pickle.loads(pickle.dumps(prepared))
    assert restored.graph == graph
    assert restored.graph._prepared is restored
    assert restored.cache_info() == prepared.cache_info()
    assert restored.decomposition.order == prepared.decomposition.order
    # tolist() keeps the comparison backend-agnostic (ndarray == ndarray is
    # elementwise, not a scalar truth value).
    assert restored.csr.neighbors.tolist() == prepared.csr.neighbors.tolist()


def test_graph_pickle_does_not_ship_prepared_index():
    graph = erdos_renyi(25, 0.2, seed=4)
    prepare(graph).decomposition
    restored = pickle.loads(pickle.dumps(graph))
    assert restored == graph
    assert restored._prepared is None
    assert restored.degrees() == graph.degrees()


# --------------------------------------------------------------------------- #
# Seed contexts: warm prepared cache vs cold recomputation
# --------------------------------------------------------------------------- #
def test_seed_contexts_identical_on_warm_and_cold_cache():
    from repro.core.seeds import iter_seed_contexts

    config = EnumerationConfig.ours()
    k, q = 2, 4
    for seed_graph in (3, 4, 5):
        graph = erdos_renyi(30, 0.25, seed=seed_graph)
        core, _ = shrink_to_core(graph, q - k)
        warm = list(iter_seed_contexts(core, k, q, config, prepared=prepare(core)))
        invalidate(core)
        cold = list(iter_seed_contexts(core, k, q, config))
        assert [seed for seed, _ in warm] == [seed for seed, _ in cold]
        for (_, a), (_, b) in zip(warm, cold):
            if a is None or b is None:
                assert a is None and b is None
                continue
            assert a.subgraph.vertices == b.subgraph.vertices
            assert a.subgraph.adjacency == b.subgraph.adjacency
            assert a.candidate_mask == b.candidate_mask
            assert a.two_hop_mask == b.two_hop_mask
            assert a.external_vertices == b.external_vertices
            assert a.external_adjacency == b.external_adjacency
            assert a.degrees == b.degrees
            assert a.pair_ok == b.pair_ok


# --------------------------------------------------------------------------- #
# End-to-end: enumeration output is unchanged by cache hits
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("solver", ["ours", "basic", "fp", "listplex"])
def test_enumeration_identical_with_and_without_cache_hit(solver):
    graph = relaxed_caveman(5, 5, 0.3, seed=11)
    engine = KPlexEngine()
    invalidate(graph)
    cold = engine.solve(EnumerationRequest(graph=graph, k=2, q=4, solver=solver))
    warm = engine.solve(EnumerationRequest(graph=graph, k=2, q=4, solver=solver))
    assert warm.vertex_sets() == cold.vertex_sets()
    # A value-equal but distinct graph (its own cold cache) agrees too.
    clone = Graph([set(graph.neighbors(v)) for v in graph.vertices()], graph.labels())
    fresh = engine.solve(EnumerationRequest(graph=clone, k=2, q=4, solver=solver))
    assert fresh.vertex_sets() == cold.vertex_sets()


def test_statistics_time_split_is_recorded():
    graph = relaxed_caveman(4, 5, 0.3, seed=13)
    invalidate(graph)
    response = KPlexEngine().solve(EnumerationRequest(graph=graph, k=2, q=4))
    stats = response.statistics
    assert stats.preprocess_seconds > 0
    assert stats.search_seconds > 0
    assert stats.elapsed_seconds == pytest.approx(
        stats.preprocess_seconds + stats.search_seconds
    )
    payload = stats.as_dict()
    assert "preprocess_seconds" in payload and "search_seconds" in payload


def test_engine_prepare_warms_the_requested_core():
    graph = relaxed_caveman(4, 5, 0.3, seed=19)
    invalidate(graph)
    prepared = KPlexEngine.prepare(graph, k=2, q=4)
    info = prepared.cache_info()
    assert info["csr"] and info["core_levels"] == [2]
    core, _ = prepared.core(2)
    assert prepare(core).cache_info()["decomposition"]


def test_concurrent_thread_mode_parallel_runs_are_isolated():
    import threading

    from repro.core import enumerate_maximal_kplexes
    from repro.parallel.executor import (
        ParallelConfig,
        parallel_enumerate_maximal_kplexes,
    )

    graph_a = relaxed_caveman(5, 5, 0.3, seed=21)
    graph_b = erdos_renyi(40, 0.3, seed=22)
    expect_a = {p.as_set() for p in enumerate_maximal_kplexes(graph_a, 2, 4)}
    expect_b = {p.as_set() for p in enumerate_maximal_kplexes(graph_b, 2, 5)}
    config = ParallelConfig(num_workers=2, use_processes=False)
    out = {}

    def run(tag, graph, k, q):
        result = parallel_enumerate_maximal_kplexes(graph, k, q, config)
        out[tag] = {p.as_set() for p in result.kplexes}

    threads = [
        threading.Thread(target=run, args=("a", graph_a, 2, 4)),
        threading.Thread(target=run, args=("b", graph_b, 2, 5)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert out["a"] == expect_a
    assert out["b"] == expect_b


def test_solve_batch_shares_one_prepared_index():
    graph = relaxed_caveman(4, 5, 0.3, seed=17)
    invalidate(graph)
    engine = KPlexEngine()
    requests = [EnumerationRequest(graph=graph, k=2, q=4) for _ in range(4)]
    responses = engine.solve_batch(requests, max_workers=2)
    assert len({tuple(r.vertex_sets()) for r in responses}) == 1
    # One index served every request.
    assert prepare(graph).cache_info()["decomposition"]
