"""Unit tests for graph readers and writers."""

import gzip

import pytest

from repro.errors import FormatError
from repro.graph import Graph, generators
from repro.graph.io import (
    load_graph,
    parse_edge_list,
    read_dimacs,
    read_edge_list,
    read_metis,
    write_dimacs,
    write_edge_list,
    write_metis,
)


@pytest.fixture
def sample() -> Graph:
    return generators.ring_of_cliques(2, 4)


def test_edge_list_round_trip(tmp_path, sample):
    path = tmp_path / "graph.txt"
    write_edge_list(sample, path)
    loaded = read_edge_list(path)
    assert loaded.num_vertices == sample.num_vertices
    assert loaded.num_edges == sample.num_edges


def test_edge_list_comments_and_extra_columns(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text("# SNAP style\n% another comment\n\n1 2 0.5\n2 3 1.0\n")
    graph = read_edge_list(path)
    assert graph.num_vertices == 3
    assert graph.num_edges == 2
    assert graph.label(0) == 1  # integer labels preserved


def test_edge_list_string_labels(tmp_path):
    path = tmp_path / "named.txt"
    path.write_text("alice bob\nbob carol\n")
    graph = read_edge_list(path)
    assert sorted(graph.labels()) == ["alice", "bob", "carol"]


def test_edge_list_gzip(tmp_path, sample):
    path = tmp_path / "graph.txt.gz"
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        for u, v in sample.edges():
            handle.write(f"{u} {v}\n")
    loaded = read_edge_list(path)
    assert loaded.num_edges == sample.num_edges


def test_parse_edge_list_rejects_short_lines():
    with pytest.raises(FormatError):
        list(parse_edge_list(["1\n"]))


def test_dimacs_round_trip(tmp_path, sample):
    path = tmp_path / "graph.dimacs"
    write_dimacs(sample, path)
    loaded = read_dimacs(path)
    assert loaded.num_vertices == sample.num_vertices
    assert loaded.num_edges == sample.num_edges


def test_dimacs_requires_problem_line(tmp_path):
    path = tmp_path / "broken.dimacs"
    path.write_text("e 1 2\n")
    with pytest.raises(FormatError):
        read_dimacs(path)


def test_dimacs_rejects_unknown_records(tmp_path):
    path = tmp_path / "broken.dimacs"
    path.write_text("p edge 2 1\nx 1 2\n")
    with pytest.raises(FormatError):
        read_dimacs(path)


def test_metis_round_trip(tmp_path, sample):
    path = tmp_path / "graph.metis"
    write_metis(sample, path)
    loaded = read_metis(path)
    assert loaded.num_vertices == sample.num_vertices
    assert loaded.num_edges == sample.num_edges


def test_metis_rejects_truncated_file(tmp_path):
    path = tmp_path / "broken.metis"
    path.write_text("3 2\n2\n")
    with pytest.raises(FormatError):
        read_metis(path)


def test_load_graph_auto_detection(tmp_path, sample):
    edge_path = tmp_path / "graph.txt"
    dimacs_path = tmp_path / "graph.col"
    metis_path = tmp_path / "graph.metis"
    write_edge_list(sample, edge_path)
    write_dimacs(sample, dimacs_path)
    write_metis(sample, metis_path)
    for path in (edge_path, dimacs_path, metis_path):
        assert load_graph(path).num_edges == sample.num_edges


def test_load_graph_explicit_format(tmp_path, sample):
    path = tmp_path / "data.unknown"
    write_dimacs(sample, path)
    assert load_graph(path, fmt="dimacs").num_edges == sample.num_edges
    with pytest.raises(FormatError):
        load_graph(path, fmt="nope")
