"""Dense bitset-backed subgraph representation.

Seed subgraphs ``G_i`` (Algorithm 2) are small and dense, so the paper stores
them as adjacency matrices.  The pure-Python analogue used here is a list of
integer bitsets, one adjacency row per local vertex.  All hot-path operations
of the branch-and-bound search (set intersection, degree counting, candidate
filtering) become integer bit operations on these rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .bitset import bits_to_list, iter_bits, mask_from_indices
from .csr import CSRGraph
from .graph import Graph


class DenseSubgraph:
    """An induced subgraph stored as bitset adjacency rows.

    Parameters
    ----------
    parent:
        The graph the subgraph was induced from.
    vertices:
        Parent vertex ids included in the subgraph, in local-index order.
    csr:
        Optional :class:`~repro.graph.csr.CSRGraph` form of ``parent``; when
        given, the adjacency rows are projected from the flat neighbour
        arrays (useful when the caller already iterates the CSR form).  The
        default dictionary path benchmarks faster under CPython, so nothing
        is picked up implicitly.
    """

    __slots__ = ("parent", "vertices", "index", "adjacency", "full_mask")

    def __init__(
        self, parent: Graph, vertices: Sequence[int], csr: Optional[CSRGraph] = None
    ) -> None:
        self.parent = parent
        self.vertices: List[int] = list(vertices)
        if len(set(self.vertices)) != len(self.vertices):
            raise GraphError("duplicate vertices in dense subgraph")
        self.index: Dict[int, int] = {
            vertex: position for position, vertex in enumerate(self.vertices)
        }
        if csr is not None:
            self.adjacency: List[int] = csr.induced_rows(self.vertices)
        else:
            self.adjacency = [0] * len(self.vertices)
            for local, vertex in enumerate(self.vertices):
                row = 0
                for neighbour in parent.neighbors(vertex):
                    other = self.index.get(neighbour)
                    if other is not None:
                        row |= 1 << other
                self.adjacency[local] = row
        self.full_mask = (1 << len(self.vertices)) - 1

    # ------------------------------------------------------------------ #
    # Sizes and lookups
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of vertices in the subgraph."""
        return len(self.vertices)

    def local_of(self, parent_vertex: int) -> int:
        """Return the local index of a parent vertex id."""
        try:
            return self.index[parent_vertex]
        except KeyError as exc:
            raise GraphError(f"vertex {parent_vertex} is not part of the subgraph") from exc

    def parent_of(self, local_vertex: int) -> int:
        """Return the parent vertex id of a local index."""
        return self.vertices[local_vertex]

    def parents_of_mask(self, mask: int) -> List[int]:
        """Translate a local bitset into the list of parent vertex ids."""
        return [self.vertices[local] for local in iter_bits(mask)]

    def mask_of_parents(self, parent_vertices: Iterable[int]) -> int:
        """Translate parent vertex ids into a local bitset."""
        return mask_from_indices(self.index[v] for v in parent_vertices)

    # ------------------------------------------------------------------ #
    # Adjacency queries (local indices)
    # ------------------------------------------------------------------ #
    def neighbors_mask(self, local_vertex: int) -> int:
        """Return the adjacency row of ``local_vertex`` as a bitset."""
        return self.adjacency[local_vertex]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if local vertices ``u`` and ``v`` are adjacent."""
        return (self.adjacency[u] >> v) & 1 == 1

    def degree(self, local_vertex: int) -> int:
        """Return the degree of ``local_vertex`` within the subgraph."""
        return self.adjacency[local_vertex].bit_count()

    def degree_in(self, local_vertex: int, mask: int) -> int:
        """Return the number of neighbours of ``local_vertex`` inside ``mask``."""
        return (self.adjacency[local_vertex] & mask).bit_count()

    def non_neighbors_in(self, local_vertex: int, mask: int) -> int:
        """Return the number of non-neighbours of ``local_vertex`` inside ``mask``.

        The vertex itself counts as a non-neighbour when it belongs to
        ``mask``, matching the ``\\bar d_P`` convention of the paper.
        """
        members = mask.bit_count()
        return members - (self.adjacency[local_vertex] & mask).bit_count()

    def common_neighbors_count(self, u: int, v: int, within: Optional[int] = None) -> int:
        """Return ``|N(u) ∩ N(v)|``, optionally restricted to the bitset ``within``."""
        common = self.adjacency[u] & self.adjacency[v]
        if within is not None:
            common &= within
        return common.bit_count()

    def restrict(self, keep_mask: int) -> "DenseSubgraph":
        """Return a new dense subgraph induced on the local vertices of ``keep_mask``."""
        kept_parents = self.parents_of_mask(keep_mask)
        return DenseSubgraph(self.parent, kept_parents)

    def to_graph(self) -> Tuple[Graph, List[int]]:
        """Materialise the subgraph as a :class:`Graph` plus the vertex map."""
        adjacency = [bits_to_list(self.adjacency[v]) for v in range(self.size)]
        labels = [self.parent.label(vertex) for vertex in self.vertices]
        return Graph(adjacency, labels), list(self.vertices)

    def __repr__(self) -> str:
        edges = sum(row.bit_count() for row in self.adjacency) // 2
        return f"DenseSubgraph(size={self.size}, edges={edges})"


def external_adjacency_mask(subgraph: DenseSubgraph, parent_vertex: int) -> int:
    """Return the bitset of subgraph vertices adjacent to an *external* vertex.

    Exclusive-set vertices coming from ``V'_i`` (earlier in the degeneracy
    ordering) are not part of the seed subgraph, yet the maximality check must
    know which subgraph vertices they touch.  This helper projects their
    parent-graph neighbourhood onto the subgraph's local index space.
    """
    row = 0
    for neighbour in subgraph.parent.neighbors(parent_vertex):
        local = subgraph.index.get(neighbour)
        if local is not None:
            row |= 1 << local
    return row
