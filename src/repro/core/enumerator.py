"""High-level enumeration API (the paper's Algorithm 2 driving Algorithm 3).

:class:`KPlexEnumerator` owns the whole sequential pipeline:

1. shrink the input graph to its ``(q - k)``-core (Theorem 3.5);
2. compute the degeneracy ordering and iterate over seed vertices;
3. build each seed subgraph, prune it with Corollary 5.2, and optionally
   precompute the vertex-pair co-occurrence matrix (rule R2);
4. enumerate the initial sub-tasks ``T_{ {v_i} ∪ S }`` (optionally pruned by
   the Theorem 5.7 bound, rule R1);
5. mine every sub-task with the branch-and-bound search of Algorithm 3.

Results are reported as :class:`~repro.core.kplex.KPlex` records whose vertex
ids and labels refer to the *original* input graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import ParameterError
from ..graph import Graph
from ..graph.prepared import prepare
from ..obs import start_span
from .branch import BranchSearcher
from .config import EnumerationConfig
from .kplex import KPlex, validate_parameters
from .seeds import SeedContext, iter_seed_contexts, iter_subtasks
from .stats import SearchStatistics


@dataclass
class EnumerationResult:
    """Outcome of one enumeration run."""

    kplexes: List[KPlex]
    statistics: SearchStatistics
    k: int
    q: int
    config: EnumerationConfig

    @property
    def count(self) -> int:
        """Number of maximal k-plexes found."""
        return len(self.kplexes)

    def vertex_sets(self) -> List[Tuple[int, ...]]:
        """Return the result vertex sets (sorted tuples of input-graph ids)."""
        return [plex.vertices for plex in self.kplexes]

    def __iter__(self) -> Iterator[KPlex]:
        return iter(self.kplexes)

    def __len__(self) -> int:
        return len(self.kplexes)


class KPlexEnumerator:
    """Configurable enumerator for maximal k-plexes with at least ``q`` vertices.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        The k-plex relaxation parameter (``k = 1`` gives maximal cliques).
    q:
        Minimum result size; must satisfy ``q >= 2k - 1`` (Definition 3.4).
    config:
        Optional :class:`EnumerationConfig`; defaults to the paper's ``Ours``
        variant with every pruning technique enabled.
    seed_context_cache:
        Optional :class:`repro.service.cache.SeedContextCache` (duck-typed:
        ``get(graph, k, q, config)`` / ``put(graph, k, q, config, contexts)``).
        When given, a completed seed sweep stores its built contexts and
        later runs with the same ``(graph, epoch, k, q, config)`` replay
        them instead of re-running Algorithm 2's subgraph construction —
        the ROADMAP's cross-request seed-context reuse.
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        q: int,
        config: Optional[EnumerationConfig] = None,
        seed_context_cache: Optional[object] = None,
    ) -> None:
        validate_parameters(k, q)
        self.graph = graph
        self.k = k
        self.q = q
        self.config = config or EnumerationConfig.ours()
        self._seed_context_cache = seed_context_cache
        # Snapshot the epoch at binding time: if the graph is invalidated
        # while this run is in flight, the completed sweep is published (and
        # looked up) under the old epoch, never the new one.
        self._seed_cache_epoch = graph.epoch
        self.statistics = SearchStatistics()
        # The (q-k)-core the search actually runs on, plus the map back to
        # the input graph's vertex ids.  Both the shrinking and the core's
        # degeneracy ordering come from the prepared-graph index, so repeated
        # runs on the same graph object skip this work entirely; the time the
        # lookups actually take is recorded as preprocessing.
        preprocess_span = start_span("preprocess", core_level=q - k)
        started = time.perf_counter()
        self._prepared_core, self._core_map = prepare(graph).prepared_core(q - k)
        self._core_graph = self._prepared_core.graph
        if self._core_graph.num_vertices >= q:
            # Materialise the ordering up front so the preprocess/search
            # time split is meaningful.
            self._prepared_core.position
        preprocess = time.perf_counter() - started
        self.statistics.preprocess_seconds += preprocess
        self.statistics.elapsed_seconds += preprocess
        if preprocess_span is not None:
            preprocess_span.set(
                core_vertices=self._core_graph.num_vertices
            ).finish()

    # ------------------------------------------------------------------ #
    # Properties describing the preprocessed search space
    # ------------------------------------------------------------------ #
    @property
    def core_graph(self) -> Graph:
        """The ``(q - k)``-core the enumeration operates on."""
        return self._core_graph

    @property
    def core_vertex_map(self) -> Sequence[int]:
        """Map from core-graph vertex ids back to input-graph vertex ids."""
        return self._core_map

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def _result_from_mask(self, context: SeedContext, p_mask: int) -> KPlex:
        core_vertices = context.subgraph.parents_of_mask(p_mask)
        original = [self._core_map[v] for v in core_vertices]
        return KPlex.from_vertices(self.graph, original, self.k)

    def _mine_context(self, context: SeedContext) -> List[KPlex]:
        """Run Algorithm 3 over one seed context and collect its results."""
        found: List[KPlex] = []
        searcher = BranchSearcher(
            context,
            self.k,
            self.q,
            self.config,
            self.statistics,
            on_result=lambda mask, ctx=context, sink=found: sink.append(
                self._result_from_mask(ctx, mask)
            ),
        )
        for task in iter_subtasks(context, self.k, self.q, self.config, self.statistics):
            searcher.run_subtask(task)
        return found

    def iter_results(self) -> Iterator[KPlex]:
        """Lazily yield maximal k-plexes (order follows the seed ordering)."""
        # The span parent is whatever is active when the first result is
        # pulled (the engine consumes this generator on the same thread).
        search_span = start_span("search")
        started = time.perf_counter()
        # try/finally so abandoned generators (early cancellation, timeout,
        # result budgets) still record the time they consumed.
        try:
            if self._core_graph.num_vertices >= self.q:
                cache = self._seed_context_cache
                cached = (
                    cache.get(
                        self.graph,
                        self.k,
                        self.q,
                        self.config,
                        epoch=self._seed_cache_epoch,
                    )
                    if cache is not None
                    else None
                )
                if cached is not None:
                    # Replay: the seed subgraphs were built by a previous run
                    # with the same (graph, epoch, k, q, config); contexts
                    # are read-only during the search, so sharing is safe.
                    if search_span is not None:
                        search_span.set(seed_context_replay=True)
                    for context in cached:
                        yield from self._mine_context(context)
                else:
                    filling: Optional[List[SeedContext]] = (
                        [] if cache is not None else None
                    )
                    for _seed, context in iter_seed_contexts(
                        self._core_graph,
                        self.k,
                        self.q,
                        self.config,
                        self.statistics,
                        prepared=self._prepared_core,
                    ):
                        if context is None:
                            continue
                        if filling is not None:
                            filling.append(context)
                        yield from self._mine_context(context)
                    # Reached only when the sweep ran to completion — a
                    # consumer abandoning the generator early (timeout,
                    # result budget) must not publish a partial entry.
                    if filling is not None:
                        cache.put(
                            self.graph,
                            self.k,
                            self.q,
                            self.config,
                            filling,
                            epoch=self._seed_cache_epoch,
                        )
        finally:
            duration = time.perf_counter() - started
            self.statistics.search_seconds += duration
            self.statistics.elapsed_seconds += duration
            if search_span is not None:
                search_span.set(
                    seeds=self.statistics.seeds,
                    branch_calls=self.statistics.branch_calls,
                    outputs=self.statistics.outputs,
                ).finish()

    def run(self) -> EnumerationResult:
        """Enumerate all maximal k-plexes and return the collected result."""
        results = list(self.iter_results())
        if self.config.sort_results:
            results.sort(key=lambda plex: (plex.size, plex.vertices))
        return EnumerationResult(
            kplexes=results,
            statistics=self.statistics,
            k=self.k,
            q=self.q,
            config=self.config,
        )

    def count(self) -> int:
        """Count maximal k-plexes without keeping them in memory."""
        total = 0
        for _ in self.iter_results():
            total += 1
        return total


def enumerate_maximal_kplexes(
    graph: Graph,
    k: int,
    q: int,
    config: Optional[EnumerationConfig] = None,
) -> List[KPlex]:
    """Enumerate all maximal k-plexes of ``graph`` with at least ``q`` vertices.

    This is the one-call functional API, kept as a thin shim over
    :class:`repro.api.KPlexEngine` (solver ``"ours"``); results match the
    paper's default algorithm ``Ours``.
    """
    from ..api.engine import KPlexEngine
    from ..api.request import EnumerationRequest

    return KPlexEngine().solve(
        EnumerationRequest(
            graph=graph,
            k=k,
            q=q,
            solver="ours",
            config=config,
            sort_results=config.sort_results if config is not None else True,
        )
    ).kplexes


def count_maximal_kplexes(
    graph: Graph,
    k: int,
    q: int,
    config: Optional[EnumerationConfig] = None,
) -> int:
    """Count the maximal k-plexes of ``graph`` with at least ``q`` vertices.

    Shim over :meth:`repro.api.KPlexEngine.count`: results are streamed and
    discarded, never materialised.
    """
    from ..api.engine import KPlexEngine
    from ..api.request import EnumerationRequest

    return KPlexEngine().count(
        EnumerationRequest(graph=graph, k=k, q=q, solver="ours", config=config)
    )
