"""Pluggable solver registry.

Every enumeration algorithm in the repository — the paper's algorithm and
its ablation variants, the baselines, and the parallel executor — is adapted
behind one :class:`Solver` interface and registered by name with
:func:`register_solver`.  :class:`~repro.api.engine.KPlexEngine` resolves
requests through this registry, so adding a new backend is one decorated
class, not another parallel call path.

A solver produces a :class:`SolverRun`: a *lazy* iterator of results plus a
way to read the accumulated :class:`SearchStatistics` once (or while) the
iterator is consumed.  Solvers whose underlying implementation is eager
(brute force, the process-pool executor) wrap the computation in a generator
so that no work happens before the first result is pulled.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Iterator, List, Optional, Tuple, Type

from ..core.kplex import KPlex
from ..core.stats import SearchStatistics
from ..errors import ParameterError
from .request import EnumerationRequest


@dataclass
class SolverRun:
    """A started (but not necessarily consumed) enumeration.

    Attributes
    ----------
    results:
        Lazy iterator over the result k-plexes, in the solver's natural
        order.  Iterating drives the actual search.
    statistics:
        Zero-argument callable returning the statistics accumulated *so
        far*; call it after (or during) consumption of ``results``.
    metadata:
        Solver-specific details for the response (variant label, worker
        count, ...).
    """

    results: Iterator[KPlex]
    statistics: Callable[[], SearchStatistics] = SearchStatistics
    metadata: Dict[str, object] = field(default_factory=dict)


class Solver(abc.ABC):
    """Interface every registered enumeration backend implements."""

    #: Registry name; filled in by :func:`register_solver`.
    name: ClassVar[str] = ""
    #: Human-readable one-liner for listings.
    description: ClassVar[str] = ""
    #: Whether the solver relies on the Theorem 3.3 diameter property and
    #: therefore requires ``q >= 2k - 1``.
    requires_diameter_bound: ClassVar[bool] = True
    #: Whether the solver honours ``request.query_vertices``.
    supports_query: ClassVar[bool] = False
    #: Whether results are produced incrementally (``False`` means the whole
    #: search runs when the first result is pulled).
    incremental: ClassVar[bool] = True

    @abc.abstractmethod
    def start(self, request: EnumerationRequest) -> SolverRun:
        """Validate solver-specific requirements and start the enumeration."""

    @classmethod
    def capabilities(cls) -> Dict[str, object]:
        """Capability summary used by listings and the CLI."""
        return {
            "solver": cls.name,
            "description": cls.description,
            "streaming": "incremental" if cls.incremental else "eager",
            "supports_query": cls.supports_query,
            "requires_diameter_bound": cls.requires_diameter_bound,
        }


_REGISTRY: Dict[str, Type[Solver]] = {}
_PRIMARY_NAMES: List[str] = []


def _normalise(name: str) -> str:
    return name.strip().lower()


def register_solver(
    name: str,
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Type[Solver]], Type[Solver]]:
    """Class decorator registering a :class:`Solver` under ``name``.

    ``aliases`` resolve to the same class; ``replace=True`` allows overriding
    an existing registration (useful for tests and downstream plugins).
    """

    def decorator(cls: Type[Solver]) -> Type[Solver]:
        if not issubclass(cls, Solver):
            raise TypeError(f"{cls.__name__} must subclass Solver to be registered")
        keys = [_normalise(name)] + [_normalise(alias) for alias in aliases]
        for key in keys:
            if not replace and key in _REGISTRY and _REGISTRY[key] is not cls:
                raise ValueError(f"solver name {key!r} is already registered")
        cls.name = _normalise(name)
        for key in keys:
            _REGISTRY[key] = cls
        if cls.name not in _PRIMARY_NAMES:
            _PRIMARY_NAMES.append(cls.name)
        return cls

    return decorator


def unregister_solver(name: str) -> None:
    """Remove a registration (primarily for tests); unknown names are ignored."""
    key = _normalise(name)
    cls = _REGISTRY.pop(key, None)
    if cls is not None and key in _PRIMARY_NAMES:
        _PRIMARY_NAMES.remove(key)
        # Drop any aliases still pointing at the class.
        for alias in [alias for alias, target in _REGISTRY.items() if target is cls]:
            del _REGISTRY[alias]


def get_solver(name: str) -> Type[Solver]:
    """Resolve a registry name to its :class:`Solver` class.

    Raises :class:`~repro.errors.ParameterError` for unknown names — the
    request-level error type, so callers can report it like any other bad
    parameter.
    """
    try:
        return _REGISTRY[_normalise(name)]
    except KeyError:
        known = ", ".join(sorted(solver_names()))
        raise ParameterError(
            f"unknown solver {name!r}; registered solvers: {known}"
        ) from None


def solver_names(include_aliases: bool = False) -> List[str]:
    """Names accepted by :func:`get_solver` (primary names by default)."""
    if include_aliases:
        return sorted(_REGISTRY)
    return list(_PRIMARY_NAMES)


def solver_table() -> List[Dict[str, object]]:
    """Capability rows for every registered solver (CLI ``solvers`` command)."""
    return [_REGISTRY[name].capabilities() for name in _PRIMARY_NAMES]
