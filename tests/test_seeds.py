"""Unit tests for the search-space partitioning (Algorithm 2)."""

from repro.core.config import EnumerationConfig
from repro.core.seeds import build_seed_context, iter_seed_contexts, iter_subtasks
from repro.core.stats import SearchStatistics
from repro.graph import generators
from repro.graph.bitset import bits_to_list, contains
from repro.graph.core_decomposition import core_decomposition


def _contexts_for(graph, k, q, config=None):
    config = config or EnumerationConfig.ours()
    stats = SearchStatistics()
    contexts = [
        (seed, context)
        for seed, context in iter_seed_contexts(graph, k, q, config, stats)
    ]
    return contexts, stats


def test_seed_contexts_cover_all_seeds_in_order():
    graph = generators.relaxed_caveman(3, 6, 0.2, seed=1)
    contexts, _ = _contexts_for(graph, 2, 4)
    order = core_decomposition(graph).order
    assert [seed for seed, _ in contexts] == order


def test_candidates_are_later_neighbors_of_seed():
    graph = generators.erdos_renyi(20, 0.3, seed=2)
    config = EnumerationConfig.ours().with_changes(use_seed_pruning=False)
    decomposition = core_decomposition(graph)
    position = decomposition.position()
    for seed, context in iter_seed_contexts(graph, 2, 3, config, SearchStatistics()):
        if context is None:
            continue
        assert context.subgraph.parent_of(context.seed_local) == seed
        candidates = context.subgraph.parents_of_mask(context.candidate_mask)
        for vertex in candidates:
            assert graph.has_edge(seed, vertex)
            assert position[vertex] > position[seed]
        two_hop = context.subgraph.parents_of_mask(context.two_hop_mask)
        for vertex in two_hop:
            assert not graph.has_edge(seed, vertex)
            assert position[vertex] > position[seed]


def test_external_vertices_are_earlier_within_two_hops():
    graph = generators.erdos_renyi(20, 0.3, seed=3)
    decomposition = core_decomposition(graph)
    position = decomposition.position()
    for seed, context in iter_seed_contexts(graph, 2, 3, EnumerationConfig.ours(), SearchStatistics()):
        if context is None:
            continue
        reachable = graph.neighborhood_within_two_hops(seed)
        for vertex in context.external_vertices:
            assert position[vertex] < position[seed]
            assert vertex in reachable


def test_small_seed_neighbourhoods_are_skipped():
    graph = generators.star_graph(5)
    contexts, stats = _contexts_for(graph, 2, 4)
    assert all(context is None for _, context in contexts)
    assert stats.seeds_pruned_empty == graph.num_vertices


def test_subtask_counts_respect_k_limit():
    graph = generators.erdos_renyi(16, 0.4, seed=4)
    config = EnumerationConfig.ours().with_changes(
        use_pair_pruning=False, use_seed_upper_bound=False
    )
    for k in (1, 2, 3):
        for seed, context in iter_seed_contexts(graph, k, max(2 * k - 1, 3), config, SearchStatistics()):
            if context is None:
                continue
            tasks = list(iter_subtasks(context, k, max(2 * k - 1, 3), config, SearchStatistics()))
            seed_bit = 1 << context.seed_local
            for task in tasks:
                assert task.p_mask & seed_bit
                s_mask = task.p_mask & ~seed_bit
                assert s_mask.bit_count() <= k - 1
                # S is drawn from the seed's non-neighbours only.
                assert s_mask & ~context.two_hop_mask == 0
                # Candidates are always seed neighbours.
                assert task.c_mask & ~context.candidate_mask == 0
            # Without pair pruning / R1, the number of sub-tasks equals the
            # number of subsets of the two-hop set with size < k.
            two_hop_size = context.two_hop_mask.bit_count()
            expected = sum(
                _choose(two_hop_size, size) for size in range(0, k)
            )
            assert len(tasks) == expected


def _choose(n, r):
    from math import comb

    return comb(n, r)


def test_r1_prunes_subtasks_and_counts_them():
    graph = generators.relaxed_caveman(4, 7, 0.3, seed=6)
    k, q = 3, 7
    config_with = EnumerationConfig.ours().with_changes(use_pair_pruning=False)
    config_without = config_with.with_changes(use_seed_upper_bound=False)
    stats_with = SearchStatistics()
    stats_without = SearchStatistics()
    with_tasks = 0
    without_tasks = 0
    for _seed, context in iter_seed_contexts(graph, k, q, config_with, stats_with):
        if context is not None:
            with_tasks += sum(1 for _ in iter_subtasks(context, k, q, config_with, stats_with))
    for _seed, context in iter_seed_contexts(graph, k, q, config_without, stats_without):
        if context is not None:
            without_tasks += sum(
                1 for _ in iter_subtasks(context, k, q, config_without, stats_without)
            )
    assert with_tasks <= without_tasks
    if with_tasks < without_tasks:
        assert stats_with.subtasks_pruned_by_seed_bound > 0


def test_pair_pruning_shrinks_subtask_candidates():
    graph = generators.relaxed_caveman(4, 7, 0.3, seed=8)
    k, q = 2, 6
    base = EnumerationConfig.ours().with_changes(use_seed_upper_bound=False)
    no_pairs = base.with_changes(use_pair_pruning=False)
    total_with = 0
    total_without = 0
    for _seed, context in iter_seed_contexts(graph, k, q, base, SearchStatistics()):
        if context is not None:
            total_with += sum(
                task.c_mask.bit_count()
                for task in iter_subtasks(context, k, q, base, SearchStatistics())
            )
    for _seed, context in iter_seed_contexts(graph, k, q, no_pairs, SearchStatistics()):
        if context is not None:
            total_without += sum(
                task.c_mask.bit_count()
                for task in iter_subtasks(context, k, q, no_pairs, SearchStatistics())
            )
    assert total_with <= total_without


def test_build_seed_context_returns_none_when_pruned_below_q():
    graph = generators.path_graph(8)
    decomposition = core_decomposition(graph)
    position = decomposition.position()
    context = build_seed_context(
        graph, position, decomposition.order[0], 2, 6, EnumerationConfig.ours(), SearchStatistics()
    )
    assert context is None


def test_degrees_match_subgraph():
    graph = generators.erdos_renyi(18, 0.35, seed=9)
    for _seed, context in iter_seed_contexts(graph, 2, 4, EnumerationConfig.ours(), SearchStatistics()):
        if context is None:
            continue
        for local in range(context.subgraph.size):
            assert context.degrees[local] == context.subgraph.degree(local)
        if context.pair_ok is not None:
            assert len(context.pair_ok) == context.subgraph.size
