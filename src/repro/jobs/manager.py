"""The :class:`JobManager`: async job admission, execution and lifecycle.

Wraps a :class:`~repro.service.KPlexService` so long enumerations become
first-class :class:`~repro.jobs.job.Job` records instead of pinned HTTP
connections:

* **admission** — at most ``max_concurrent + max_queue_depth`` live jobs;
  beyond that :class:`~repro.errors.JobQueueFullError` (HTTP 429) is the
  load-shedding signal, on a budget deliberately *separate* from the sync
  ``/v1/solve`` pool so background jobs cannot starve interactive traffic;
* **execution** — each job streams through the engine's lazy
  ``stream_run`` with the service's default timeout and seed-context
  cache, feeding the job's progress counters and its bounded
  :class:`~repro.jobs.job.ResultLog` (slow consumers pause the producer);
* **cancellation** — ``DELETE``-driven :meth:`cancel` propagates through
  the engine's cooperative token, so solver work actually stops;
* **garbage collection** — terminal jobs expire after their TTL (results
  freed, record retained), and the table is capped at ``max_jobs``
  records with the oldest terminal ones evicted first;
* **metrics** — jobs by state, queue depth, and a time-to-first-result
  p50/p95 reservoir, exported as one JSON-ready snapshot.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..api.request import EnumerationRequest
from ..api.response import TERMINATION_CANCELLED
from ..errors import (
    JobNotFoundError,
    JobQueueFullError,
    ParameterError,
    ServiceClosedError,
)
from ..graph import Graph
from ..obs import Trace, TraceRecorder, activate, current_trace, log_event
from ..service.service import KPlexService
from .job import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    JOB_STATES,
    JOB_SUCCEEDED,
    Job,
)

#: Drain policies accepted by :meth:`JobManager.close`.
DRAIN_WAIT = "wait"
DRAIN_CANCEL = "cancel"
DRAIN_POLICIES = (DRAIN_WAIT, DRAIN_CANCEL)


@dataclass(frozen=True)
class JobManagerConfig:
    """Tunable knobs of :class:`JobManager`.

    Attributes
    ----------
    max_concurrent:
        Worker threads running jobs (separate from the sync service pool).
    max_queue_depth:
        Jobs allowed to wait beyond the running ones; the admission bound
        is ``max_concurrent + max_queue_depth`` live (non-terminal) jobs.
    result_buffer:
        Default per-job bound on buffered results (``None`` = unbounded);
        each submission may override it.
    ttl_seconds:
        Default retention of a terminal job's results before it expires.
    max_jobs:
        Hard cap on retained job records (terminal ones evicted oldest
        first beyond it).
    latency_window:
        Retained for compatibility.  Time-to-first-result percentiles now
        come from a fixed-bucket histogram in the service's telemetry
        registry; the knob no longer bounds anything.
    """

    max_concurrent: int = 2
    max_queue_depth: int = 16
    result_buffer: Optional[int] = 4096
    ttl_seconds: float = 300.0
    max_jobs: int = 1024
    latency_window: int = 1024

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ParameterError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.max_queue_depth < 0:
            raise ParameterError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.result_buffer is not None and self.result_buffer < 1:
            raise ParameterError(
                f"result_buffer must be >= 1 or None, got {self.result_buffer}"
            )
        if self.ttl_seconds < 0:
            raise ParameterError(
                f"ttl_seconds must be non-negative, got {self.ttl_seconds}"
            )
        if self.max_jobs < self.max_concurrent + self.max_queue_depth:
            raise ParameterError(
                "max_jobs must cover the admission budget "
                f"({self.max_concurrent + self.max_queue_depth}), got {self.max_jobs}"
            )


class JobManager:
    """Lifecycle table + executor for async enumeration jobs.

    >>> from repro.service import KPlexService
    >>> from repro.jobs import JobManager
    >>> service = KPlexService()
    >>> service.catalog.register("toy", [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    CatalogEntry(name='toy', ...)
    >>> manager = JobManager(service)
    >>> job = manager.submit("toy", k=2, q=3)
    >>> manager.wait(job.id).state
    'succeeded'

    (doctest shown for shape only — see ``tests/test_jobs.py``.)
    """

    def __init__(
        self,
        service: KPlexService,
        config: Optional[JobManagerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.service = service
        self.config = config or JobManagerConfig()
        self._clock = clock
        # Completed job traces are published here (the HTTP server passes
        # its ring buffer, making them retrievable via /v1/trace/<id>).
        self._recorder = recorder
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._pool: Optional[object] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        # Counters (under self._lock).
        self._submitted = 0
        self._rejected = 0
        self._succeeded = 0
        self._failed = 0
        self._cancelled = 0
        self._expired = 0
        self._evicted = 0
        self._ttfr = service.telemetry.histogram(
            "job_ttfr_seconds",
            help_text="Time from job submission to its first streamed result",
        )

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: Union[EnumerationRequest, str, Graph],
        k: Optional[int] = None,
        q: Optional[int] = None,
        result_buffer: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
        **kwargs: object,
    ) -> Job:
        """Admit a job and return its PENDING record immediately.

        Accepts either a finished :class:`EnumerationRequest` or a catalog
        name / graph plus ``k``, ``q`` and request keywords (the same
        surface as :meth:`KPlexService.submit`).  ``result_buffer`` and
        ``ttl_seconds`` override the manager defaults for this job only.

        Raises :class:`JobQueueFullError` when ``max_concurrent +
        max_queue_depth`` jobs are already live, and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        if self._closed:
            raise ServiceClosedError("the job manager is closed")
        if isinstance(request, EnumerationRequest):
            if k is not None or q is not None or kwargs:
                raise ParameterError(
                    "pass either a finished EnumerationRequest or "
                    "(graph, k, q, ...) keywords, not both"
                )
            coerced = request
            graph_name = None
        else:
            if k is None or q is None:
                raise ParameterError(
                    "k and q are required when passing a graph or name"
                )
            coerced = self.service.request(request, k, q, **kwargs)
            graph_name = request if isinstance(request, str) else None
        if result_buffer is not None and result_buffer < 1:
            raise ParameterError(
                f"result_buffer must be >= 1, got {result_buffer}"
            )
        if ttl_seconds is not None and ttl_seconds < 0:
            raise ParameterError(
                f"ttl_seconds must be non-negative, got {ttl_seconds}"
            )
        spec = coerced.describe()
        if graph_name is not None:
            spec["graph"] = graph_name
        # Shed load while the backend is unhealthy instead of queueing doomed
        # work: the service's circuit breaker gates job admission too (the
        # job that passes in the half-open state is the probe — its outcome
        # is recorded in _run).
        self.service.check_breaker()
        capacity = self.config.max_concurrent + self.config.max_queue_depth
        with self._lock:
            self._gc_locked()
            live = sum(1 for job in self._jobs.values() if not job.terminal)
            if live >= capacity:
                self._rejected += 1
                if self.service.breaker is not None:
                    # Passed the breaker gate but never ran: free the
                    # half-open probe slot it may hold.
                    self.service.breaker.cancel_probe()
                raise JobQueueFullError(
                    f"job manager at capacity: {live} jobs live "
                    f"(max_concurrent={self.config.max_concurrent}, "
                    f"max_queue_depth={self.config.max_queue_depth})"
                )
            job_id = uuid.uuid4().hex[:16]
            while job_id in self._jobs:  # pragma: no cover - 64-bit collision
                job_id = uuid.uuid4().hex[:16]
            job = Job(
                job_id,
                coerced,
                spec,
                result_buffer=(
                    result_buffer
                    if result_buffer is not None
                    else self.config.result_buffer
                ),
                ttl_seconds=(
                    ttl_seconds if ttl_seconds is not None else self.config.ttl_seconds
                ),
                clock=self._clock,
            )
            self._jobs[job.id] = job
            self._submitted += 1
        # Jobs outlive the submitting request: each run gets its own trace
        # (request_id = job id) that remembers the submitter's request_id.
        parent = current_trace()
        log_event(
            "job_submitted",
            job_id=job.id,
            graph=spec.get("graph"),
            solver=spec.get("solver"),
        )
        self._ensure_pool().submit(
            self._run, job, parent.request_id if parent is not None else None
        )
        return job

    # ------------------------------------------------------------------ #
    # Table access
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        """Return the job record, or raise :class:`JobNotFoundError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return job

    def jobs(self, states: Optional[Sequence[str]] = None) -> List[Job]:
        """List job records in submission order, optionally state-filtered."""
        if states is not None:
            unknown = set(states) - set(JOB_STATES)
            if unknown:
                raise ParameterError(
                    f"unknown job states {sorted(unknown)}; "
                    f"known states: {', '.join(JOB_STATES)}"
                )
            wanted = frozenset(states)
        else:
            wanted = None
        with self._lock:
            self._gc_locked()
            return [
                job
                for job in self._jobs.values()
                if wanted is None or job.state in wanted
            ]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; ``True`` if it was still cancellable.

        Propagates through the engine's cooperative token: a RUNNING job's
        solver stops between results (its progress counters freeze), a
        PENDING one never starts.
        """
        job = self.get(job_id)
        cancelled = job.cancel()
        if cancelled and job.state == JOB_CANCELLED:
            # Cancelled before it ran; the runner will skip it.
            with self._lock:
                self._cancelled += 1
        return cancelled

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job is terminal (polling); returns the record."""
        job = self.get(job_id)
        deadline = None if timeout is None else self._clock() + timeout
        while not job.terminal:
            if deadline is not None and self._clock() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state} after {timeout}s"
                )
            time.sleep(0.005)
        return job

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def gc(self) -> int:
        """Expire terminal jobs past their TTL; returns how many expired."""
        with self._lock:
            return self._gc_locked()

    def _gc_locked(self) -> int:
        now = self._clock()
        expired = 0
        for job in self._jobs.values():
            if job.state not in (JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED):
                continue
            age = job.age_since_finish(now)
            ttl = job.ttl_seconds
            if age is not None and ttl is not None and age >= ttl:
                if job.expire():
                    expired += 1
                    self._expired += 1
        overflow = len(self._jobs) - self.config.max_jobs
        if overflow > 0:
            for job_id in [
                job.id for job in self._jobs.values() if job.terminal
            ][:overflow]:
                del self._jobs[job_id]
                self._evicted += 1
        return expired

    # ------------------------------------------------------------------ #
    # Metrics / lifecycle
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, object]:
        """One JSON-ready snapshot of the job table and its counters."""
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            buffered = dropped = 0
            for job in self._jobs.values():
                by_state[job.state] += 1
                buffered += job.results.buffered
                dropped += job.results.dropped
            snapshot: Dict[str, object] = {
                "submitted": self._submitted,
                "rejected": self._rejected,
                "succeeded": self._succeeded,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "expired": self._expired,
                "evicted": self._evicted,
                "by_state": by_state,
                "queue_depth": by_state[JOB_PENDING],
                "running": by_state[JOB_RUNNING],
                "buffered_results": buffered,
                "dropped_results": dropped,
                "ttfr_samples": self._ttfr.count,
            }
        if self._ttfr.count:
            snapshot["time_to_first_result_p50_seconds"] = self._ttfr.quantile(0.50)
            snapshot["time_to_first_result_p95_seconds"] = self._ttfr.quantile(0.95)
        return snapshot

    def summary(self) -> Dict[str, object]:
        """Compact job-table summary for drain-time snapshots."""
        metrics = self.metrics()
        return {
            "jobs_total": metrics["submitted"],
            "by_state": metrics["by_state"],
            "succeeded": metrics["succeeded"],
            "failed": metrics["failed"],
            "cancelled": metrics["cancelled"],
            "expired": metrics["expired"],
            "rejected": metrics["rejected"],
        }

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has begun; submissions are rejected."""
        return self._closed

    def close(self, policy: str = DRAIN_WAIT, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs and settle the live ones per ``policy``.

        ``"wait"`` lets running and queued jobs finish normally;
        ``"cancel"`` cancels every non-terminal job first (cooperatively —
        running solvers stop between results).  Both then wait for the
        worker pool to retire.  Idempotent.
        """
        if policy not in DRAIN_POLICIES:
            raise ParameterError(
                f"unknown drain policy {policy!r}; expected one of {DRAIN_POLICIES}"
            )
        with self._pool_lock:
            # Under the pool lock so _ensure_pool's closed-check and pool
            # creation can never interleave with shutdown.
            self._closed = True
        if policy == DRAIN_CANCEL:
            with self._lock:
                live = [job for job in self._jobs.values() if not job.terminal]
            for job in live:
                if job.cancel() and job.state == JOB_CANCELLED:
                    with self._lock:
                        self._cancelled += 1
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._pool_lock:
            if self._pool is None:
                if self._closed:
                    raise ServiceClosedError("the job manager is closed")
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.max_concurrent,
                    thread_name_prefix="kplex-jobs",
                )
            return self._pool

    @staticmethod
    def _encode(index: int, plex) -> Dict[str, object]:
        """One streamed k-plex as its NDJSON wire record."""
        return {
            "index": index,
            "size": plex.size,
            "kplex": list(plex.labels),
        }

    def _run(self, job: Job, parent_request_id: Optional[str] = None) -> None:
        # Each job runs under its own trace, keyed by the job's request_id
        # (= job id), so /v1/trace/<job id> shows the async work; the
        # submitting HTTP request is linked via parent_request_id.
        if self._recorder is None:
            # Tracing disabled: no recorder means nobody can ever read the
            # trace, so skip the span bookkeeping entirely.
            self._run_traced(job)
            return
        trace = Trace(request_id=job.request_id)
        root = trace.span("job", job_id=job.id)
        if parent_request_id is not None:
            root.set(parent_request_id=parent_request_id)
        # Registered live (same reason as the HTTP handler): a poller that
        # sees the terminal state must already find the trace, and running
        # jobs stay inspectable under /v1/trace/<job id>.
        self._recorder.record(trace)
        try:
            with activate(root):
                self._run_traced(job)
        finally:
            root.finish()
            trace.finish()

    def _run_traced(self, job: Job) -> None:
        breaker = self.service.breaker
        if not job.try_start():
            # Cancelled while queued; the admission slot frees here (and so
            # does any half-open probe slot the job held).
            if breaker is not None:
                breaker.cancel_probe()
            log_event("job_cancelled_before_start", job_id=job.id)
            return
        log_event("job_started", job_id=job.id)
        try:
            iterator, outcome = self.service.stream_run(
                job.request, cancel=job.cancel_token
            )
            index = 0
            for plex in iterator:
                job.note_result()
                if job.first_result_seconds is not None and index == 0:
                    self._ttfr.observe(job.first_result_seconds)
                appended = job.results.append(
                    self._encode(index, plex),
                    should_abort=lambda: job.cancel_token.cancelled,
                )
                index += 1
                if not appended and not job.cancel_token.cancelled:
                    break  # pragma: no cover - log closed under the producer
        except BaseException as exc:  # noqa: BLE001 - job table absorbs errors
            job.finish(JOB_FAILED, error=f"{type(exc).__name__}: {exc}")
            with self._lock:
                self._failed += 1
            if breaker is not None and not isinstance(exc, ParameterError):
                breaker.record_failure()
            log_event("job_failed", job_id=job.id, error=type(exc).__name__)
            return
        statistics = None
        run = outcome.run
        if run is not None:
            try:
                statistics = run.statistics().as_dict()
            except Exception:  # repro-lint: disable=swallowed-exception
                statistics = None  # stats are best-effort; the job result stands
        if outcome.termination == TERMINATION_CANCELLED:
            job.finish(
                JOB_CANCELLED,
                termination=outcome.termination,
                elapsed_seconds=outcome.elapsed_seconds,
                statistics=statistics,
            )
            with self._lock:
                self._cancelled += 1
            # A cancellation proves nothing about backend health; just
            # release any probe slot so the breaker can settle.
            if breaker is not None:
                breaker.cancel_probe()
            log_event("job_cancelled", job_id=job.id, results=job.result_count)
        else:
            job.finish(
                JOB_SUCCEEDED,
                termination=outcome.termination,
                elapsed_seconds=outcome.elapsed_seconds,
                statistics=statistics,
            )
            with self._lock:
                self._succeeded += 1
            if breaker is not None:
                breaker.record_success()
            log_event(
                "job_succeeded",
                job_id=job.id,
                results=job.result_count,
                termination=outcome.termination,
                elapsed_seconds=outcome.elapsed_seconds,
            )
            # Jobs stream past the result cache, so a finished job is always
            # freshly computed work — worth warming peers with.
            self.service.notify_warm_spec(job.request, "job")
