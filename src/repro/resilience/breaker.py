"""Circuit breaker: shed load while the backend is unhealthy.

Classic three-state machine:

* **closed** — traffic flows; consecutive failures are counted and a
  success resets the count.  Reaching ``failure_threshold`` opens the
  circuit.
* **open** — every request is refused immediately (the HTTP layer maps
  this to ``503`` + ``Retry-After``) until ``cooldown_seconds`` elapse.
* **half-open** — after the cooldown one probe request is let through.
  Its success closes the circuit; its failure re-opens it for another
  cooldown window.

The breaker never queues doomed work: refusing instantly is the point —
callers get an honest "come back in N seconds" instead of a timeout.
All methods are thread-safe.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, Dict, Optional

from ..obs import log_event

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe closed → open → half-open circuit breaker."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds <= 0:
            raise ValueError("cooldown_seconds must be > 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._opened_total = 0
        self._rejected_total = 0
        self._probe_in_flight = False

    # ------------------------------------------------------------------ #
    # Gate
    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """Whether a new request may proceed right now.

        In the half-open state exactly one caller wins the probe slot;
        everyone else keeps being refused until the probe's outcome is
        recorded via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            now = self._clock()
            if self._state == STATE_OPEN:
                if now - self._opened_at < self.cooldown_seconds:
                    self._rejected_total += 1
                    return False
                self._state = STATE_HALF_OPEN
                self._probe_in_flight = False
            # Half-open: hand out the single probe slot.
            if self._probe_in_flight:
                self._rejected_total += 1
                return False
            self._probe_in_flight = True
            return True

    # ------------------------------------------------------------------ #
    # Outcome reporting
    # ------------------------------------------------------------------ #
    def record_success(self) -> None:
        closed = False
        with self._lock:
            self._consecutive_failures = 0
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._probe_in_flight = False
                closed = True
        if closed:
            # Emitted outside the lock: event handlers must never be able
            # to re-enter breaker state.
            log_event("breaker_closed")

    def cancel_probe(self) -> None:
        """Release the half-open probe slot without recording an outcome.

        For callers that pass :meth:`allow` but then never run the request
        (e.g. admission control rejects it) — otherwise the probe slot
        would leak and the breaker could never close again.
        """
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._probe_in_flight = False

    def record_failure(self) -> None:
        tripped = False
        with self._lock:
            self._consecutive_failures += 1
            failures = self._consecutive_failures
            if self._state == STATE_HALF_OPEN:
                # The probe failed: back to a full cooldown window.
                self._trip_locked()
                tripped = True
            elif (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()
                tripped = True
        if tripped:
            log_event(
                "breaker_open",
                level=logging.WARNING,
                consecutive_failures=failures,
                cooldown_seconds=self.cooldown_seconds,
            )

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._opened_total += 1
        self._probe_in_flight = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        if self._state == STATE_OPEN:
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                return STATE_HALF_OPEN  # would transition on the next allow()
        return self._state

    def retry_after_seconds(self) -> float:
        """Remaining cooldown — what a 503 should put in ``Retry-After``."""
        with self._lock:
            if self._state != STATE_OPEN:
                return 0.0
            remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            state = self._peek_state()
            remaining = 0.0
            if self._state == STATE_OPEN:
                remaining = max(
                    0.0, self.cooldown_seconds - (self._clock() - self._opened_at)
                )
            return {
                "state": state,
                "is_open": 1 if state == STATE_OPEN else 0,
                "consecutive_failures": self._consecutive_failures,
                "opened_total": self._opened_total,
                "rejected_total": self._rejected_total,
                "cooldown_remaining_seconds": round(remaining, 3),
            }
