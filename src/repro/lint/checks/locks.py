"""Concurrency checks: shared-write races, lock-order cycles, blocking calls.

All three ride the held-lock regions computed by
:mod:`repro.lint.model`: every AST node knows which owned locks are held
at that point (``with self._lock:`` nesting, plus the repository's
``*_locked``-suffix convention for helpers that require the caller to hold
the lock).
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Dict, Iterator, List, Set, Tuple

from ..finding import Finding
from ..model import ASSUMED_LOCK, ClassModel, Project, SourceModule
from ..registry import Check, register_check

__all__ = ["UnlockedSharedWrite", "LockOrder", "BlockingUnderLock"]

_CONSTRUCTORS = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__", "__set_name__",
     # An object being unpickled is not yet shared with any other thread.
     "__setstate__"}
)


@register_check("unlocked-shared-write")
class UnlockedSharedWrite(Check):
    """Attribute written without the lock that guards it elsewhere.

    In a class that owns a lock, an instance attribute that is read or
    written inside ``with self._lock:`` somewhere is part of the locked
    shared state; writing it from another method *without* the lock is a
    data race (or at best an undocumented happens-before assumption).
    Constructor writes (``__init__`` and friends) and ``*_locked`` helpers
    are exempt.
    """

    description = (
        "attribute of a lock-owning class written outside the lock but "
        "accessed under it elsewhere"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for cls in module.classes:
                if not cls.owns_locks():
                    continue
                yield from self._check_class(module, cls)

    def _check_class(self, module: SourceModule, cls: ClassModel) -> Iterator[Finding]:
        locked_lines: Dict[str, List[int]] = defaultdict(list)
        unlocked_writes: Dict[str, List] = defaultdict(list)
        for site in cls.access_sites:
            if site.locked:
                locked_lines[site.attr].append(site.node.lineno)
            elif site.is_write and site.func_name not in _CONSTRUCTORS:
                unlocked_writes[site.attr].append(site)
        for attr in sorted(set(locked_lines) & set(unlocked_writes)):
            guarded_at = sorted(set(locked_lines[attr]))[:3]
            for site in unlocked_writes[attr]:
                yield Finding(
                    file=module.relpath,
                    line=site.node.lineno,
                    col=site.node.col_offset,
                    check=self.name,
                    message=(
                        f"attribute '{attr}' of lock-owning class '{cls.name}' is "
                        f"written here without a lock but accessed under a lock "
                        f"elsewhere (e.g. line{'s' if len(guarded_at) > 1 else ''} "
                        f"{', '.join(map(str, guarded_at))}); guard the write or "
                        f"document the happens-before"
                    ),
                    symbol=f"{cls.name}.{site.func_name}" if site.func_name else cls.name,
                    subject=attr,
                )


@register_check("lock-order")
class LockOrder(Check):
    """Cyclic lock-acquisition order (deadlock candidates).

    Builds the project-wide acquisition graph: an edge ``A -> B`` means
    some code acquires lock ``B`` while holding ``A`` — either by textual
    nesting of ``with`` blocks or by calling (``self.method()``) a method
    of the same class that takes another lock.  Any cycle is a potential
    deadlock once two threads interleave.  A self-edge on a non-reentrant
    ``Lock`` (``with self._lock:`` nested inside itself) deadlocks a
    single thread and is flagged too; re-entering an ``RLock`` is fine.
    """

    description = "cyclic (or self-nested non-reentrant) lock acquisition order"

    def run(self, project: Project) -> Iterator[Finding]:
        edges: Dict[str, Set[str]] = defaultdict(set)
        sites: Dict[Tuple[str, str], Tuple[SourceModule, ast.AST, str]] = {}
        kinds: Dict[str, str] = {}

        def qualify(module: SourceModule, token: str) -> str:
            # class::C::attr -> module.C.attr ; mod::m::NAME -> m.NAME
            parts = token.split("::")
            if parts[0] == "class":
                return f"{module.modname}.{parts[1]}.{parts[2]}"
            return f"{parts[1]}.{parts[2]}"

        for module in project.modules:
            # Direct nesting edges.
            for acq in module.acquisitions:
                target = qualify(module, acq.token)
                kinds[target] = acq.kind
                for held in acq.held:
                    if held == ASSUMED_LOCK:
                        continue
                    source = qualify(module, held)
                    edges[source].add(target)
                    sites.setdefault((source, target), (module, acq.node, acq.function))
            # Same-class call-through edges: holding A, calling self.m()
            # where m acquires B.
            for cls in module.classes:
                if not cls.owns_locks():
                    continue
                acquired_by_method: Dict[str, Set[str]] = defaultdict(set)
                for acq in module.acquisitions:
                    func = acq.function
                    if func.startswith(f"{cls.name}.") and acq.token.startswith("class::"):
                        method = func[len(cls.name) + 1 :].split(".")[0]
                        acquired_by_method[method].add(qualify(module, acq.token))
                for node in ast.walk(cls.node):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                    ):
                        continue
                    held = module.held_at(node)
                    if not held or held == frozenset({ASSUMED_LOCK}):
                        continue
                    callee = node.func.attr
                    for target in acquired_by_method.get(callee, ()):
                        for held_token in held:
                            if held_token == ASSUMED_LOCK:
                                continue
                            source = qualify(module, held_token)
                            if source == target:
                                continue  # self-edge handled by nesting pass
                            edges[source].add(target)
                            sites.setdefault(
                                (source, target),
                                (module, node, module.enclosing_function(node)),
                            )

        yield from self._report_cycles(edges, sites, kinds)

    def _report_cycles(self, edges, sites, kinds) -> Iterator[Finding]:
        # Self-edges: deadlock for plain Lock, fine for RLock.
        emitted: Set[str] = set()
        for source in sorted(edges):
            if source in edges[source] and kinds.get(source) not in ("RLock", "Semaphore"):
                module, node, function = sites[(source, source)]
                yield Finding(
                    file=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    check=self.name,
                    message=(
                        f"non-reentrant lock '{source}' is acquired while already "
                        f"held (single-thread deadlock); use an RLock or restructure"
                    ),
                    symbol=function,
                    subject=source,
                )
                emitted.add(source)
        # Multi-lock cycles via iterative strongly-connected components.
        for component in _tarjan({k: v for k, v in edges.items()}):
            if len(component) < 2:
                continue
            cycle = "->".join(sorted(component))
            if cycle in emitted:
                continue
            emitted.add(cycle)
            ordered = sorted(component)
            pairs = [
                (a, b)
                for a in ordered
                for b in edges.get(a, ())
                if b in component and a != b
            ]
            module, node, function = sites[pairs[0]]
            yield Finding(
                file=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                check=self.name,
                message=(
                    f"lock-order cycle between {', '.join(ordered)}: two threads "
                    f"taking these locks in opposite orders deadlock; impose one "
                    f"global acquisition order"
                ),
                symbol=function,
                subject=cycle,
            )


def _tarjan(edges: Dict[str, Set[str]]) -> List[Set[str]]:
    """Iterative Tarjan SCC (recursion-free: lint runs on deep graphs)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []
    counter = [0]
    nodes = sorted(set(edges) | {t for targets in edges.values() for t in targets})

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = sorted(edges.get(node, ()))
            for offset in range(child_index, len(successors)):
                succ = successors[offset]
                if succ not in index:
                    work[-1] = (node, offset + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


#: Dotted-name suffixes that block the calling thread.  Includes the
#: project's own HTTP proxy primitives: a router holding a lock across a
#: replica round-trip stalls every other request on that lock.
_BLOCKING_SUFFIXES: Tuple[str, ...] = (
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen.wait",
    "urllib.request.urlopen",
    "socket.create_connection",
    "socket.getaddrinfo",
    "requests.get",
    "requests.post",
    "requests.request",
    "proxy.forward",
    "proxy.open_stream",
    "cluster.forward",
)


@register_check("blocking-under-lock")
class BlockingUnderLock(Check):
    """Blocking call made while holding a lock.

    ``time.sleep``, subprocess execution, socket/HTTP round-trips and
    synchronous waits on pool futures (``submit(...).result()``,
    ``thread.join()``) executed inside a ``with self._lock:`` region stall
    every thread contending for that lock for the full blocking duration —
    the canonical way a "fast path" develops multi-second tail latency.
    """

    description = "sleep/subprocess/HTTP/future-wait call while holding a lock"

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        # Variables bound from ``<pool>.submit(...)`` / ``threading.Thread(...)``
        # whose .result()/.join() under a lock is a synchronous wait.
        waitable: Set[str] = set()
        for node in module.walk():
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                func = node.value.func
                attr = func.attr if isinstance(func, ast.Attribute) else None
                dotted = module.call_name(node.value) or ""
                if attr == "submit" or dotted.endswith("threading.Thread"):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            waitable.add(target.id)
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            held = module.held_at(node)
            if not held:
                continue
            blocking = self._blocking_reason(module, node, waitable)
            if blocking is None:
                continue
            subject, reason = blocking
            locks = ", ".join(
                sorted(t.split("::")[-1] for t in held if t != ASSUMED_LOCK)
            ) or "an assumed caller-held lock"
            yield Finding(
                file=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                check=self.name,
                message=(
                    f"{reason} while holding {locks}: every thread contending "
                    f"for the lock stalls for the call's full duration; move "
                    f"the call outside the locked region"
                ),
                symbol=module.enclosing_function(node),
                subject=subject,
            )

    def _blocking_reason(self, module: SourceModule, node: ast.Call, waitable: Set[str]):
        dotted = module.call_name(node)
        if dotted is not None:
            for suffix in _BLOCKING_SUFFIXES:
                if dotted == suffix or dotted.endswith("." + suffix):
                    return suffix, f"blocking call {suffix}()"
            if dotted.endswith("subprocess.Popen"):
                return "subprocess.Popen", "subprocess spawn"
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "result":
                inner = func.value
                if isinstance(inner, ast.Call):
                    inner_func = inner.func
                    if isinstance(inner_func, ast.Attribute) and inner_func.attr == "submit":
                        return "submit().result()", "synchronous pool wait submit(...).result()"
                if isinstance(inner, ast.Name) and inner.id in waitable:
                    return f"{inner.id}.result()", "synchronous future wait .result()"
            if func.attr == "join":
                inner = func.value
                if isinstance(inner, ast.Name) and inner.id in waitable:
                    return f"{inner.id}.join()", "thread join"
        return None
