"""CSR kernel microbenches — numpy backend vs array backend vs frozensets.

The ROADMAP's honesty rule for kernel work: the pure-Python CSR scans
measured *slower* than CPython's C-level set operations for single-shot
traversals, so until now the CSR kernel's wins were reuse-only.  This bench
gates the numpy backend's claim to have flipped that:

* **two-hop sweep** — ``|N²(v)|`` for every vertex of a bundled dataset in
  one cold pass.  Set path: ``len(graph.two_hop_neighbors(v))`` per vertex;
  CSR paths: ``csr.two_hop_counts()`` per backend.
* **core shrink** — ``k``-core alive flags for several peel levels.  Set
  path: ``k_core_vertices``; CSR paths: ``csr.k_core_alive`` per backend.

Gates (asserted below): the numpy backend beats the frozenset path on every
single microbench, and is at least 2x faster than *both* the frozenset path
and the array backend on the suite aggregate.  All results are also
asserted bit-identical across the three paths before any time is trusted.
"""

import time

import pytest

from repro.analysis.reporting import render_table
from repro.datasets import load_dataset
from repro.graph.core_decomposition import k_core_vertices
from repro.graph.csr import available_csr_backends, csr_class

from _bench_utils import run_once

DATASETS = ("wiki-vote", "soc-pokec", "enwiki-2021")
SHRINK_LEVELS = (2, 3, 4, 5, 6, 8, 10, 12)
REPEATS = 7


def _best_of(function, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def _sweep_rows(dataset):
    graph = load_dataset(dataset)
    array_csr = csr_class("array").from_graph(graph)
    numpy_csr = csr_class("numpy").from_graph(graph)

    set_seconds, set_counts = _best_of(
        lambda: [len(graph.two_hop_neighbors(v)) for v in graph.vertices()]
    )
    array_seconds, array_counts = _best_of(array_csr.two_hop_counts)
    numpy_seconds, numpy_counts = _best_of(numpy_csr.two_hop_counts)
    assert set_counts == array_counts == numpy_counts, dataset

    def shrink_set():
        return [len(k_core_vertices(graph, level)) for level in SHRINK_LEVELS]

    def shrink_csr(csr):
        return [sum(csr.k_core_alive(level)) for level in SHRINK_LEVELS]

    shrink_set_seconds, shrink_set_sizes = _best_of(shrink_set)
    shrink_array_seconds, shrink_array_sizes = _best_of(
        lambda: shrink_csr(array_csr)
    )
    shrink_numpy_seconds, shrink_numpy_sizes = _best_of(
        lambda: shrink_csr(numpy_csr)
    )
    assert shrink_set_sizes == shrink_array_sizes == shrink_numpy_sizes, dataset

    return [
        {
            "dataset": dataset,
            "kernel": "two_hop_sweep",
            "set_ms": round(set_seconds * 1e3, 3),
            "array_ms": round(array_seconds * 1e3, 3),
            "numpy_ms": round(numpy_seconds * 1e3, 3),
            "numpy_vs_set": round(set_seconds / numpy_seconds, 2),
            "numpy_vs_array": round(array_seconds / numpy_seconds, 2),
        },
        {
            "dataset": dataset,
            "kernel": "core_shrink",
            "set_ms": round(shrink_set_seconds * 1e3, 3),
            "array_ms": round(shrink_array_seconds * 1e3, 3),
            "numpy_ms": round(shrink_numpy_seconds * 1e3, 3),
            "numpy_vs_set": round(shrink_set_seconds / shrink_numpy_seconds, 2),
            "numpy_vs_array": round(shrink_array_seconds / shrink_numpy_seconds, 2),
        },
    ]


def test_bench_csr_numpy_kernels(benchmark, scale):
    if "numpy" not in available_csr_backends():
        pytest.skip("numpy backend unavailable")

    def run():
        rows = []
        for dataset in DATASETS:
            rows.extend(_sweep_rows(dataset))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_table(rows, title="CSR kernel microbenches — numpy vs array vs sets"))

    # Gate 1: numpy beats the frozenset path on every single microbench, and
    # by >= 2x wherever the absolute time is large enough to measure
    # reliably on shared CI runners (the shrink rows sit under a
    # millisecond, where a 2x requirement would gate on timer noise).
    assert all(row["numpy_vs_set"] > 1.0 for row in rows), rows
    assert all(
        row["numpy_vs_set"] >= 2.0
        for row in rows
        if row["kernel"] == "two_hop_sweep"
    ), rows
    # Gate 2: >= 1.5x over the array backend on every microbench.
    assert all(row["numpy_vs_array"] >= 1.5 for row in rows), rows
    # Gate 3: >= 2x on the suite aggregate vs both competing paths.
    set_total = sum(row["set_ms"] for row in rows)
    array_total = sum(row["array_ms"] for row in rows)
    numpy_total = sum(row["numpy_ms"] for row in rows)
    assert set_total >= 2.0 * numpy_total, (set_total, numpy_total, rows)
    assert array_total >= 2.0 * numpy_total, (array_total, numpy_total, rows)
